"""Hot model reload: validated, canary-gated, atomic, revertible.

A long-lived service must pick up freshly trained factor files without
restarting — but a bad artifact (torn write, NaN poisoning, a training
run that silently regressed) must never reach traffic.  The pipeline:

1. **watch** — :meth:`ModelReloader.poll` fingerprints the candidate
   path (inode/size/mtime, cheap enough to run per request batch) and
   does nothing while it is unchanged;
2. **validate** — candidates load through
   :func:`repro.persistence.load_factors`, which enforces shape
   consistency, finiteness, and the stored CRC-32 checksum; a corrupt
   file is rejected here without touching the live model;
3. **canary** — the candidate is scored with
   :func:`~repro.models.base.validation_ndcg` on a held-out slice and
   must come within ``max_ndcg_drop`` of the live model's score (one
   canary evaluation, cached per live model);
4. **swap** — only then does :class:`ModelSlot` atomically publish the
   candidate; in-flight requests keep the model object they already
   read, the next request sees the new one.  :meth:`ModelSlot.rollback`
   restores the previous model instantly.

Every decision is recorded as a :class:`ReloadResult` in
``reloader.history_`` so operators can audit why a candidate did or did
not ship.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.data.interactions import InteractionMatrix
from repro.mf.params import FactorParams
from repro.models.base import FactorRecommender, Recommender, validation_ndcg
from repro.obs.registry import MetricsRegistry, as_registry
from repro.utils.exceptions import ConfigError, DataError, ServingError


class LoadedFactorModel(FactorRecommender):
    """A ready-to-serve recommender wrapped around loaded factors.

    Built from a factors file (or in-memory :class:`FactorParams`) plus
    the training matrix used for exclusion masks; it is born fitted and
    refuses :meth:`fit` — training happens elsewhere, this class only
    serves.
    """

    def __init__(self, params: FactorParams, train: InteractionMatrix, *, version: str = ""):
        super().__init__()
        if params.n_users != train.n_users or params.n_items != train.n_items:
            raise DataError(
                f"factor shape ({params.n_users}x{params.n_items}) does not match "
                f"interactions ({train.n_users}x{train.n_items})"
            )
        self.params_ = params
        self._train = train
        self.version = version

    @property
    def name(self) -> str:
        return f"LoadedFactorModel({self.version})" if self.version else "LoadedFactorModel"

    def fit(self, train: Any, validation: Any = None) -> Recommender:
        raise ServingError("LoadedFactorModel is serve-only; train elsewhere and reload")


class ModelSlot:
    """Thread-safe holder of the live model, with one-step rollback.

    Readers (:meth:`get`) and the swapper (:meth:`swap`) synchronize on
    a lock held only for the reference exchange, so a swap never blocks
    an in-flight request for longer than a pointer read — the
    "no dropped requests during reload" guarantee.
    """

    def __init__(
        self,
        model: Recommender,
        *,
        version: str = "initial",
        chaos: Any = None,
        clock: Any = None,
    ):
        from repro.utils.clock import as_clock

        self._lock = threading.Lock()
        self._model = model
        self._previous: Recommender | None = None
        self._previous_version: str | None = None
        self.version: str | None = version
        self.chaos = chaos
        self.clock = as_clock(clock)
        self._loaded_at = self.clock.monotonic()
        self.swap_count_ = 0

    def age_s(self) -> float:
        """Seconds since the live model was (re)loaded into the slot.

        The staleness signal surfaced in ``/v1/health`` and response
        provenance; resets on every :meth:`swap` and :meth:`rollback`.
        """
        with self._lock:
            return max(self.clock.monotonic() - self._loaded_at, 0.0)

    def get(self) -> Recommender:
        with self._lock:
            if (
                self.chaos is not None
                and getattr(self.chaos, "stale_model", False)
                and self._previous is not None
            ):
                return self._previous
            return self._model

    def swap(self, model: Recommender, *, version: str) -> None:
        with self._lock:
            self._previous = self._model
            self._previous_version = self.version
            self._model = model
            self.version = version
            self._loaded_at = self.clock.monotonic()
            self.swap_count_ += 1

    def rollback(self) -> bool:
        """Restore the previous model; returns False when there is none."""
        with self._lock:
            if self._previous is None:
                return False
            self._model, self._previous = self._previous, self._model
            self.version, self._previous_version = self._previous_version, self.version
            self._loaded_at = self.clock.monotonic()
            return True


@dataclass(frozen=True)
class CanaryConfig:
    """How the held-out canary evaluation is run."""

    k: int = 5
    max_users: int | None = 200
    seed: int = 0
    max_ndcg_drop: float = 0.02

    def __post_init__(self):
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.max_ndcg_drop < 0:
            raise ConfigError(f"max_ndcg_drop must be >= 0, got {self.max_ndcg_drop}")


@dataclass(frozen=True)
class ReloadResult:
    """Outcome of one :meth:`ModelReloader.poll` that saw a candidate."""

    status: str  # "accepted" | "rejected" | "unchanged"
    reason: str
    version: str | None = None
    candidate_ndcg: float | None = None
    live_ndcg: float | None = None

    @property
    def accepted(self) -> bool:
        return self.status == "accepted"


class ModelReloader:
    """Watches a factors file and hot-swaps validated candidates in.

    Parameters
    ----------
    slot:
        The :class:`ModelSlot` traffic reads from.
    watch_path:
        The ``.npz`` factors file to poll (written atomically by
        :func:`repro.persistence.save_factors`).
    train / validation:
        Matrices backing the served exclusion masks and the canary
        NDCG gate.  Without ``validation`` the canary gate is skipped
        (checksum/finiteness validation still applies).
    canary:
        :class:`CanaryConfig` thresholds.
    obs:
        Optional metrics registry; every accept/reject decision emits a
        ``reload`` event and a ``reload_polls_total{status=...}``
        counter.  Defaults to the no-op registry.
    """

    def __init__(
        self,
        slot: ModelSlot,
        watch_path: str | Path,
        train: InteractionMatrix,
        validation: InteractionMatrix | None = None,
        *,
        canary: CanaryConfig | None = None,
        obs: MetricsRegistry | None = None,
    ):
        self.slot = slot
        self.watch_path = Path(watch_path)
        self.train = train
        self.validation = validation
        self.canary = canary or CanaryConfig()
        self.obs = as_registry(obs)
        self.history_: list[ReloadResult] = []
        self._seen_fingerprint: str | None = None
        self._live_ndcg: float | None = None
        self._live_ndcg_version: str | None = None

    def _record(self, result: ReloadResult) -> ReloadResult:
        """Append a decision to the audit history and the metrics log."""
        self.history_.append(result)
        self.obs.counter("reload_polls_total", status=result.status).inc()
        self.obs.event(
            "reload",
            status=result.status,
            reason=result.reason,
            version=result.version,
            candidate_ndcg=result.candidate_ndcg,
            live_ndcg=result.live_ndcg,
        )
        return result

    # -- canary ---------------------------------------------------------
    def _canary_ndcg(self, model: Recommender) -> float:
        return validation_ndcg(
            model,
            self.train,
            self.validation,
            k=self.canary.k,
            max_users=self.canary.max_users,
            seed=self.canary.seed,
        )

    def _live_score(self) -> float:
        if self._live_ndcg is None or self._live_ndcg_version != self.slot.version:
            self._live_ndcg = self._canary_ndcg(self.slot.get())
            self._live_ndcg_version = self.slot.version
        return self._live_ndcg

    # -- the poll loop ---------------------------------------------------
    def poll(self) -> ReloadResult:
        """Check the watch path once; swap, reject, or do nothing."""
        from repro.persistence import file_fingerprint, load_factors

        fingerprint = file_fingerprint(self.watch_path)
        if fingerprint is None:
            return ReloadResult("unchanged", "watch path does not exist")
        if fingerprint == self._seen_fingerprint:
            return ReloadResult("unchanged", "candidate fingerprint already processed")
        # Mark the fingerprint up front: a rejected candidate is not
        # re-validated every poll, only a *new* file is.
        self._seen_fingerprint = fingerprint

        try:
            params, metadata = load_factors(self.watch_path, validate=True)
            candidate = LoadedFactorModel(
                params, self.train, version=str(metadata.get("version_tag", fingerprint))
            )
        except DataError as error:
            return self._record(ReloadResult("rejected", f"validation failed: {error}"))

        candidate_ndcg = live_ndcg = None
        if self.validation is not None:
            candidate_ndcg = self._canary_ndcg(candidate)
            live_ndcg = self._live_score()
            if candidate_ndcg < live_ndcg - self.canary.max_ndcg_drop:
                return self._record(ReloadResult(
                    "rejected",
                    f"canary NDCG@{self.canary.k} regressed: "
                    f"{candidate_ndcg:.4f} < {live_ndcg:.4f} - {self.canary.max_ndcg_drop}",
                    version=candidate.version,
                    candidate_ndcg=candidate_ndcg,
                    live_ndcg=live_ndcg,
                ))

        self.slot.swap(candidate, version=candidate.version)
        if candidate_ndcg is not None:
            self._live_ndcg = candidate_ndcg
            self._live_ndcg_version = candidate.version
        return self._record(ReloadResult(
            "accepted",
            "candidate passed validation and canary gates",
            version=candidate.version,
            candidate_ndcg=candidate_ndcg,
            live_ndcg=live_ndcg,
        ))
