"""The deadline-bounded, degradation-aware recommendation service.

:class:`RecommendationService` is the request path that fronts a fitted
:class:`~repro.models.base.Recommender` in production.  Per request it

1. starts a :class:`~repro.serving.deadline.Deadline` from the request
   (or service default) budget;
2. walks the fallback cascade tier by tier, skipping any tier whose
   :class:`~repro.serving.breaker.CircuitBreaker` is open, granting
   each attempted tier only the *remaining* budget through a
   :class:`~repro.serving.deadline.BudgetExecutor`;
3. records every outcome into the tier's breaker (timeouts and slow
   successes count against the latency threshold) and the per-tier
   stats;
4. returns a :class:`RecommendationResponse` carrying full provenance:
   which tier answered (``served_by``), whether that was a degradation
   (``degraded``), how much budget was left (``deadline_ms_left``), and
   the live model version.

If every tier is open, erroring, or out of budget, the request is still
answered from a precomputed static popularity ranking — the service
never raises on the request path and never returns an empty list (the
zero-failed-requests property the chaos suite enforces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.metrics import scoring
from repro.models.base import Recommender
from repro.models.itemknn import ItemKNN
from repro.obs.registry import MetricsRegistry, as_registry
from repro.serving.breaker import BreakerConfig, CircuitBreaker
from repro.utils.clock import Clock, as_clock
from repro.serving.deadline import BudgetExecutor, Deadline, ThreadedExecutor
from repro.serving.reload import ModelSlot
from repro.serving.schema import RecommendationResponse, ServedResponse
from repro.serving.tiers import (
    FoldInTier,
    ItemKNNTier,
    PersonalizedTier,
    PopularityTier,
    RecommendationRequest,
    ServingTier,
    TierStats,
)
from repro.utils.exceptions import ConfigError, DeadlineExceeded, ShardError, TierError

STATIC_POPULARITY = "static-popularity"


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide serving knobs."""

    default_deadline_ms: float = 50.0
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self):
        if self.default_deadline_ms <= 0:
            raise ConfigError(
                f"default_deadline_ms must be > 0, got {self.default_deadline_ms}"
            )


class RecommendationService:
    """Deadline-bounded fallback cascade over serving tiers.

    Most callers should use :meth:`build`, which assembles the standard
    personalized → fold-in → ItemKNN → popularity cascade around a
    fitted model.  The explicit constructor exists for tests and exotic
    cascades.
    """

    def __init__(
        self,
        tiers: list[ServingTier],
        train: InteractionMatrix,
        *,
        config: ServiceConfig | None = None,
        executor: BudgetExecutor | None = None,
        clock: Clock | None = None,
        chaos: Any = None,
        slot: ModelSlot | None = None,
        breaker_configs: dict[str, BreakerConfig] | None = None,
        obs: MetricsRegistry | None = None,
        reranker: Any = None,
    ):
        if not tiers:
            raise ConfigError("the cascade needs at least one tier")
        self.tiers = list(tiers)
        self.train = train
        self.config = config or ServiceConfig()
        self.clock = as_clock(clock)
        self.executor = executor or ThreadedExecutor(clock=self.clock)
        self.chaos = chaos
        self.slot = slot
        self.obs = as_registry(obs)
        # Opt-in post-scoring hook (e.g. streaming.TimeDecayReranker);
        # None keeps every ranking bitwise identical to the tier output.
        self.reranker = reranker
        for tier in self.tiers:
            if getattr(tier, "chaos", None) is None:
                tier.chaos = chaos
        overrides = breaker_configs or {}
        self.breakers: dict[str, CircuitBreaker] = {
            tier.name: CircuitBreaker(
                overrides.get(tier.name, self.config.breaker),
                clock=self.clock,
                name=tier.name,
                obs=self.obs,
            )
            for tier in self.tiers
        }
        # One breaker per user shard of the primary tier's store (empty
        # for in-memory models): a single rotted/slow shard opens only
        # its own breaker, so exactly that shard's users degrade while
        # the tier keeps serving everyone else.  Created eagerly here —
        # the request path only ever reads this dict.
        self.shard_breakers: dict[int, CircuitBreaker] = {}
        primary_tier = self.tiers[0]
        shard_count = getattr(primary_tier, "shard_count", None)
        for index in range(int(shard_count()) if callable(shard_count) else 0):
            shard_name = f"{primary_tier.name}-shard-{index}"
            self.shard_breakers[index] = CircuitBreaker(
                overrides.get(shard_name, overrides.get(primary_tier.name, self.config.breaker)),
                clock=self.clock,
                name=shard_name,
                obs=self.obs,
            )
        self.stats: dict[str, TierStats] = {tier.name: TierStats() for tier in self.tiers}
        self.stats[STATIC_POPULARITY] = TierStats()
        self.requests_served_ = 0
        # The emergency ranking is a plain argsort over popularity,
        # computed once — nothing on this path can fail or take time.
        counts = train.item_counts().astype(np.float64)
        self._static_ranking = scoring.topk_from_matrix(counts[None, :], train.n_items)[0]
        # Supervisor-driven kill switch: while set, every request is
        # answered from the static-popularity ranking (no model, no
        # executor, no breakers), so a quarantined model pipeline can
        # never take serving down with it.
        self._degraded_mode = False
        self._degraded_reason = ""

    # -- construction ----------------------------------------------------
    @classmethod
    def build(
        cls,
        model: Recommender,
        train: InteractionMatrix,
        *,
        knn: ItemKNN | None = None,
        fit_knn: bool = True,
        config: ServiceConfig | None = None,
        executor: BudgetExecutor | None = None,
        clock: Clock | None = None,
        chaos: Any = None,
        breaker_configs: dict[str, BreakerConfig] | None = None,
        version: str = "initial",
        obs: MetricsRegistry | None = None,
        reranker: Any = None,
        retriever: Any = None,
    ) -> "RecommendationService":
        """Assemble the standard four-tier cascade around ``model``.

        ``knn`` may be a pre-fitted :class:`ItemKNN`; with ``fit_knn``
        (the default) one is fitted here when not supplied.  Pass
        ``fit_knn=False`` to skip that tier (large catalogs where the
        item-item matrix is not worth building).  ``retriever`` plugs a
        :class:`~repro.retrieval.base.CandidateRetriever` into the
        primary tier (shortlist-then-exact-rerank; provenance says so).
        """
        slot = ModelSlot(model, version=version, chaos=chaos, clock=clock)
        tiers: list[ServingTier] = [
            PersonalizedTier(slot, train, chaos=chaos, retriever=retriever)
        ]
        if getattr(model, "params_", None) is not None:
            tiers.append(FoldInTier(slot, train, chaos=chaos))
        if knn is None and fit_knn:
            knn = ItemKNN().fit(train)
        if knn is not None:
            tiers.append(ItemKNNTier(knn, train, chaos=chaos))
        tiers.append(PopularityTier(train, chaos=chaos))
        return cls(
            tiers,
            train,
            config=config,
            executor=executor,
            clock=clock,
            chaos=chaos,
            slot=slot,
            breaker_configs=breaker_configs,
            obs=obs,
            reranker=reranker,
        )

    # -- provenance helpers -----------------------------------------------
    def _model_age_s(self) -> float | None:
        return self.slot.age_s() if self.slot is not None else None

    # -- shard breaker helpers --------------------------------------------
    def _shard_breaker_for(
        self, tier: ServingTier, request: RecommendationRequest
    ) -> CircuitBreaker | None:
        """The breaker of the shard owning this request's user, if any."""
        if not self.shard_breakers or tier is not self.tiers[0]:
            return None
        shard_of = getattr(tier, "shard_of", None)
        if not callable(shard_of):
            return None
        shard = shard_of(request)
        if shard is None:
            return None
        return self.shard_breakers.get(int(shard))

    def _record_shard_failure(self, error: Exception, remaining_ms: float) -> bool:
        """Charge a :class:`ShardError` to its shard's breaker.

        Returns True when the failure was shard-local (and recorded
        there); False means the caller should charge the tier breaker.
        """
        shard = getattr(error, "shard", None)
        if not isinstance(error, ShardError) or shard is None:
            return False
        breaker = self.shard_breakers.get(int(shard))
        if breaker is None:
            return False
        breaker.record_failure(remaining_ms)
        self.obs.counter(
            "serving_shard_failures_total", shard=str(int(shard))
        ).inc()
        return True

    def _finalize_ranking(self, items: np.ndarray) -> np.ndarray:
        if self.reranker is None:
            return items
        return np.asarray(self.reranker.rerank(items), dtype=np.int64)

    # -- degraded mode ------------------------------------------------------
    def set_degraded(self, active: bool, *, reason: str = "") -> None:
        """Force (or lift) static-popularity-only serving.

        Wired to the supervisor's quarantine hook: when a critical
        pipeline component crash-loops, serving degrades to the
        precomputed popularity ranking instead of trusting a model
        whose feeding machinery is dead.
        """
        self._degraded_mode = bool(active)
        self._degraded_reason = reason if active else ""
        if active:
            self.obs.counter("serving_forced_degraded_total").inc()
            self.obs.event("serving_degraded_mode", active=True, reason=reason)
        else:
            self.obs.event("serving_degraded_mode", active=False)

    def degraded_mode(self) -> bool:
        """Whether forced static-popularity serving is active."""
        return self._degraded_mode

    # -- the request path -------------------------------------------------
    def recommend(self, request: RecommendationRequest | int, *, k: int | None = None) -> RecommendationResponse:
        """Serve one request; never raises, never returns an empty list."""
        if not isinstance(request, RecommendationRequest):
            request = RecommendationRequest(user=int(request), k=k or 5)
        deadline = Deadline(
            request.deadline_ms or self.config.default_deadline_ms, clock=self.clock
        )
        self.requests_served_ += 1
        if self._degraded_mode:
            return self._emergency_response(
                request, deadline, {"degraded_mode": self._degraded_reason or "forced"}
            )
        errors: dict[str, str] = {}
        primary = self.tiers[0].name

        obs = self.obs
        for tier in self.tiers:
            breaker = self.breakers[tier.name]
            stats = self.stats[tier.name]
            remaining = deadline.remaining_ms()
            if remaining <= 0:
                errors[tier.name] = "deadline exhausted"
                break
            if not breaker.allow():
                stats.skipped_open += 1
                obs.counter("serving_skipped_open_total", tier=tier.name).inc()
                errors[tier.name] = "breaker open"
                continue
            shard_breaker = self._shard_breaker_for(tier, request)
            if shard_breaker is not None and not shard_breaker.allow():
                stats.skipped_open += 1
                obs.counter("serving_shard_skipped_open_total", tier=tier.name).inc()
                errors[tier.name] = f"{shard_breaker.name} open"
                continue
            try:
                items, latency_ms = self.executor.call(
                    lambda tier=tier: self._run_tier(tier, request), remaining
                )
            except DeadlineExceeded as error:
                breaker.record_failure(remaining)
                if shard_breaker is not None:
                    shard_breaker.record_failure(remaining)
                stats.timeouts += 1
                stats.record_error("deadline exceeded")
                obs.counter("serving_timeouts_total", tier=tier.name).inc()
                errors[tier.name] = f"deadline exceeded ({error})"
                continue
            except Exception as error:  # noqa: BLE001 - cascade boundary
                if self._record_shard_failure(error, deadline.remaining_ms()):
                    # A shard-local fault charges only that shard's
                    # breaker.  The tier machinery itself behaved, so its
                    # breaker sees a success sample — it stays closed for
                    # every other shard's users (and half-open probe
                    # accounting stays balanced).
                    breaker.record_success(0.0)
                else:
                    breaker.record_failure(deadline.remaining_ms())
                    if shard_breaker is not None:
                        shard_breaker.record_failure(deadline.remaining_ms())
                stats.failures += 1
                stats.record_error(str(error) or type(error).__name__)
                obs.counter("serving_failures_total", tier=tier.name).inc()
                errors[tier.name] = str(error) or type(error).__name__
                continue
            breaker.record_success(latency_ms)
            if shard_breaker is not None:
                shard_breaker.record_success(latency_ms)
            stats.served += 1
            degraded = tier.name != primary
            obs.counter("serving_served_total", tier=tier.name).inc()
            obs.histogram("serving_tier_latency_ms", tier=tier.name).observe(latency_ms)
            obs.histogram("serving_request_latency_ms").observe(deadline.elapsed_ms())
            if degraded:
                obs.counter("serving_degraded_total").inc()
            return RecommendationResponse(
                user=request.user,
                items=self._finalize_ranking(items),
                served_by=tier.name,
                degraded=degraded,
                deadline_ms_left=deadline.remaining_ms(),
                latency_ms=deadline.elapsed_ms(),
                model_version=self.slot.version if self.slot is not None else None,
                model_age_s=self._model_age_s(),
                retrieval=str(getattr(tier, "retrieval_name", "exact")),
                tier_errors=errors,
            )

        return self._emergency_response(request, deadline, errors)

    def recommend_many(
        self, requests: Iterable[RecommendationRequest | int]
    ) -> list[RecommendationResponse]:
        """Serve a sequence of requests (each with its own deadline)."""
        return [self.recommend(request) for request in requests]

    def recommend_batch(
        self, requests: Sequence[RecommendationRequest | int], *, k: int | None = None
    ) -> list[RecommendationResponse]:
        """Serve a coalesced batch through one primary-tier scoring call.

        The micro-batching fast path behind the HTTP edge: all warm,
        in-range users are scored in a *single* ``predict_batch`` call
        on the primary tier (one einsum instead of one per request),
        under one shared deadline (the smallest budget in the batch)
        and one breaker verdict.  Because the scoring kernel is
        chunk-invariant, each batched ranking is bitwise identical to
        what :meth:`recommend` would have produced for that request.

        Requests the batch path cannot serve — cold or out-of-range
        users, rows poisoned non-finite, a thrown/timed-out batch call,
        an open breaker — fall back to the per-request cascade, so the
        zero-failed-requests property is inherited unchanged.
        """
        normalized = [
            request
            if isinstance(request, RecommendationRequest)
            else RecommendationRequest(user=int(request), k=k or 5)
            for request in requests
        ]
        if not normalized:
            return []
        responses: list[ServedResponse | None] = [None] * len(normalized)
        primary = self.tiers[0]
        if not self._degraded_mode and isinstance(primary, PersonalizedTier):
            budget = min(
                request.deadline_ms or self.config.default_deadline_ms
                for request in normalized
            )
            deadline = Deadline(budget, clock=self.clock)
            # Users on a shard whose breaker is open never join the
            # batch: they fall straight to the per-request cascade
            # (which records the skip), so one rotted shard cannot keep
            # dragging whole batches down with it.
            eligible: list[int] = []
            batch_shard_breakers: dict[int, CircuitBreaker] = {}
            for index, request in enumerate(normalized):
                if not primary.eligible(request):
                    continue
                shard_breaker = self._shard_breaker_for(primary, request)
                if shard_breaker is not None:
                    if not shard_breaker.allow():
                        continue
                    batch_shard_breakers[index] = shard_breaker
                eligible.append(index)
            breaker = self.breakers[primary.name]
            stats = self.stats[primary.name]
            obs = self.obs
            if eligible and breaker.allow():
                batch_requests = [normalized[index] for index in eligible]

                def scored() -> list[np.ndarray | None]:
                    if self.chaos is not None:
                        self.chaos.before_call(primary.name)
                    return primary.serve_batch(batch_requests)

                try:
                    rankings, latency_ms = self.executor.call(
                        scored, deadline.remaining_ms()
                    )
                except DeadlineExceeded:
                    breaker.record_failure(deadline.remaining_ms())
                    for shard_breaker in batch_shard_breakers.values():
                        shard_breaker.record_failure(deadline.remaining_ms())
                    stats.timeouts += 1
                    stats.record_error("deadline exceeded (batch)")
                    obs.counter("serving_timeouts_total", tier=primary.name).inc()
                except Exception as error:  # noqa: BLE001 - cascade boundary
                    shard = getattr(error, "shard", None)
                    failing = (
                        self.shard_breakers.get(int(shard))
                        if isinstance(error, ShardError) and shard is not None
                        else None
                    )
                    if failing is not None:
                        # Shard-local fault: the tier behaved, exactly one
                        # shard did not.  Healthy shards' admitted probes
                        # resolve as successes so their breakers stay
                        # closed; every request falls to the per-request
                        # cascade, where only the bad shard's users skip
                        # the primary tier.
                        breaker.record_success(0.0)
                        failing.record_failure(deadline.remaining_ms())
                        obs.counter(
                            "serving_shard_failures_total", shard=str(int(shard))
                        ).inc()
                        for shard_breaker in batch_shard_breakers.values():
                            if shard_breaker is not failing:
                                shard_breaker.record_success(0.0)
                    else:
                        breaker.record_failure(deadline.remaining_ms())
                        for shard_breaker in batch_shard_breakers.values():
                            shard_breaker.record_failure(deadline.remaining_ms())
                    stats.failures += 1
                    stats.record_error(str(error) or type(error).__name__)
                    obs.counter("serving_failures_total", tier=primary.name).inc()
                else:
                    breaker.record_success(latency_ms)
                    for shard_breaker in batch_shard_breakers.values():
                        shard_breaker.record_success(latency_ms)
                    obs.histogram(
                        "serving_batch_size", tier=primary.name
                    ).observe(len(batch_requests))
                    version = self.slot.version if self.slot is not None else None
                    model_age_s = self._model_age_s()
                    retrieval = str(getattr(primary, "retrieval_name", "exact"))
                    for offset, index in enumerate(eligible):
                        items = rankings[offset]
                        if items is None:
                            continue  # non-finite row; per-request cascade decides
                        stats.served += 1
                        self.requests_served_ += 1
                        obs.counter("serving_served_total", tier=primary.name).inc()
                        obs.histogram(
                            "serving_tier_latency_ms", tier=primary.name
                        ).observe(latency_ms)
                        obs.histogram("serving_request_latency_ms").observe(
                            deadline.elapsed_ms()
                        )
                        responses[index] = ServedResponse(
                            user=normalized[index].user,
                            items=self._finalize_ranking(items),
                            served_by=primary.name,
                            degraded=False,
                            deadline_ms_left=deadline.remaining_ms(),
                            latency_ms=deadline.elapsed_ms(),
                            model_version=version,
                            model_age_s=model_age_s,
                            retrieval=retrieval,
                            tier_errors={},
                        )
        return [
            response if response is not None else self.recommend(normalized[index])
            for index, response in enumerate(responses)
        ]

    def _run_tier(self, tier: ServingTier, request: RecommendationRequest) -> np.ndarray:
        if self.chaos is not None:
            self.chaos.before_call(tier.name)
        items = np.asarray(tier.serve(request), dtype=np.int64)
        if items.ndim != 1 or len(items) == 0:
            raise TierError(f"{tier.name}: returned an invalid ranking (shape {items.shape})")
        if items.min() < 0 or items.max() >= self.train.n_items:
            raise TierError(f"{tier.name}: returned out-of-catalog item ids")
        return items

    def _emergency_response(
        self, request: RecommendationRequest, deadline: Deadline, errors: dict
    ) -> RecommendationResponse:
        """Answer from the precomputed popularity ranking, no matter what."""
        k = min(request.k, self.train.n_items)
        items = self._static_ranking[:k]
        self.stats[STATIC_POPULARITY].served += 1
        self.obs.counter("serving_served_total", tier=STATIC_POPULARITY).inc()
        self.obs.counter("serving_degraded_total").inc()
        self.obs.counter("serving_emergency_total").inc()
        self.obs.histogram("serving_request_latency_ms").observe(deadline.elapsed_ms())
        return RecommendationResponse(
            user=request.user,
            items=self._finalize_ranking(items.copy()),
            served_by=STATIC_POPULARITY,
            degraded=True,
            deadline_ms_left=deadline.remaining_ms(),
            latency_ms=deadline.elapsed_ms(),
            model_version=self.slot.version if self.slot is not None else None,
            model_age_s=self._model_age_s(),
            tier_errors=errors,
        )

    # -- monitoring -------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready operational state: breakers, stats, executor load."""
        return {
            "requests_served": self.requests_served_,
            "degraded_mode": self._degraded_mode,
            "degraded_reason": self._degraded_reason,
            "model_version": self.slot.version if self.slot is not None else None,
            "model_age_s": self._model_age_s(),
            "breakers": {name: b.snapshot() for name, b in self.breakers.items()},
            "shard_breakers": {
                str(index): b.snapshot() for index, b in self.shard_breakers.items()
            },
            "tiers": {name: s.to_dict() for name, s in self.stats.items()},
            "executor_overruns": self.executor.overruns_,
        }

    def fallback_rate(self) -> float:
        """Fraction of requests not served by the primary tier."""
        total = sum(s.served for s in self.stats.values())
        if total == 0:
            return 0.0
        primary = self.stats[self.tiers[0].name].served
        return 1.0 - primary / total

    def close(self) -> None:
        """Release executor workers (idempotent)."""
        self.executor.shutdown()

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
