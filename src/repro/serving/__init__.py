"""Resilient query-time serving for fitted recommenders.

``repro.serving`` wraps any fitted :class:`~repro.models.base.Recommender`
behind a production-shaped request path:

* :mod:`~repro.serving.service` — the deadline-bounded
  :class:`RecommendationService` walking the fallback cascade with full
  response provenance (``served_by`` / ``degraded`` /
  ``deadline_ms_left``);
* :mod:`~repro.serving.tiers` — the cascade itself: personalized →
  ridge fold-in → ItemKNN → popularity, each an isolated, independently
  testable scorer;
* :mod:`~repro.serving.breaker` — rolling-window circuit breakers
  (closed/open/half-open) so a sick tier is skipped, not retried;
* :mod:`~repro.serving.deadline` — per-request budgets and the
  executors that cut off overrunning tier calls;
* :mod:`~repro.serving.reload` — checksum-validated, canary-gated,
  atomically swapped hot model reload with instant rollback;
* :mod:`~repro.serving.clock` — injectable clocks keeping all of the
  above deterministic under test.

Fault injection for this layer lives in
:class:`repro.resilience.chaos.ServiceFaultInjector`.
"""

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from repro.serving.clock import Clock, FakeClock, SystemClock, as_clock
from repro.serving.deadline import (
    BudgetExecutor,
    Deadline,
    InlineExecutor,
    ThreadedExecutor,
)
from repro.serving.reload import (
    CanaryConfig,
    LoadedFactorModel,
    ModelReloader,
    ModelSlot,
    ReloadResult,
)
from repro.serving.schema import RecommendationResponse, ServedResponse
from repro.serving.service import (
    STATIC_POPULARITY,
    RecommendationService,
    ServiceConfig,
)
from repro.serving.tiers import (
    FOLD_IN,
    ITEM_KNN,
    PERSONALIZED,
    POPULARITY,
    FoldInTier,
    ItemKNNTier,
    PersonalizedTier,
    PopularityTier,
    RecommendationRequest,
    ServingTier,
    TierStats,
)

__all__ = [
    "BreakerConfig",
    "BudgetExecutor",
    "CLOSED",
    "CanaryConfig",
    "CircuitBreaker",
    "Clock",
    "Deadline",
    "FakeClock",
    "FOLD_IN",
    "FoldInTier",
    "HALF_OPEN",
    "ITEM_KNN",
    "InlineExecutor",
    "ItemKNNTier",
    "LoadedFactorModel",
    "ModelReloader",
    "ModelSlot",
    "OPEN",
    "PERSONALIZED",
    "POPULARITY",
    "PersonalizedTier",
    "PopularityTier",
    "RecommendationRequest",
    "RecommendationResponse",
    "RecommendationService",
    "ReloadResult",
    "STATIC_POPULARITY",
    "ServedResponse",
    "ServiceConfig",
    "ServingTier",
    "SystemClock",
    "ThreadedExecutor",
    "TierStats",
    "as_clock",
]
