"""Rolling-window circuit breaker guarding one cascade tier.

A sick tier (NaN-poisoned model, saturated executor, flaky similarity
store) must be *skipped*, not re-tried on every request — otherwise each
request pays the tier's failure latency before falling back.  The
breaker implements the classic three-state machine:

* **closed** — requests flow; every call is recorded into a rolling
  time window.  When the window holds at least ``min_calls`` samples
  and the failure rate reaches ``failure_rate_threshold``, the breaker
  opens.  A call that succeeds but takes longer than
  ``latency_threshold_ms`` counts as a failure — a tier that answers
  correctly-but-slowly is as useless to a deadline-bounded request
  path as one that raises.
* **open** — requests are rejected instantly (``allow()`` is false) for
  ``cooldown_seconds``, after which the breaker moves to half-open.
* **half-open** — up to ``half_open_max_probes`` trial requests are let
  through.  ``half_open_successes`` consecutive successes close the
  breaker (window cleared); any probe failure re-opens it and restarts
  the cooldown.

All timing flows through an injectable :class:`~repro.serving.clock.Clock`,
so the full state machine is unit-testable with a fake clock and zero
sleeps.  The breaker is thread-safe: the serving executor may record
results from worker threads while the request loop calls ``allow()``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.obs.registry import MetricsRegistry, as_registry
from repro.utils.clock import Clock, as_clock
from repro.utils.exceptions import ConfigError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of one circuit breaker.

    Attributes
    ----------
    window_seconds:
        Length of the rolling sample window.
    min_calls:
        Minimum samples in the window before the failure rate is
        evaluated (prevents one early failure from tripping a cold
        breaker).
    failure_rate_threshold:
        Fraction of window samples that must be failures to open.
    latency_threshold_ms:
        Successes slower than this count as failures (``None`` disables
        the latency criterion).
    cooldown_seconds:
        Time spent open before probing resumes.
    half_open_max_probes:
        Probe requests admitted while half-open.
    half_open_successes:
        Consecutive probe successes required to close.
    """

    window_seconds: float = 30.0
    min_calls: int = 5
    failure_rate_threshold: float = 0.5
    latency_threshold_ms: float | None = None
    cooldown_seconds: float = 10.0
    half_open_max_probes: int = 2
    half_open_successes: int = 2

    def __post_init__(self):
        if self.window_seconds <= 0:
            raise ConfigError(f"window_seconds must be > 0, got {self.window_seconds}")
        if self.min_calls < 1:
            raise ConfigError(f"min_calls must be >= 1, got {self.min_calls}")
        if not 0.0 < self.failure_rate_threshold <= 1.0:
            raise ConfigError(
                f"failure_rate_threshold must be in (0, 1], got {self.failure_rate_threshold}"
            )
        if self.latency_threshold_ms is not None and self.latency_threshold_ms <= 0:
            raise ConfigError(
                f"latency_threshold_ms must be > 0, got {self.latency_threshold_ms}"
            )
        if self.cooldown_seconds <= 0:
            raise ConfigError(f"cooldown_seconds must be > 0, got {self.cooldown_seconds}")
        if self.half_open_max_probes < 1:
            raise ConfigError(
                f"half_open_max_probes must be >= 1, got {self.half_open_max_probes}"
            )
        if self.half_open_successes < 1:
            raise ConfigError(
                f"half_open_successes must be >= 1, got {self.half_open_successes}"
            )


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker over a rolling window."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        clock: Clock | None = None,
        name: str = "",
        obs: MetricsRegistry | None = None,
    ):
        self.config = config or BreakerConfig()
        self.clock = as_clock(clock)
        self.name = name
        self.obs = as_registry(obs)
        self._lock = threading.Lock()
        self._events: deque[tuple[float, bool]] = deque()  # (timestamp, failed)
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.opened_count_ = 0

    # -- state inspection ------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open when cooldown is over."""
        with self._lock:
            self._maybe_enter_half_open()
            return self._state

    def failure_rate(self) -> float:
        """Failure fraction of the current window (0.0 when empty)."""
        with self._lock:
            self._prune()
            if not self._events:
                return 0.0
            return sum(failed for _, failed in self._events) / len(self._events)

    # -- the request-path API --------------------------------------------
    def allow(self) -> bool:
        """Whether the guarded tier may be attempted right now.

        In half-open state this *admits a probe*: callers that receive
        ``True`` are expected to follow up with exactly one
        :meth:`record_success` / :meth:`record_failure` call.
        """
        with self._lock:
            self._maybe_enter_half_open()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probes_in_flight >= self.config.half_open_max_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self, latency_ms: float = 0.0) -> None:
        """Record one successful tier call (slow successes may still trip)."""
        slow = (
            self.config.latency_threshold_ms is not None
            and latency_ms > self.config.latency_threshold_ms
        )
        self._record(failed=slow)

    def record_failure(self, latency_ms: float = 0.0) -> None:
        """Record one failed (raised or timed-out) tier call."""
        self._record(failed=True)

    # -- internals -------------------------------------------------------
    def _record(self, *, failed: bool) -> None:
        with self._lock:
            now = self.clock.monotonic()
            self._maybe_enter_half_open()
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                if failed:
                    self._open(now)
                else:
                    self._probe_successes += 1
                    if self._probe_successes >= self.config.half_open_successes:
                        self._close()
                return
            if self._state == OPEN:
                # A straggler from before the trip; the window is moot.
                return
            self._events.append((now, failed))
            self._prune()
            if len(self._events) >= self.config.min_calls:
                failures = sum(f for _, f in self._events)
                if failures / len(self._events) >= self.config.failure_rate_threshold:
                    self._open(now)

    def _transition(self, to: str) -> None:
        """Record one state transition (called with ``self._lock`` held;
        the registry's own locks never call back into the breaker, so
        the nesting is one-directional and deadlock-free)."""
        self.obs.counter("breaker_transitions_total", tier=self.name, to=to).inc()
        self.obs.event("breaker_transition", tier=self.name, to=to)

    def _open(self, now: float) -> None:
        self._state = OPEN
        self._opened_at = now
        self._events.clear()
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.opened_count_ += 1
        self._transition(OPEN)

    def _close(self) -> None:
        self._state = CLOSED
        self._events.clear()
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._transition(CLOSED)

    def _maybe_enter_half_open(self) -> None:
        if self._state == OPEN:
            if self.clock.monotonic() - self._opened_at >= self.config.cooldown_seconds:
                self._state = HALF_OPEN
                self._probes_in_flight = 0
                self._probe_successes = 0
                self._transition(HALF_OPEN)

    def _prune(self) -> None:
        horizon = self.clock.monotonic() - self.config.window_seconds
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def snapshot(self) -> dict:
        """JSON-ready view of the breaker for monitoring endpoints."""
        with self._lock:
            self._maybe_enter_half_open()
            self._prune()
            n = len(self._events)
            failures = sum(f for _, f in self._events)
            return {
                "name": self.name,
                "state": self._state,
                "window_calls": n,
                "window_failures": failures,
                "failure_rate": failures / n if n else 0.0,
                "times_opened": self.opened_count_,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker(name={self.name!r}, state={self.state!r})"
