"""Per-request deadlines and budget-aware tier execution.

A serving request arrives with a total time budget (say 50 ms).  Each
cascade tier gets whatever is left of that budget; a tier that overruns
is cut off, recorded, and the request falls through to the next tier —
the request never blocks on a sick tier for longer than its own
deadline.

Two executor strategies implement the ``call(fn, budget_ms)`` contract:

* :class:`ThreadedExecutor` — runs the tier call on a worker thread and
  abandons it at the timeout (``future.result(timeout=...)``).  Python
  threads cannot be killed, so an abandoned call keeps running in the
  background until it finishes; the pool is sized so a burst of stuck
  calls degrades to breaker-open behavior instead of unbounded thread
  growth.  This is the production strategy: a genuinely wedged
  ``recommend_batch`` cannot stall the request.
* :class:`InlineExecutor` — runs the call inline and raises
  :class:`~repro.utils.exceptions.DeadlineExceeded` *after the fact*
  when the measured latency exceeded the budget.  With a
  :class:`~repro.serving.clock.FakeClock` this makes every deadline
  path deterministic and sleep-free in tests; it cannot pre-empt a call
  mid-flight, so production setups should prefer the threaded strategy.

Both count overruns (``overruns_``/``overrun_ms_``) so the service can
report how much deadline pressure each tier is causing.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Callable, TypeVar

from repro.utils.clock import Clock, as_clock
from repro.utils.exceptions import ConfigError, DeadlineExceeded

T = TypeVar("T")


class Deadline:
    """A countdown started at request arrival.

    ``remaining_ms()`` is what the cascade hands to each tier; once it
    hits zero the request can only be answered from the static
    emergency path.
    """

    def __init__(self, budget_ms: float, *, clock: Clock | None = None):
        if budget_ms <= 0:
            raise ConfigError(f"deadline budget_ms must be > 0, got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self.clock = as_clock(clock)
        self._start = self.clock.monotonic()

    def elapsed_ms(self) -> float:
        return (self.clock.monotonic() - self._start) * 1000.0

    def remaining_ms(self) -> float:
        return self.budget_ms - self.elapsed_ms()

    def expired(self) -> bool:
        return self.remaining_ms() <= 0.0


class BudgetExecutor:
    """Interface: run ``fn`` under a millisecond budget.

    ``call`` returns ``(result, latency_ms)`` or raises
    :class:`DeadlineExceeded`; exceptions raised by ``fn`` propagate
    unchanged.  Overruns are counted on the executor.
    """

    overruns_: int
    overrun_ms_: float

    def call(self, fn: Callable[[], T], budget_ms: float) -> tuple[T, float]:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any worker resources (no-op by default)."""


class InlineExecutor(BudgetExecutor):
    """Run tier calls inline; enforce the budget by post-hoc measurement."""

    def __init__(self, *, clock: Clock | None = None):
        self.clock = as_clock(clock)
        self.overruns_ = 0
        self.overrun_ms_ = 0.0

    def call(self, fn: Callable[[], T], budget_ms: float) -> tuple[T, float]:
        start = self.clock.monotonic()
        result = fn()
        latency_ms = (self.clock.monotonic() - start) * 1000.0
        if latency_ms > budget_ms:
            self.overruns_ += 1
            self.overrun_ms_ += latency_ms - budget_ms
            raise DeadlineExceeded(
                f"tier call took {latency_ms:.1f}ms against a {budget_ms:.1f}ms budget",
                budget_ms=budget_ms,
                elapsed_ms=latency_ms,
            )
        return result, latency_ms


class ThreadedExecutor(BudgetExecutor):
    """Run tier calls on a worker pool; cut them off at the budget.

    The timed-out worker thread is abandoned, not killed (Python offers
    no safe pre-emption), so ``max_workers`` bounds how many stuck calls
    can pile up before new calls queue — by then the tier's breaker
    will be open and the tier skipped entirely.
    """

    def __init__(self, max_workers: int = 8, *, clock: Clock | None = None):
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        self.clock = as_clock(clock)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serving"
        )
        self._lock = threading.Lock()
        self.overruns_ = 0
        self.overrun_ms_ = 0.0

    def call(self, fn: Callable[[], T], budget_ms: float) -> tuple[T, float]:
        start = self.clock.monotonic()
        future = self._pool.submit(fn)
        try:
            result = future.result(timeout=budget_ms / 1000.0)
        except FutureTimeout:
            future.cancel()
            elapsed_ms = (self.clock.monotonic() - start) * 1000.0
            with self._lock:
                self.overruns_ += 1
                self.overrun_ms_ += max(0.0, elapsed_ms - budget_ms)
            raise DeadlineExceeded(
                f"tier call cut off after {elapsed_ms:.1f}ms "
                f"(budget {budget_ms:.1f}ms); worker abandoned",
                budget_ms=budget_ms,
                elapsed_ms=elapsed_ms,
            ) from None
        latency_ms = (self.clock.monotonic() - start) * 1000.0
        return result, latency_ms

    def shutdown(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
