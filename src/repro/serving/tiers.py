"""The fallback cascade: tiers a request degrades through.

A production request must *always* come back with a ranked list, even
when the personalized model is sick, the user is unknown, or the factor
file on disk was corrupt.  The cascade orders serving strategies from
best to most robust:

1. :class:`PersonalizedTier` — the fitted model's own
   ``predict_batch`` scores (validated finite before ranking);
2. :class:`FoldInTier` — ridge fold-in of the request history against
   the frozen item factors (:mod:`repro.mf.fold_in`), serving users the
   model never saw;
3. :class:`ItemKNNTier` — item-item cosine neighbours, model-free and
   immune to factor-file corruption;
4. :class:`PopularityTier` — the :class:`~repro.models.poprank.PopRank`
   ordering, which cannot fail.

Each tier raises :class:`~repro.utils.exceptions.TierError` when it
cannot serve a request; the service interprets that (or a timeout, or
an open breaker) as "try the next tier".  Tiers are deliberately free
of breaker/deadline logic — they only know how to score — so each can
be unit-tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.metrics import scoring
from repro.models.base import Recommender
from repro.utils.exceptions import ConfigError, TierError

PERSONALIZED = "personalized"
FOLD_IN = "fold-in"
ITEM_KNN = "itemknn"
POPULARITY = "popularity"


@dataclass(frozen=True)
class RecommendationRequest:
    """One serving request.

    Attributes
    ----------
    user:
        Dense user id.  May be out of the training range — the fold-in
        and popularity tiers still serve such users.
    k:
        Number of items to return.
    history:
        Optional item ids observed for this user *since training* (the
        session/onboarding signal).  Unknown and cold users are served
        personalized-adjacent results only if this is provided.
    deadline_ms:
        Per-request budget override (service default otherwise).
    exclude_observed:
        Exclude the user's training positives (and any ``history``)
        from the returned ranking.
    """

    user: int
    k: int = 5
    history: tuple[int, ...] | None = None
    deadline_ms: float | None = None
    exclude_observed: bool = True

    def __post_init__(self):
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.history is not None:
            object.__setattr__(self, "history", tuple(int(i) for i in self.history))


class ServingTier:
    """Interface: produce a top-k ranking or raise :class:`TierError`."""

    #: Cascade display name; also the breaker / chaos-injection key.
    name: str = "tier"
    #: Optional chaos-injection policy, set by the service at assembly.
    chaos: Any = None

    def serve(self, request: RecommendationRequest) -> np.ndarray:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------
    def _rank(
        self,
        scores: np.ndarray,
        request: RecommendationRequest,
        train: InteractionMatrix,
    ) -> np.ndarray:
        """Validate, mask, and top-k one score vector."""
        scores = np.asarray(scores, dtype=np.float64)
        bad = ~np.isfinite(scores)
        if bad.any():
            raise TierError(
                f"{self.name}: {int(bad.sum())} non-finite scores for user {request.user}"
            )
        scores = scores.copy()
        if request.exclude_observed:
            if 0 <= request.user < train.n_users:
                scores[train.positives(request.user)] = -np.inf
            if request.history:
                inside = [i for i in request.history if 0 <= i < len(scores)]
                scores[inside] = -np.inf
        k = min(request.k, train.n_items)
        return scoring.topk_from_matrix(scores[None, :], k)[0]

    def _train_history(
        self, request: RecommendationRequest, train: InteractionMatrix
    ) -> np.ndarray:
        """The user's combined train + request history (may be empty)."""
        parts = []
        if 0 <= request.user < train.n_users:
            parts.append(train.positives(request.user))
        if request.history:
            inside = [i for i in request.history if 0 <= i < train.n_items]
            if inside:
                parts.append(np.asarray(inside, dtype=np.int64))
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))


class PersonalizedTier(ServingTier):
    """Tier 1: the fitted model itself (hot-swappable through a slot).

    ``source`` is either a fitted :class:`Recommender` or a
    :class:`~repro.serving.reload.ModelSlot`; reading through the slot
    on every request is what makes hot reload take effect mid-stream.

    With a ``retriever`` (see :mod:`repro.retrieval`) the tier skips
    the dense catalog scan: it shortlists candidates from the user's
    factor vector and exactly reranks them, stamping the retriever's
    name into the response's ``retrieval`` provenance.  Without one the
    dense path is byte-for-byte unchanged and provenance stays
    ``"exact"``.  Chaos score-poisoning hooks only the dense path (it
    poisons a full score vector, which the retrieval path never
    materializes), so chaos drills configure the tier without a
    retriever.
    """

    name = PERSONALIZED

    def __init__(
        self,
        source: Any,
        train: InteractionMatrix,
        *,
        chaos: Any = None,
        retriever: Any = None,
    ):
        self.source = source
        self.train = train
        self.chaos = chaos
        self.retriever = retriever

    def current_model(self) -> Recommender:
        get = getattr(self.source, "get", None)
        return get() if callable(get) else self.source

    @property
    def retrieval_name(self) -> str:
        """Provenance tag for responses this tier serves."""
        if self.retriever is None:
            return "exact"
        return str(getattr(self.retriever, "name", "retriever"))

    # -- shard topology (per-shard breakers) ---------------------------
    def shard_count(self) -> int:
        """Shards in the current model's store (0 for in-memory models)."""
        return int(getattr(self.current_model(), "n_shards", 0) or 0)

    def shard_of(self, request: RecommendationRequest) -> int | None:
        """Shard owning the request's user, or ``None`` when unsharded."""
        shard_of = getattr(self.current_model(), "shard_of", None)
        if not callable(shard_of):
            return None
        return shard_of(request.user)

    # -- retrieval path ------------------------------------------------
    def _factor_views(self, model: Recommender):
        """(user-row getter, item_factors, item_bias) for the rerank path."""
        store = getattr(model, "store", None)
        if store is not None:
            return store.user_rows, store.item_factors, store.item_bias
        params = getattr(model, "params_", None)
        if params is None or len(params.user_factors) == 0:
            raise TierError(
                f"{self.name}: current model exposes no user factors for retrieval"
            )
        return (
            lambda users: params.user_factors[np.asarray(users, dtype=np.int64)],
            params.item_factors,
            params.item_bias,
        )

    def _serve_retrieval(
        self, model: Recommender, requests: list[RecommendationRequest]
    ) -> list[np.ndarray | None]:
        from repro.retrieval.base import rerank_topk

        user_rows, item_factors, item_bias = self._factor_views(model)
        users = np.asarray([request.user for request in requests], dtype=np.int64)
        vectors = np.asarray(user_rows(users))
        exclude = [
            self._train_history(request, self.train)
            if request.exclude_observed
            else np.zeros(0, dtype=np.int64)
            for request in requests
        ]
        k = max(request.k for request in requests)
        rankings = rerank_topk(
            vectors, item_factors, item_bias, min(k, self.train.n_items),
            self.retriever, exclude=exclude,
        )
        out: list[np.ndarray | None] = []
        for request, ranking in zip(requests, rankings):
            out.append(ranking[: request.k] if len(ranking) else None)
        return out

    def eligible(self, request: RecommendationRequest) -> bool:
        """Whether this tier could serve ``request`` at all (warm, in range)."""
        return (
            0 <= request.user < self.train.n_users
            and self.train.n_positives(request.user) > 0
        )

    def serve(self, request: RecommendationRequest) -> np.ndarray:
        model = self.current_model()
        if not (0 <= request.user < self.train.n_users):
            raise TierError(f"{self.name}: user {request.user} outside the trained range")
        if self.train.n_positives(request.user) == 0:
            # A cold user has no personalized signal; let the cascade
            # pick fold-in (if the request carries history) or
            # popularity, with honest provenance.
            raise TierError(f"{self.name}: user {request.user} has no training history")
        if self.retriever is not None and self.chaos is None:
            ranking = self._serve_retrieval(model, [request])[0]
            if ranking is None:
                raise TierError(
                    f"{self.name}: {self.retrieval_name} shortlist empty "
                    f"for user {request.user}"
                )
            return ranking
        scores = np.asarray(
            model.predict_batch(np.asarray([request.user], dtype=np.int64))[0]
        )
        if self.chaos is not None:
            scores = self.chaos.poison_scores(self.name, scores)
        return self._rank(scores, request, self.train)

    def serve_batch(
        self, requests: list[RecommendationRequest]
    ) -> list[np.ndarray | None]:
        """Score every request through one ``predict_batch`` call.

        All requests must be :meth:`eligible`.  Returns one ranking per
        request, in order; a request whose score row cannot be ranked
        (e.g. poisoned non-finite) yields ``None`` so the caller's
        cascade can degrade it individually.  The scoring kernel is
        chunk-invariant, so each ranking is bitwise identical to the
        one :meth:`serve` computes for the same request alone.
        """
        model = self.current_model()
        if self.retriever is not None and self.chaos is None:
            return self._serve_retrieval(model, requests)
        users = np.asarray([request.user for request in requests], dtype=np.int64)
        scores = np.asarray(model.predict_batch(users))
        if self.chaos is not None:
            scores = self.chaos.poison_scores(self.name, scores)
        rankings: list[np.ndarray | None] = []
        for row, request in enumerate(requests):
            try:
                rankings.append(self._rank(scores[row], request, self.train))
            except TierError:
                rankings.append(None)
        return rankings


class FoldInTier(ServingTier):
    """Tier 2: ridge fold-in against the current model's item factors.

    Serves unseen/cold users from their request history (and known
    users from their training history when the personalized scorer is
    down) without touching the model.
    """

    name = FOLD_IN

    def __init__(
        self,
        source: Any,
        train: InteractionMatrix,
        *,
        weight: float = 10.0,
        reg: float = 0.1,
        chaos: Any = None,
    ):
        self.source = source
        self.train = train
        self.weight = weight
        self.reg = reg
        self.chaos = chaos

    def _params(self):
        get = getattr(self.source, "get", None)
        model = get() if callable(get) else self.source
        params = getattr(model, "params_", None)
        if params is None:
            raise TierError(f"{self.name}: current model has no factor parameters")
        return params

    def serve(self, request: RecommendationRequest) -> np.ndarray:
        from repro.mf.fold_in import fold_in_user_ridge

        history = self._train_history(request, self.train)
        if len(history) == 0:
            raise TierError(
                f"{self.name}: user {request.user} has no history to fold in"
            )
        result = fold_in_user_ridge(
            self._params(), history, weight=self.weight, reg=self.reg
        )
        scores = result.predict()
        if self.chaos is not None:
            scores = self.chaos.poison_scores(self.name, scores)
        return self._rank(scores, request, self.train)


class ItemKNNTier(ServingTier):
    """Tier 3: item-item cosine neighbours, independent of the factors."""

    name = ITEM_KNN

    def __init__(self, knn: Any, train: InteractionMatrix, *, chaos: Any = None):
        if getattr(knn, "similarity_", None) is None:
            raise ConfigError("ItemKNNTier needs a fitted ItemKNN model")
        self.knn = knn
        self.train = train
        self.chaos = chaos

    def serve(self, request: RecommendationRequest) -> np.ndarray:
        history = self._train_history(request, self.train)
        if len(history) == 0:
            raise TierError(f"{self.name}: user {request.user} has no history")
        scores = self.knn.similarity_[history].sum(axis=0)
        if self.chaos is not None:
            scores = self.chaos.poison_scores(self.name, scores)
        return self._rank(scores, request, self.train)


class PopularityTier(ServingTier):
    """Tier 4: training popularity — serves anyone, cannot go cold."""

    name = POPULARITY

    def __init__(self, train: InteractionMatrix, *, chaos: Any = None):
        self.train = train
        self.chaos = chaos
        self._scores = train.item_counts().astype(np.float64)

    def serve(self, request: RecommendationRequest) -> np.ndarray:
        scores = self._scores
        if self.chaos is not None:
            scores = self.chaos.poison_scores(self.name, scores)
        return self._rank(scores, request, self.train)


@dataclass
class TierStats:
    """Per-tier serving counters (service bookkeeping)."""

    served: int = 0
    failures: int = 0
    timeouts: int = 0
    skipped_open: int = 0
    errors: dict[str, int] = field(default_factory=dict)

    def record_error(self, message: str) -> None:
        self.errors[message] = self.errors.get(message, 0) + 1

    def to_dict(self) -> dict:
        return {
            "served": self.served,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "skipped_open": self.skipped_open,
            "errors": dict(self.errors),
        }
