"""The one response-provenance schema shared in-process and on the wire.

:class:`ServedResponse` is the single frozen record of "what was served
and why": the ranked items plus the provenance fields
(``served_by`` / ``degraded`` / ``deadline_ms_left`` / ``model_version``
/ ``tier_errors``) that the chaos suite and the SLA benches assert on.
:class:`~repro.serving.service.RecommendationService` returns it
directly, and the HTTP edge (:mod:`repro.edge`) serializes it verbatim
through :meth:`to_json_dict` — both layers read the same dataclass, so
the in-process and wire representations cannot drift.

``RecommendationResponse`` remains as a backwards-compatible alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.utils.exceptions import DataError


@dataclass(frozen=True)
class ServedResponse:
    """A served ranking plus its provenance.

    Attributes
    ----------
    user / items:
        The request's user and the ranked item ids (best first).
    served_by:
        Name of the tier that produced the ranking
        (``"static-popularity"`` for the emergency path).
    degraded:
        True whenever a tier below the primary answered.
    deadline_ms_left:
        Budget remaining when the response was assembled, clamped to
        ``>= 0`` (0.0 means the budget was spent — e.g. only the
        emergency path was fast enough).
    latency_ms:
        Wall time from request arrival to response.
    model_version:
        Version tag of the live model slot at serve time.
    model_age_s:
        Seconds since the live model was loaded into its slot (from the
        service's injectable clock) — degraded-but-stale serving is
        visible right in the provenance, not just in ``/v1/health``.
    retrieval:
        How the ranking's candidates were produced: ``"exact"`` (the
        dense full-catalog scan — every non-primary tier, and the
        primary tier without a retriever) or the retriever's name
        (``"ivf"``) when a shortlist-then-exact-rerank index answered.
        An approximate ranking is never silently passed off as the
        full-ranking protocol.
    tier_errors:
        Why each earlier tier did not answer (breaker open, timeout,
        error message) — the debugging breadcrumb trail.
    """

    user: int
    items: np.ndarray
    served_by: str
    degraded: bool
    deadline_ms_left: float
    latency_ms: float
    model_version: str | None = None
    model_age_s: float | None = None
    retrieval: str = "exact"
    tier_errors: dict = field(default_factory=dict)

    def __post_init__(self):
        # Budget overruns used to surface as negative remainders; the
        # invariant is deadline_ms_left >= 0 (0.0 == budget exhausted).
        object.__setattr__(self, "deadline_ms_left", max(0.0, float(self.deadline_ms_left)))

    # -- wire representation -------------------------------------------
    def to_json_dict(self) -> dict:
        """JSON-ready dict; the HTTP edge embeds this verbatim."""
        return {
            "user": int(self.user),
            "items": [int(item) for item in np.asarray(self.items).ravel()],
            "served_by": str(self.served_by),
            "degraded": bool(self.degraded),
            "deadline_ms_left": float(self.deadline_ms_left),
            "latency_ms": float(self.latency_ms),
            "model_version": None if self.model_version is None else str(self.model_version),
            "model_age_s": None if self.model_age_s is None else float(self.model_age_s),
            "retrieval": str(self.retrieval),
            "tier_errors": {str(k): str(v) for k, v in self.tier_errors.items()},
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ServedResponse":
        """Rebuild from :meth:`to_json_dict` output (wire round-trip)."""
        missing = [key for key in (
            "user", "items", "served_by", "degraded", "deadline_ms_left", "latency_ms",
        ) if key not in payload]
        if missing:
            raise DataError(f"served response missing fields: {missing}")
        return cls(
            user=int(payload["user"]),
            items=np.asarray(list(payload["items"]), dtype=np.int64),
            served_by=str(payload["served_by"]),
            degraded=bool(payload["degraded"]),
            deadline_ms_left=float(payload["deadline_ms_left"]),
            latency_ms=float(payload["latency_ms"]),
            model_version=(
                None if payload.get("model_version") is None
                else str(payload["model_version"])
            ),
            model_age_s=(
                None if payload.get("model_age_s") is None
                else float(payload["model_age_s"])
            ),
            # Pre-scale-ladder wire payloads had no retrieval field; every
            # ranking back then was a dense scan.
            retrieval=str(payload.get("retrieval", "exact")),
            tier_errors=dict(payload.get("tier_errors") or {}),
        )


#: Backwards-compatible alias — PR 3 shipped the class under this name.
RecommendationResponse = ServedResponse
