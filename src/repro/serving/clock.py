"""Back-compat alias: the clocks now live in :mod:`repro.utils.clock`.

The injectable clocks started life serving-only but are now shared with
:mod:`repro.obs` (span timings, event timestamps), which must not import
the serving package.  Import from :mod:`repro.utils.clock` in new code.
"""

from repro.utils.clock import Clock, FakeClock, SystemClock, as_clock

__all__ = ["Clock", "FakeClock", "SystemClock", "as_clock"]
