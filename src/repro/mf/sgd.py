"""SGD and regularization configuration shared by all pairwise models.

The paper learns every MF model by stochastic gradient descent over
sampled tuples (Section 4.3, Eq. 22) with an L2 regularizer
``R(Theta) = alpha_u ||U_u||^2 + alpha_v ||V_t||^2 + beta_v ||b_t||^2``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RegularizationConfig:
    """L2 regularization weights (paper notation: alpha_u, alpha_v, beta_v).

    The paper searches all three jointly over
    ``{0.001, 0.002, 0.01, 0.02, 0.1}``.
    """

    alpha_u: float = 0.01
    alpha_v: float = 0.01
    beta_v: float = 0.01

    def __post_init__(self):
        check_positive(self.alpha_u, "alpha_u", strict=False)
        check_positive(self.alpha_v, "alpha_v", strict=False)
        check_positive(self.beta_v, "beta_v", strict=False)

    @classmethod
    def uniform(cls, weight: float) -> "RegularizationConfig":
        """All three weights equal (the paper's search ties them)."""
        return cls(alpha_u=weight, alpha_v=weight, beta_v=weight)


@dataclass(frozen=True)
class EarlyStoppingConfig:
    """Validation-based early stopping for SGD training.

    After every ``eval_every`` epochs the model is scored by NDCG@k on
    the validation positives (training positives excluded from the
    candidates — the paper's model-selection signal); training stops
    when ``patience`` consecutive evaluations fail to improve, and the
    best parameters seen are restored.

    Attributes
    ----------
    patience:
        Evaluations without improvement before stopping.
    eval_every:
        Epochs between validation evaluations.
    k:
        NDCG cutoff (the paper selects on NDCG@5).
    max_users:
        Validation-user subsample per evaluation (None = all).
    min_delta:
        Minimum improvement that resets the patience counter.
    """

    patience: int = 5
    eval_every: int = 5
    k: int = 5
    max_users: int | None = 200
    min_delta: float = 1e-4

    def __post_init__(self):
        check_positive(self.patience, "patience")
        check_positive(self.eval_every, "eval_every")
        check_positive(self.k, "k")
        if self.max_users is not None:
            check_positive(self.max_users, "max_users")
        check_positive(self.min_delta, "min_delta", strict=False)


@dataclass(frozen=True)
class SGDConfig:
    """Stochastic-gradient training schedule.

    Attributes
    ----------
    learning_rate:
        Step size ``gamma`` (paper searches {0.0001, 0.001, 0.01}).
    n_epochs:
        Number of passes; each epoch performs roughly one sampled update
        per observed training pair (scaled by ``samples_per_pair``).
    batch_size:
        Tuples per vectorized SGD step.
    samples_per_pair:
        Sampled tuples per epoch, as a multiple of training pairs.
    """

    learning_rate: float = 0.08
    n_epochs: int = 60
    batch_size: int = 512
    samples_per_pair: float = 1.0

    def __post_init__(self):
        check_positive(self.learning_rate, "learning_rate")
        check_positive(self.n_epochs, "n_epochs")
        check_positive(self.batch_size, "batch_size")
        check_positive(self.samples_per_pair, "samples_per_pair")

    def steps_per_epoch(self, n_training_pairs: int) -> int:
        """Vectorized steps per epoch for a dataset of the given size."""
        samples = max(int(round(self.samples_per_pair * n_training_pairs)), 1)
        return max(samples // self.batch_size, 1)

    def with_learning_rate(self, learning_rate: float) -> "SGDConfig":
        """A copy with a different step size (used by LR-backoff recovery)."""
        return replace(self, learning_rate=learning_rate)
