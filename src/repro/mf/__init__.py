"""Matrix-factorization substrate.

All non-neural models in the paper share the predictor
``f_ui = U_u · V_i + b_i`` learned by stochastic gradient descent; this
package provides the parameter store, numerically stable logistic
helpers, and the SGD configuration shared by BPR, MPR, CLiMF and CLAPF.
"""

from repro.mf.fold_in import (
    FoldInResult,
    fold_in_user_bpr,
    fold_in_user_ridge,
    fold_in_users_ridge,
)
from repro.mf.functional import log_sigmoid, sigmoid
from repro.mf.params import FactorParams
from repro.mf.similarity import item_similarity_matrix, similar_items, similar_users
from repro.mf.sgd import EarlyStoppingConfig, RegularizationConfig, SGDConfig

__all__ = [
    "FoldInResult",
    "fold_in_user_bpr",
    "fold_in_user_ridge",
    "fold_in_users_ridge",
    "EarlyStoppingConfig",
    "log_sigmoid",
    "sigmoid",
    "FactorParams",
    "item_similarity_matrix",
    "similar_items",
    "similar_users",
    "RegularizationConfig",
    "SGDConfig",
]
