"""Numerically stable logistic functions used throughout the models."""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Stable elementwise sigmoid ``1 / (1 + exp(-x))``.

    Avoids overflow for large negative inputs by branching on the sign.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    if out.ndim == 0:
        return float(out)
    return out


def log_sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Stable elementwise ``ln sigma(x) = -log(1 + exp(-x))``.

    Uses the identity ``ln sigma(x) = min(x, 0) - log1p(exp(-|x|))``.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.minimum(x, 0.0) - np.log1p(np.exp(-np.abs(x)))
    if out.ndim == 0:
        return float(out)
    return out
