"""Fold-in: scoring users who arrived after training.

Production recommenders constantly see new users; retraining per user is
wasteful.  Folding in computes a new user's latent vector against the
*frozen* trained item factors:

* :func:`fold_in_user_ridge` — closed-form weighted ridge regression, the
  WMF-style fold-in (one linear solve, no sampling);
* :func:`fold_in_user_bpr` — a few pairwise SGD steps on the user's
  vector only, matching how the BPR/CLAPF family was trained.

Both leave the model untouched and return the new user's score vector
machinery via :class:`FoldInResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mf.functional import sigmoid
from repro.mf.params import FactorParams
from repro.utils.exceptions import DataError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FoldInResult:
    """A folded-in user's latent vector plus conveniences.

    Attributes
    ----------
    user_vector:
        The inferred ``(d,)`` latent vector.
    params:
        The frozen model parameters the vector was fit against.
    """

    user_vector: np.ndarray
    params: FactorParams

    def predict(self) -> np.ndarray:
        """Scores over all items, ``u V^T + b``.

        Runs the engine's chunk-invariant kernel, so a folded-in user
        scores identically whether queried alone or inside a batch.
        """
        from repro.metrics.scoring import linear_scores

        return linear_scores(self.user_vector, self.params.item_factors, self.params.item_bias)

    def recommend(self, k: int = 5, *, exclude: np.ndarray | None = None) -> np.ndarray:
        """Top-k items, optionally excluding the fold-in positives."""
        from repro.metrics.topk import top_k_items

        return top_k_items(self.predict(), k, exclude=exclude)


def _check_positives(params: FactorParams, positives) -> np.ndarray:
    """Sanitize a fold-in history: finite integral ids, deduplicated.

    The serving path feeds this straight from request payloads, so the
    checks fail with a typed :class:`DataError` instead of letting a
    NaN or float id crash inside the numpy int cast, and repeated items
    (a user re-watching something mid-session) collapse to one
    observation rather than double-weighting the ridge system.
    """
    raw = np.asarray(positives)
    if raw.ndim != 1 or len(raw) == 0:
        raise DataError("fold-in needs at least one observed item")
    if raw.dtype.kind == "f":
        if not np.isfinite(raw).all():
            raise DataError("fold-in item ids contain non-finite values")
        if not np.equal(np.mod(raw, 1), 0).all():
            raise DataError("fold-in item ids must be integers")
    elif raw.dtype.kind not in "iu":
        raise DataError(f"fold-in item ids must be numeric, got dtype {raw.dtype}")
    positives = np.unique(raw.astype(np.int64))
    if positives.min() < 0 or positives.max() >= params.n_items:
        raise DataError("fold-in item ids out of range")
    return positives


def fold_in_user_ridge(
    params: FactorParams,
    positives,
    *,
    weight: float = 10.0,
    reg: float = 0.1,
) -> FoldInResult:
    """WMF-style weighted ridge fold-in against frozen item factors.

    Solves ``(V^T C V + reg I) u = (1 + weight) V_+^T 1`` where ``C``
    puts confidence ``1 + weight`` on the observed items — the same
    half-step :class:`~repro.models.WMF` uses per user.
    """
    check_positive(weight, "weight")
    check_positive(reg, "reg")
    positives = _check_positives(params, positives)
    item_factors = params.item_factors
    d = params.n_factors
    gram = item_factors.T @ item_factors + reg * np.eye(d)
    observed = item_factors[positives]
    a = gram + weight * (observed.T @ observed)
    b = (1.0 + weight) * observed.sum(axis=0)
    return FoldInResult(user_vector=np.linalg.solve(a, b), params=params)


def fold_in_users_ridge(
    params: FactorParams,
    positives_per_user,
    *,
    weight: float = 10.0,
    reg: float = 0.1,
) -> list[FoldInResult]:
    """Ridge fold-in for many new users with one stacked linear solve.

    Builds every user's ``(d, d)`` system and hands the whole stack to
    one batched ``np.linalg.solve`` — the cohort-onboarding path (a
    nightly batch of new users) that amortizes the LAPACK dispatch the
    per-user :func:`fold_in_user_ridge` pays ``B`` times.  Returns one
    :class:`FoldInResult` per input, aligned with ``positives_per_user``.
    """
    check_positive(weight, "weight")
    check_positive(reg, "reg")
    rows = [_check_positives(params, positives) for positives in positives_per_user]
    if not rows:
        return []
    item_factors = params.item_factors
    d = params.n_factors
    gram = item_factors.T @ item_factors + reg * np.eye(d)
    lhs = np.empty((len(rows), d, d))
    rhs = np.empty((len(rows), d))
    for t, positives in enumerate(rows):
        observed = item_factors[positives]
        lhs[t] = gram + weight * (observed.T @ observed)
        rhs[t] = (1.0 + weight) * observed.sum(axis=0)
    vectors = np.linalg.solve(lhs, rhs[:, :, None])[:, :, 0]
    return [FoldInResult(user_vector=vector, params=params) for vector in vectors]


def fold_in_user_bpr(
    params: FactorParams,
    positives,
    *,
    n_steps: int = 200,
    learning_rate: float = 0.05,
    reg: float = 0.01,
    seed=None,
) -> FoldInResult:
    """Pairwise SGD fold-in: optimize only the new user's vector.

    Runs ``n_steps`` BPR updates ``u += lr ((1 - sigma(R)) (V_i - V_j)
    - reg u)`` with ``i`` uniform over the fold-in positives and ``j``
    uniform over the rest of the catalog, item factors frozen.
    """
    check_positive(n_steps, "n_steps")
    check_positive(learning_rate, "learning_rate")
    check_positive(reg, "reg", strict=False)
    positives = _check_positives(params, positives)
    rng = as_generator(seed)
    positive_set = set(int(i) for i in positives)
    user_vector = np.zeros(params.n_factors)
    item_factors = params.item_factors
    bias = params.item_bias
    for _ in range(n_steps):
        i = int(positives[rng.integers(0, len(positives))])
        j = int(rng.integers(0, params.n_items))
        while j in positive_set:
            j = int(rng.integers(0, params.n_items))
        margin = user_vector @ (item_factors[i] - item_factors[j]) + bias[i] - bias[j]
        residual = 1.0 - sigmoid(margin)
        user_vector += learning_rate * (
            residual * (item_factors[i] - item_factors[j]) - reg * user_vector
        )
    return FoldInResult(user_vector=user_vector, params=params)
