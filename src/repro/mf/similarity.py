"""Latent-space similarity queries over trained factor models.

Trained item factors encode taste structure; these helpers expose the
standard production queries on top of them: "items like this one",
"users like this one", and nearest-neighbour matrices for diversity
metrics and explanation UIs.
"""

from __future__ import annotations

import numpy as np

from repro.mf.params import FactorParams
from repro.utils.exceptions import ConfigError, DataError


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, 1e-12)


def _top_similar(vectors: np.ndarray, index: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    if not 0 <= index < len(vectors):
        raise DataError(f"index {index} out of range [0, {len(vectors)})")
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    unit = _unit_rows(vectors)
    similarity = unit @ unit[index]
    similarity[index] = -np.inf  # never return the query itself
    k = min(k, len(vectors) - 1)
    top = np.argpartition(-similarity, k - 1)[:k]
    top = top[np.argsort(-similarity[top], kind="stable")]
    return top, similarity[top]


def similar_items(params: FactorParams, item: int, k: int = 10) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` items most cosine-similar to ``item`` in latent space.

    Returns ``(item_ids, similarities)``, best first, excluding the
    query item.
    """
    return _top_similar(params.item_factors, item, k)


def similar_users(params: FactorParams, user: int, k: int = 10) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` users most cosine-similar to ``user`` in latent space."""
    return _top_similar(params.user_factors, user, k)


def item_similarity_matrix(params: FactorParams) -> np.ndarray:
    """Full cosine item-item similarity (small catalogs only)."""
    unit = _unit_rows(params.item_factors)
    similarity = unit @ unit.T
    np.fill_diagonal(similarity, 0.0)
    return similarity
