"""Factor-model parameter store for ``f_ui = U_u · V_i + b_i``."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.exceptions import ConfigError, DataError
from repro.utils.rng import as_generator


@dataclass
class FactorParams:
    """Latent factors and item biases of a matrix-factorization model.

    Attributes
    ----------
    user_factors:
        ``(n_users, d)`` matrix ``U``.
    item_factors:
        ``(n_items, d)`` matrix ``V``.
    item_bias:
        ``(n_items,)`` vector ``b``.
    """

    user_factors: np.ndarray
    item_factors: np.ndarray
    item_bias: np.ndarray

    def __post_init__(self):
        if self.user_factors.ndim != 2 or self.item_factors.ndim != 2:
            raise DataError("factor matrices must be 2-D")
        if self.user_factors.shape[1] != self.item_factors.shape[1]:
            raise DataError(
                f"latent dims differ: {self.user_factors.shape[1]} vs {self.item_factors.shape[1]}"
            )
        if self.item_bias.shape != (self.item_factors.shape[0],):
            raise DataError("item_bias length must equal n_items")

    @classmethod
    def init(
        cls,
        n_users: int,
        n_items: int,
        n_factors: int,
        *,
        seed=None,
        scale: float = 0.1,
    ) -> "FactorParams":
        """Small-random initialization, ``(r - 0.5) * scale`` following Pan et al.

        The paper fixes ``d = 20`` for BPR/MPR/CLAPF and initializes
        parameters following [57] (Pan, Xiang & Yang, AAAI'12).
        """
        if n_factors < 1:
            raise ConfigError(f"n_factors must be >= 1, got {n_factors}")
        rng = as_generator(seed)
        return cls(
            user_factors=(rng.random((n_users, n_factors)) - 0.5) * scale,
            item_factors=(rng.random((n_items, n_factors)) - 0.5) * scale,
            item_bias=(rng.random(n_items) - 0.5) * scale,
        )

    @property
    def n_users(self) -> int:
        return self.user_factors.shape[0]

    @property
    def n_items(self) -> int:
        return self.item_factors.shape[0]

    @property
    def n_factors(self) -> int:
        return self.user_factors.shape[1]

    def predict_user(self, user: int) -> np.ndarray:
        """Scores of ``user`` over all items: ``U_u V^T + b``."""
        return self.predict_batch(np.asarray([user], dtype=np.int64))[0]

    def predict_batch(self, users) -> np.ndarray:
        """Scores of many users, shape ``(len(users), n_items)``.

        Runs the chunk-invariant ``einsum`` kernel, so each row is
        bitwise identical to :meth:`predict_user` for that user no
        matter how users are batched — the contract the chunked
        evaluator depends on.
        """
        from repro.metrics.scoring import linear_scores

        users = np.asarray(users, dtype=np.int64)
        return linear_scores(self.user_factors[users], self.item_factors, self.item_bias)

    def predict_pairs(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Scores of aligned ``(users[t], items[t])`` pairs."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        dots = np.einsum("td,td->t", self.user_factors[users], self.item_factors[items])
        return dots + self.item_bias[items]

    def score_matrix(self) -> np.ndarray:
        """Full ``(n_users, n_items)`` score matrix (small datasets only)."""
        return self.user_factors @ self.item_factors.T + self.item_bias[None, :]

    def copy(self) -> "FactorParams":
        """Deep copy (used by convergence traces and early stopping)."""
        return FactorParams(
            self.user_factors.copy(), self.item_factors.copy(), self.item_bias.copy()
        )
