"""Request coalescing: single requests micro-batched into one scoring call.

Two layers, split so the batching *policy* is a pure function of an
injectable clock:

* :class:`CoalesceBuffer` — the deterministic decision core.  Items
  enter in arrival order; a batch flushes when it reaches
  ``max_batch`` items or when ``max_wait_ms`` has elapsed since the
  *first* pending item (never per-item — a steady trickle cannot
  postpone a flush forever).  With a
  :class:`~repro.utils.clock.FakeClock` every flush boundary is exact,
  which is what the determinism tests pin.
* :class:`MicroBatcher` — the asyncio glue: ``submit()`` parks the
  caller on a future, full batches dispatch immediately, and a single
  timer task flushes stragglers at the deadline.  Dispatch runs the
  batch through :meth:`RecommendationService.recommend_batch
  <repro.serving.service.RecommendationService.recommend_batch>` on a
  worker thread so the event loop never blocks on scoring.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.serving.schema import ServedResponse
from repro.serving.tiers import RecommendationRequest
from repro.utils.clock import Clock, as_clock
from repro.utils.exceptions import ConfigError


@dataclass(frozen=True)
class CoalesceConfig:
    """Micro-batching knobs.

    Attributes
    ----------
    max_batch:
        Flush as soon as this many requests are pending.
    max_wait_ms:
        Flush a non-empty buffer this long after its first request
        arrived, full or not — the latency cost a request can pay for
        batching is bounded by this.
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ConfigError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")


class CoalesceBuffer:
    """Deterministic FIFO micro-batching core (no asyncio, no threads).

    ``add`` returns the flushed batch when the arrival filled it;
    ``poll`` returns the flushed batch when the wait deadline passed.
    Batches always preserve arrival order, so downstream responses can
    be matched back to callers positionally.
    """

    def __init__(self, config: CoalesceConfig, *, clock: Clock | None = None):
        self.config = config
        self.clock = as_clock(clock)
        self._pending: list[Any] = []
        self._first_at: float | None = None
        self.flushes_full_ = 0
        self.flushes_timed_ = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, item: Any) -> list[Any] | None:
        """Enqueue; returns the batch if this arrival filled it."""
        if not self._pending:
            self._first_at = self.clock.monotonic()
        self._pending.append(item)
        if len(self._pending) >= self.config.max_batch:
            self.flushes_full_ += 1
            return self._drain()
        return None

    def poll(self) -> list[Any] | None:
        """Returns the batch if the oldest pending item is past its wait."""
        if not self._pending or self._first_at is None:
            return None
        waited_ms = (self.clock.monotonic() - self._first_at) * 1000.0
        if waited_ms >= self.config.max_wait_ms:
            self.flushes_timed_ += 1
            return self._drain()
        return None

    def flush(self) -> list[Any]:
        """Unconditionally drain (server shutdown)."""
        return self._drain()

    def wait_remaining_ms(self) -> float | None:
        """Milliseconds until the pending batch is due (None when empty)."""
        if not self._pending or self._first_at is None:
            return None
        waited_ms = (self.clock.monotonic() - self._first_at) * 1000.0
        return max(0.0, self.config.max_wait_ms - waited_ms)

    def _drain(self) -> list[Any]:
        batch, self._pending = self._pending, []
        self._first_at = None
        return batch


BatchRunner = Callable[[Sequence[RecommendationRequest]], Sequence[ServedResponse]]


class MicroBatcher:
    """Asyncio front half of the coalescer.

    ``runner`` is the synchronous batch call (normally
    ``service.recommend_batch``); it is executed via
    ``loop.run_in_executor`` on ``executor`` so scoring happens off the
    event loop.  All futures of a dispatched batch resolve from one
    runner call, in arrival order.
    """

    def __init__(
        self,
        runner: BatchRunner,
        config: CoalesceConfig | None = None,
        *,
        clock: Clock | None = None,
        executor: Any = None,
    ):
        self.config = config or CoalesceConfig()
        self.buffer = CoalesceBuffer(self.config, clock=clock)
        self.runner = runner
        self.executor = executor
        self.batches_dispatched_ = 0
        self._timer: asyncio.Task | None = None

    async def submit(self, request: RecommendationRequest) -> ServedResponse:
        """Park on the coalescer; resolves with this request's response."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        batch = self.buffer.add((request, future))
        if batch is not None:
            self._cancel_timer()
            # Shielded: this caller cancelling (dropped connection) must
            # not orphan the other callers parked on the same batch.
            await asyncio.shield(self._dispatch(batch))
        elif self._timer is None or self._timer.done():
            self._timer = loop.create_task(self._flush_after_wait())
        return await future

    async def close(self) -> None:
        """Flush any stragglers and stop the timer."""
        self._cancel_timer()
        batch = self.buffer.flush()
        if batch:
            await self._dispatch(batch)

    async def _flush_after_wait(self) -> None:
        while True:
            remaining_ms = self.buffer.wait_remaining_ms()
            if remaining_ms is None:
                return
            if remaining_ms > 0:
                await asyncio.sleep(remaining_ms / 1000.0)
            batch = self.buffer.poll()
            if batch is not None:
                # Shielded: _cancel_timer (a concurrent full-batch
                # flush) must not kill a dispatch already in flight.
                # Loop (not return): requests that arrived *during*
                # the dispatch await still need their own flush.
                await asyncio.shield(self._dispatch(batch))

    def _cancel_timer(self) -> None:
        if self._timer is not None and not self._timer.done():
            self._timer.cancel()
        self._timer = None

    async def _dispatch(self, batch: list) -> None:
        self.batches_dispatched_ += 1
        requests = [request for request, _ in batch]
        loop = asyncio.get_running_loop()
        try:
            responses = await loop.run_in_executor(
                self.executor, lambda: list(self.runner(requests))
            )
        except Exception as error:  # noqa: BLE001 - fan the failure out to callers
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), response in zip(batch, responses):
            if not future.done():
                future.set_result(response)
