"""Zipf/burst traffic simulator for the HTTP edge.

Workload generation is *offline and deterministic*: a
:class:`WorkloadConfig` plus a seed expands into a concrete schedule of
:class:`ScheduledRequest` arrivals before any traffic flows, so the same
config always replays the same user sequence.  The pieces:

* **user popularity** — Zipf-distributed (``p ∝ rank^{-s}``) over a
  seeded permutation of the user ids, so "popular" users are scattered
  across the id space instead of clustering at 0;
* **arrival process** — exponential inter-arrivals whose instantaneous
  rate follows the mode: ``zipf`` (steady), ``diurnal`` (sinusoidal
  day curve compressed into ``diurnal_period_s``), ``burst``
  (periodic ``burst_multiplier``× spikes), ``replay`` (a recorded
  trace);
* **chaos** — a list of :class:`ChaosEvent` timestamps applied mid-run
  through a shared-process
  :class:`~repro.resilience.chaos.ServiceFaultInjector`, so the drill
  exercises the cascade's fallback path while traffic is in flight;
* **the driver** — :func:`run_load` plays a schedule against a live
  server with ``concurrency`` keep-alive virtual clients and folds the
  outcomes into a :class:`LoadReport` (p50/p99, fallback rate, shed
  rate, failed count).

Shed (429/503) is counted separately from *failed* (transport errors,
5xx, unexpected 4xx): shedding is the server protecting itself, failure
is the server breaking its contract.  The CI chaos drill asserts
``failed == 0`` while faults are injected.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.edge.client import AsyncHttpClient, ClientError
from repro.serving.tiers import PERSONALIZED
from repro.utils.atomicio import write_json_atomic
from repro.utils.clock import Clock, as_clock
from repro.utils.exceptions import ConfigError, DataError
from repro.utils.rng import as_generator

MODES = ("zipf", "diurnal", "burst", "replay")


@dataclass(frozen=True)
class WorkloadConfig:
    """One traffic scenario, fully determined by its fields + ``seed``."""

    n_users: int
    requests: int = 500
    rate_rps: float = 200.0
    mode: str = "zipf"
    zipf_s: float = 1.1
    k: int = 10
    deadline_ms: float | None = None
    diurnal_amplitude: float = 0.6
    diurnal_period_s: float = 60.0
    burst_every_s: float = 10.0
    burst_duration_s: float = 2.0
    burst_multiplier: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if self.mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.n_users < 1:
            raise ConfigError(f"n_users must be >= 1, got {self.n_users}")
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1, got {self.requests}")
        if self.rate_rps <= 0:
            raise ConfigError(f"rate_rps must be > 0, got {self.rate_rps}")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.burst_multiplier < 1:
            raise ConfigError(
                f"burst_multiplier must be >= 1, got {self.burst_multiplier}"
            )


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned arrival."""

    at_s: float
    user: int
    k: int
    deadline_ms: float | None = None

    def to_json_dict(self) -> dict:
        payload: dict = {"at_s": round(self.at_s, 6), "user": self.user, "k": self.k}
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload


@dataclass(frozen=True)
class ChaosEvent:
    """One mid-run fault transition.

    ``action`` is one of ``latency`` / ``exception`` / ``nan`` /
    ``clear``; ``tier`` names the cascade tier to poison (ignored for
    ``clear``).
    """

    at_s: float
    action: str
    tier: str = PERSONALIZED
    latency_ms: float = 0.0

    def apply(self, chaos) -> None:
        if self.action == "clear":
            chaos.clear()
        elif self.action == "latency":
            chaos.inject(self.tier, latency_ms=self.latency_ms)
        elif self.action == "exception":
            chaos.inject(self.tier, exception=RuntimeError(f"chaos: {self.tier} down"))
        elif self.action == "nan":
            chaos.inject(self.tier, nan_scores=True)
        else:
            raise ConfigError(f"unknown chaos action {self.action!r}")


def zipf_user_probabilities(n_users: int, s: float, rng) -> np.ndarray:
    """``p[user] ∝ rank^{-s}`` with ranks assigned by a seeded permutation."""
    ranks = np.arange(1, n_users + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    probabilities = np.empty(n_users, dtype=np.float64)
    probabilities[rng.permutation(n_users)] = weights / weights.sum()
    return probabilities


def _rate_at(config: WorkloadConfig, t: float) -> float:
    rate = config.rate_rps
    if config.mode == "diurnal":
        rate *= 1.0 + config.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / config.diurnal_period_s
        )
    elif config.mode == "burst":
        if (t % config.burst_every_s) < config.burst_duration_s:
            rate *= config.burst_multiplier
    return max(rate, 1e-6)


def generate_schedule(config: WorkloadConfig) -> list[ScheduledRequest]:
    """Expand a config into concrete arrivals (deterministic in ``seed``)."""
    rng = as_generator(config.seed)
    probabilities = zipf_user_probabilities(config.n_users, config.zipf_s, rng)
    users = rng.choice(config.n_users, size=config.requests, p=probabilities)
    schedule: list[ScheduledRequest] = []
    t = 0.0
    for user in users:
        t += float(rng.exponential(1.0 / _rate_at(config, t)))
        schedule.append(
            ScheduledRequest(
                at_s=t, user=int(user), k=config.k, deadline_ms=config.deadline_ms
            )
        )
    return schedule


def save_trace(path: str | Path, schedule: Sequence[ScheduledRequest]) -> Path:
    """Persist a schedule for ``replay`` mode (atomic write)."""
    return write_json_atomic(
        path,
        {"version": "v1", "requests": [request.to_json_dict() for request in schedule]},
    )


def load_trace(path: str | Path) -> list[ScheduledRequest]:
    """Read back a :func:`save_trace` artifact."""
    import json

    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or "requests" not in raw:
        raise DataError(f"{path} is not a loadgen trace (missing 'requests')")
    return [
        ScheduledRequest(
            at_s=float(item["at_s"]),
            user=int(item["user"]),
            k=int(item.get("k", 10)),
            deadline_ms=item.get("deadline_ms"),
        )
        for item in raw["requests"]
    ]


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one scheduled request.

    ``retries`` counts transport-level resends: a real client facing a
    snapped connection retries against the restarted server, so a
    request that eventually succeeds is a success with a retry count,
    not a failure.  Only retries-exhausted surfaces as
    ``transport_error=True``.
    """

    status: int
    latency_ms: float
    served_by: str | None = None
    degraded: bool = False
    transport_error: bool = False
    retries: int = 0


#: Statuses that count as deliberate load shedding, not failure.
SHED_STATUSES = frozenset({429, 503})


@dataclass
class LoadReport:
    """Aggregated outcomes of one load run."""

    outcomes: list[RequestOutcome] = field(default_factory=list)
    duration_s: float = 0.0
    concurrency: int = 1
    mode: str = "zipf"

    def record(self, outcome: RequestOutcome) -> None:
        self.outcomes.append(outcome)

    # -- derived -------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> int:
        return sum(1 for o in self.outcomes if o.status == 200)

    @property
    def shed(self) -> int:
        return sum(
            1 for o in self.outcomes
            if not o.transport_error and o.status in SHED_STATUSES
        )

    @property
    def failed(self) -> int:
        """Contract breaches: transport errors + anything not 200/shed."""
        return sum(
            1 for o in self.outcomes
            if o.transport_error
            or (o.status != 200 and o.status not in SHED_STATUSES)
        )

    @property
    def degraded(self) -> int:
        return sum(1 for o in self.outcomes if o.status == 200 and o.degraded)

    @property
    def retried(self) -> int:
        """Requests that needed at least one transport-level resend."""
        return sum(1 for o in self.outcomes if o.retries > 0)

    def fallback_rate(self) -> float:
        """Fraction of 200s served by any tier below ``personalized``."""
        served = [o for o in self.outcomes if o.status == 200]
        if not served:
            return 0.0
        fallbacks = sum(1 for o in served if o.served_by != PERSONALIZED)
        return fallbacks / len(served)

    def shed_rate(self) -> float:
        return self.shed / self.total if self.total else 0.0

    def latency_percentiles(self) -> dict[str, float]:
        served = [o.latency_ms for o in self.outcomes if o.status == 200]
        if not served:
            return {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0}
        values = np.asarray(served, dtype=np.float64)
        p50, p90, p99 = np.percentile(values, [50.0, 90.0, 99.0])
        return {
            "p50_ms": round(float(p50), 3),
            "p90_ms": round(float(p90), 3),
            "p99_ms": round(float(p99), 3),
        }

    def tier_mix(self) -> dict[str, int]:
        mix: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.status == 200 and outcome.served_by:
                mix[outcome.served_by] = mix.get(outcome.served_by, 0) + 1
        return mix

    def to_json_dict(self) -> dict:
        throughput = self.total / self.duration_s if self.duration_s > 0 else 0.0
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "total": self.total,
            "ok": self.ok,
            "shed": self.shed,
            "failed": self.failed,
            "degraded": self.degraded,
            "retried": self.retried,
            "fallback_rate": round(self.fallback_rate(), 4),
            "shed_rate": round(self.shed_rate(), 4),
            "duration_s": round(self.duration_s, 3),
            "throughput_rps": round(throughput, 1),
            "tier_mix": self.tier_mix(),
            **self.latency_percentiles(),
        }


async def run_load(
    host: str,
    port: int,
    schedule: Sequence[ScheduledRequest],
    *,
    concurrency: int = 8,
    mode: str = "zipf",
    clock: Clock | None = None,
    chaos=None,
    chaos_events: Sequence[ChaosEvent] = (),
    use_get_every: int = 0,
    timeout_s: float = 10.0,
    max_attempts: int = 1,
    retry_backoff_s: float = 0.05,
) -> LoadReport:
    """Play ``schedule`` against a live edge server.

    ``concurrency`` virtual clients (each its own keep-alive
    connection) pull arrivals from a shared queue, sleeping until each
    arrival time is due; a client that falls behind sends immediately,
    so bursts overflow into queueing like real traffic.  When
    ``chaos`` (a shared-process ``ServiceFaultInjector``) is given,
    ``chaos_events`` fire from a side task at their scheduled times.
    Every ``use_get_every``-th request uses the ``GET`` form of
    ``/v1/recommend`` to keep both entry points exercised.

    ``max_attempts > 1`` enables transport-error retries with linear
    backoff (``retry_backoff_s * attempt``): the disaster drills kill
    the edge component mid-traffic, and the contract under test is
    "every request eventually succeeds against the restarted server",
    so the virtual clients must behave like real retrying clients.
    Non-200 *responses* are never retried — only snapped connections.
    """
    if concurrency < 1:
        raise ConfigError(f"concurrency must be >= 1, got {concurrency}")
    if max_attempts < 1:
        raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
    clock = as_clock(clock)
    report = LoadReport(concurrency=concurrency, mode=mode)
    queue: asyncio.Queue = asyncio.Queue()
    for index, request in enumerate(schedule):
        queue.put_nowait((index, request))
    started = clock.monotonic()

    async def chaos_task() -> None:
        for event in sorted(chaos_events, key=lambda e: e.at_s):
            delay = event.at_s - (clock.monotonic() - started)
            if delay > 0:
                await asyncio.sleep(delay)
            event.apply(chaos)

    async def worker() -> None:
        client = AsyncHttpClient(host, port, timeout_s=timeout_s)
        try:
            while True:
                try:
                    index, request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                delay = request.at_s - (clock.monotonic() - started)
                if delay > 0:
                    await asyncio.sleep(delay)
                report.record(
                    await _fire(
                        client, request, clock, use_get_every, index,
                        max_attempts=max_attempts, retry_backoff_s=retry_backoff_s,
                    )
                )
        finally:
            await client.close()

    tasks = [asyncio.create_task(worker()) for _ in range(concurrency)]
    if chaos is not None and chaos_events:
        tasks.append(asyncio.create_task(chaos_task()))
    await asyncio.gather(*tasks)
    report.duration_s = clock.monotonic() - started
    return report


async def _fire(
    client: AsyncHttpClient,
    request: ScheduledRequest,
    clock: Clock,
    use_get_every: int,
    index: int,
    *,
    max_attempts: int = 1,
    retry_backoff_s: float = 0.05,
) -> RequestOutcome:
    sent = clock.monotonic()
    reply = None
    retries = 0
    for attempt in range(max_attempts):
        try:
            if use_get_every and index % use_get_every == 0:
                query = f"/v1/recommend?user={request.user}&k={request.k}"
                if request.deadline_ms is not None:
                    query += f"&deadline_ms={request.deadline_ms}"
                reply = await client.get(query)
            else:
                payload: dict = {"user": request.user, "k": request.k}
                if request.deadline_ms is not None:
                    payload["deadline_ms"] = request.deadline_ms
                reply = await client.post("/v1/recommend", payload)
            break
        except ClientError:
            if attempt + 1 >= max_attempts:
                return RequestOutcome(
                    status=0,
                    latency_ms=(clock.monotonic() - sent) * 1000.0,
                    transport_error=True,
                    retries=retries,
                )
            retries += 1
            await asyncio.sleep(retry_backoff_s * (attempt + 1))
    assert reply is not None
    latency_ms = (clock.monotonic() - sent) * 1000.0
    served_by = None
    degraded = False
    if reply.status == 200:
        try:
            body = reply.json()
            served_by = body.get("served_by")
            degraded = bool(body.get("degraded", False))
        except ValueError:
            return RequestOutcome(
                status=reply.status, latency_ms=latency_ms,
                transport_error=True, retries=retries,
            )
    return RequestOutcome(
        status=reply.status,
        latency_ms=latency_ms,
        served_by=served_by,
        degraded=degraded,
        retries=retries,
    )


def run_load_sync(
    host: str,
    port: int,
    schedule: Sequence[ScheduledRequest],
    **kwargs,
) -> LoadReport:
    """Synchronous entry point for the CLI and benchmarks."""
    return asyncio.run(run_load(host, port, schedule, **kwargs))
