"""A stdlib-only asyncio HTTP/1.1 front end for the serving cascade.

:class:`EdgeServer` wraps a
:class:`~repro.serving.service.RecommendationService` behind a JSON API:

========  ==========================  =======================================
method    path                        behavior
========  ==========================  =======================================
POST      ``/v1/recommend``           one request; coalesced + micro-batched
GET       ``/v1/recommend``           same, query-string form (curl-friendly)
POST      ``/v1/recommend/batch``     explicit batch → ``recommend_batch``
POST      ``/v1/feedback``            durable WAL append (when ``wal=`` given)
GET       ``/v1/health``              liveness + breakers + model staleness
GET       ``/v1/metrics``             Prometheus text (``repro.obs`` export)
========  ==========================  =======================================

Design points:

* **versioned schemas** — every body is validated through
  :mod:`repro.edge.schema`; schema failures return a typed
  :class:`~repro.edge.schema.ErrorResponseV1` with field paths, never a
  bare 500;
* **coalescing** — single requests park in a
  :class:`~repro.edge.coalesce.MicroBatcher` and flush into one
  ``recommend_batch`` call (flush on max-batch or max-wait on the
  injectable clock), so concurrent singles cost one einsum, not N;
* **deadline propagation** — a request's ``deadline_ms`` (capped by
  :attr:`EdgeConfig.max_deadline_ms`) flows straight into the service's
  per-request :class:`~repro.serving.deadline.Deadline` budget;
* **load shedding** — beyond :attr:`EdgeConfig.max_inflight` concurrent
  requests the server answers 429 immediately; beyond
  :attr:`EdgeConfig.max_connections` open sockets, or while draining,
  it answers 503.  Every shed carries a ``Retry-After`` header
  (:attr:`EdgeConfig.retry_after_s`) and is counted per reason *and*
  per route — a shed request is *not* a failed request;
* **observability** — per-route latency histograms and per-status
  counters in the shared :class:`~repro.obs.registry.MetricsRegistry`,
  scraped back out through ``/v1/metrics``.

Everything is standard library: ``asyncio`` streams, no web framework.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Coroutine
from urllib.parse import parse_qsl, urlsplit

from repro.edge.coalesce import CoalesceConfig, MicroBatcher
from repro.edge.schema import (
    API_VERSION,
    ERROR_DRAINING,
    ERROR_INTERNAL,
    ERROR_METHOD_NOT_ALLOWED,
    ERROR_NOT_FOUND,
    ERROR_OVERLOADED,
    ERROR_PAYLOAD_TOO_LARGE,
    MAX_BATCH_SIZE,
    BatchRecommendRequestV1,
    BatchRecommendResponseV1,
    ErrorResponseV1,
    FeedbackRequestV1,
    FeedbackResponseV1,
    FieldIssue,
    HealthResponseV1,
    ReadyResponseV1,
    RecommendRequestV1,
    RecommendResponseV1,
    SchemaError,
)
from repro.obs.export import prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.serving.service import RecommendationService
from repro.streaming.wal import WalRecord, WriteAheadLog
from repro.utils.clock import Clock, as_clock
from repro.utils.exceptions import ConfigError

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: HTTP status each schema error code maps to.
_SCHEMA_STATUS = {"batch_too_large": 413, "payload_too_large": 413}


@dataclass(frozen=True)
class EdgeConfig:
    """Front-end knobs (the service keeps its own
    :class:`~repro.serving.service.ServiceConfig`)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port from the server
    max_connections: int = 128
    max_inflight: int = 64
    max_body_bytes: int = 1 << 20
    max_batch: int = MAX_BATCH_SIZE
    max_deadline_ms: float = 2_000.0
    default_deadline_ms: float | None = None  # None = service default
    idle_timeout_s: float = 30.0
    workers: int = 8
    coalesce: CoalesceConfig = field(default_factory=CoalesceConfig)
    coalesce_singles: bool = True
    retry_after_s: float = 1.0  # Retry-After hint on every 429/503 shed
    # Highest feedback user id accepted = served n_users + this headroom.
    # Acknowledged ids are replayed forever and grow the factor matrix,
    # so the cap bounds what one hostile POST can commit into the WAL.
    feedback_user_headroom: int = 100_000

    def __post_init__(self):
        if self.max_connections < 1 or self.max_inflight < 1:
            raise ConfigError("max_connections and max_inflight must be >= 1")
        if self.max_batch < 1 or self.max_batch > MAX_BATCH_SIZE:
            raise ConfigError(f"max_batch must be in [1, {MAX_BATCH_SIZE}], got {self.max_batch}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.retry_after_s <= 0:
            raise ConfigError(f"retry_after_s must be > 0, got {self.retry_after_s}")
        if self.feedback_user_headroom < 0:
            raise ConfigError(
                f"feedback_user_headroom must be >= 0, got {self.feedback_user_headroom}"
            )


@dataclass(frozen=True)
class HttpRequest:
    """One parsed inbound request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SchemaError([FieldIssue("$", f"body is not valid JSON: {error}")]) from None


@dataclass(frozen=True)
class HttpResponse:
    """One outbound response (JSON unless ``content_type`` overrides)."""

    status: int
    payload: Any = None
    content_type: str = "application/json"
    body: bytes | None = None
    extra_headers: tuple[tuple[str, str], ...] = ()

    def encode(self, *, keep_alive: bool) -> bytes:
        body = self.body
        if body is None:
            body = (json.dumps(self.payload, sort_keys=True) + "\n").encode("utf-8")
        reason = _REASONS.get(self.status, "Unknown")
        extra = "".join(f"{name}: {value}\r\n" for name, value in self.extra_headers)
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Server: repro-edge/{API_VERSION}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        )
        return head.encode("ascii") + body


def _error_response(status: int, code: str, message: str, issues=(), *, headers=()) -> HttpResponse:
    return HttpResponse(
        status,
        ErrorResponseV1(code=code, message=message, issues=tuple(issues)).to_json_dict(),
        extra_headers=tuple(headers),
    )


class EdgeServer:
    """The asyncio front end.  One instance per served model/service.

    Use :meth:`start`/:meth:`stop` inside a running loop, or
    :class:`EdgeServerThread` to host it in a background thread (tests,
    benchmarks, the ``repro loadtest --self-boot`` path).
    """

    def __init__(
        self,
        service: RecommendationService,
        *,
        config: EdgeConfig | None = None,
        obs: MetricsRegistry | None = None,
        clock: Clock | None = None,
        wal: WriteAheadLog | None = None,
        readiness: Callable[[], tuple[bool, dict]] | None = None,
    ):
        self.service = service
        self.config = config or EdgeConfig()
        # The edge defaults to a *live* registry (unlike library code):
        # /v1/metrics is part of the API surface.
        self.obs = obs if obs is not None else MetricsRegistry()
        self.clock = as_clock(clock)
        self.wal = wal
        # Readiness is delegated to whoever owns the component tree (the
        # runtime supervisor); a standalone edge with no supervisor is
        # ready whenever it is not draining.
        self.readiness = readiness
        self._server: asyncio.base_events.Server | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-edge"
        )
        self._batcher = MicroBatcher(
            self.service.recommend_batch, self.config.coalesce,
            clock=self.clock, executor=self._pool,
        )
        self._connections = 0
        self._inflight = 0
        self._draining = False
        self._routes: dict[str, dict[str, Callable[[HttpRequest], Coroutine[Any, Any, HttpResponse]]]] = {
            "/v1/recommend": {"POST": self._handle_recommend, "GET": self._handle_recommend_get},
            "/v1/recommend/batch": {"POST": self._handle_batch},
            "/v1/health": {"GET": self._handle_health},
            "/v1/ready": {"GET": self._handle_ready},
            "/v1/metrics": {"GET": self._handle_metrics},
        }
        # The ingestion endpoint exists only when the server is given a
        # durable log to acknowledge into — a read-only edge has no
        # business returning 200 for feedback it cannot persist.
        if self.wal is not None:
            self._routes["/v1/feedback"] = {"POST": self._handle_feedback}

    def _retry_after(self) -> tuple[tuple[str, str], ...]:
        """The ``Retry-After`` header every 429/503 shed carries."""
        return (("Retry-After", str(max(1, math.ceil(self.config.retry_after_s)))),)

    def _shed(
        self, status: int, code: str, message: str, *, reason: str, route: str
    ) -> HttpResponse:
        """Count one shed (per reason *and* per route) and build its response."""
        self.obs.counter("http_shed_total", reason=reason, route=route).inc()
        return _error_response(status, code, message, headers=self._retry_after())

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def port(self) -> int:
        if self._server is None:
            raise ConfigError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Drain: stop accepting, flush the coalescer, release workers."""
        self._draining = True
        await self._batcher.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False, cancel_futures=True)

    # -- connection / request plumbing ---------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._connections >= self.config.max_connections:
            # No request line has been read yet, so there is no route to
            # attribute this shed to — "none" keeps the label total.
            writer.write(
                self._shed(
                    503, ERROR_OVERLOADED, "server at connection capacity",
                    reason="connections", route="none",
                ).encode(keep_alive=False)
            )
            await self._close(writer)
            return
        self._connections += 1
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            self.obs.counter("http_connection_errors_total").inc()
        except asyncio.CancelledError:
            # Drain cancels parked keep-alive reads; finishing the task
            # normally keeps asyncio's reader-protocol done-callback
            # from re-raising the cancellation at loop teardown.
            self.obs.counter("http_connections_cancelled_total").inc()
        finally:
            self._connections -= 1
            await self._close(writer)

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            request = await self._read_request(reader, writer)
            if request is None:
                return
            keep_alive = request.headers.get("connection", "keep-alive").lower() != "close"
            response = await self._dispatch(request)
            writer.write(response.encode(keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> HttpRequest | None:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=self.config.idle_timeout_s
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, asyncio.LimitOverrunError):
            return None
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, target, _protocol = request_line.split(" ", 2)
        except ValueError:
            writer.write(
                _error_response(400, "invalid_request", "malformed request line").encode(
                    keep_alive=False
                )
            )
            return None
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        split = urlsplit(target)
        if length > self.config.max_body_bytes:
            self.obs.counter(
                "http_shed_total", reason="body_size",
                route=split.path if split.path in self._routes else "unknown",
            ).inc()
            writer.write(
                _error_response(
                    413, ERROR_PAYLOAD_TOO_LARGE,
                    f"body of {length} bytes exceeds the {self.config.max_body_bytes} limit",
                ).encode(keep_alive=False)
            )
            return None
        body = await reader.readexactly(length) if length else b""
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        return HttpRequest(
            method=method.upper(), path=split.path, query=query, headers=headers, body=body
        )

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        route = self._routes.get(request.path)
        label = request.path if route is not None else "unknown"
        started = self.clock.monotonic()
        response = await self._route(request, route)
        latency_ms = (self.clock.monotonic() - started) * 1000.0
        self.obs.histogram("http_request_latency_ms", route=label).observe(latency_ms)
        self.obs.counter(
            "http_responses_total", route=label, status=str(response.status)
        ).inc()
        return response

    async def _route(self, request: HttpRequest, route) -> HttpResponse:
        label = request.path if route is not None else "unknown"
        if self._draining:
            return self._shed(
                503, ERROR_DRAINING, "server is draining",
                reason="draining", route=label,
            )
        if route is None:
            return _error_response(
                404, ERROR_NOT_FOUND, f"no such route: {request.path} (API root is /v1)"
            )
        handler = route.get(request.method)
        if handler is None:
            return _error_response(
                405, ERROR_METHOD_NOT_ALLOWED,
                f"{request.method} not allowed on {request.path} "
                f"(allowed: {', '.join(sorted(route))})",
            )
        if self._inflight >= self.config.max_inflight:
            return self._shed(
                429, ERROR_OVERLOADED,
                f"more than {self.config.max_inflight} requests in flight; retry",
                reason="inflight", route=label,
            )
        self._inflight += 1
        try:
            return await handler(request)
        except SchemaError as error:
            return HttpResponse(
                _SCHEMA_STATUS.get(error.code, 400),
                ErrorResponseV1.from_schema_error(error).to_json_dict(),
            )
        except Exception as error:  # noqa: BLE001 - the edge never leaks tracebacks
            self.obs.counter("http_internal_errors_total").inc()
            return _error_response(
                500, ERROR_INTERNAL, str(error) or type(error).__name__
            )
        finally:
            self._inflight -= 1

    # -- route handlers ------------------------------------------------
    def _clamp_deadline(self, parsed: RecommendRequestV1) -> RecommendRequestV1:
        deadline_ms = parsed.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        if deadline_ms is not None:
            deadline_ms = min(deadline_ms, self.config.max_deadline_ms)
        if deadline_ms == parsed.deadline_ms:
            return parsed
        return RecommendRequestV1(
            user=parsed.user, k=parsed.k, history=parsed.history,
            deadline_ms=deadline_ms, exclude_observed=parsed.exclude_observed,
        )

    async def _serve_one(self, parsed: RecommendRequestV1) -> HttpResponse:
        serving_request = self._clamp_deadline(parsed).to_serving()
        if self.config.coalesce_singles:
            served = await self._batcher.submit(serving_request)
        else:
            loop = asyncio.get_running_loop()
            served = await loop.run_in_executor(
                self._pool, lambda: self.service.recommend(serving_request)
            )
        return HttpResponse(200, RecommendResponseV1(served=served).to_json_dict())

    async def _handle_recommend(self, request: HttpRequest) -> HttpResponse:
        parsed = RecommendRequestV1.from_json_dict(request.json())
        return await self._serve_one(parsed)

    async def _handle_recommend_get(self, request: HttpRequest) -> HttpResponse:
        parsed = RecommendRequestV1.from_json_dict(_query_to_payload(request.query))
        return await self._serve_one(parsed)

    async def _handle_batch(self, request: HttpRequest) -> HttpResponse:
        parsed = BatchRecommendRequestV1.from_json_dict(
            request.json(), max_batch=self.config.max_batch
        )
        serving_requests = [
            self._clamp_deadline(item).to_serving() for item in parsed.requests
        ]
        loop = asyncio.get_running_loop()
        responses = await loop.run_in_executor(
            self._pool, lambda: self.service.recommend_batch(serving_requests)
        )
        return HttpResponse(
            200, BatchRecommendResponseV1(responses=tuple(responses)).to_json_dict()
        )

    async def _handle_health(self, _request: HttpRequest) -> HttpResponse:
        snapshot = self.service.snapshot()
        return HttpResponse(
            200,
            HealthResponseV1(
                status="draining" if self._draining else "ok",
                model_version=snapshot["model_version"],
                requests_served=snapshot["requests_served"],
                model_age_s=snapshot.get("model_age_s"),
                breakers={
                    name: state.get("state", "unknown")
                    for name, state in snapshot["breakers"].items()
                },
            ).to_json_dict(),
        )

    async def _handle_ready(self, _request: HttpRequest) -> HttpResponse:
        # Reached only when not draining (_route sheds every request
        # with 503 while draining, which is the correct ready answer).
        if self.readiness is None:
            return HttpResponse(200, ReadyResponseV1(status="ready").to_json_dict())
        is_ready, detail = self.readiness()
        payload = ReadyResponseV1(
            status="ready" if is_ready else "not_ready",
            reason=detail.get("gate"),
            components=detail.get("components", {}),
            blocked_on=tuple(detail.get("blocked_on", ())),
        ).to_json_dict()
        if is_ready:
            return HttpResponse(200, payload)
        self.obs.counter("http_not_ready_total").inc()
        return HttpResponse(503, payload, extra_headers=self._retry_after())

    async def _handle_feedback(self, request: HttpRequest) -> HttpResponse:
        assert self.wal is not None  # route registered only with a WAL
        parsed = FeedbackRequestV1.from_json_dict(
            request.json(),
            max_user=self.service.train.n_users - 1 + self.config.feedback_user_headroom,
        )
        record = WalRecord(
            key=parsed.record_key(), user=parsed.user, items=parsed.items, ts=parsed.ts
        )
        # The append fsyncs before returning (per the WAL's policy), so
        # run it on the worker pool — the event loop must not block on
        # disk flushes while other connections wait.
        wal = self.wal
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(self._pool, lambda: wal.append(record))
        self.obs.counter(
            "http_feedback_total", duplicate=str(result.duplicate).lower()
        ).inc()
        return HttpResponse(
            200,
            FeedbackResponseV1(
                duplicate=result.duplicate,
                segment=result.position.segment,
                offset=result.position.offset,
                records=len(wal),
            ).to_json_dict(),
        )

    async def _handle_metrics(self, _request: HttpRequest) -> HttpResponse:
        text = prometheus_text(self.obs)
        return HttpResponse(
            200, body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _close(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except asyncio.CancelledError:
            # A drain-time cancel can surface here (the task's pending
            # cancellation fires at the next await); the transport is
            # already closing, so finish the task normally.
            self.obs.counter("http_connections_cancelled_total").inc()
        except (ConnectionResetError, BrokenPipeError, OSError):
            self.obs.counter("http_connection_errors_total").inc()


def _query_to_payload(query: dict[str, str]) -> dict:
    """Coerce ``GET /v1/recommend`` query params into a v1 body dict."""
    payload: dict[str, Any] = {}
    issues: list[FieldIssue] = []
    for name in ("user", "k"):
        if name in query:
            try:
                payload[name] = int(query[name])
            except ValueError:
                issues.append(FieldIssue(name, f"expected an integer, got {query[name]!r}"))
    if "deadline_ms" in query:
        try:
            payload["deadline_ms"] = float(query["deadline_ms"])
        except ValueError:
            issues.append(
                FieldIssue("deadline_ms", f"expected a number, got {query['deadline_ms']!r}")
            )
    if "exclude_observed" in query:
        flag = query["exclude_observed"].lower()
        if flag in ("true", "1", "yes"):
            payload["exclude_observed"] = True
        elif flag in ("false", "0", "no"):
            payload["exclude_observed"] = False
        else:
            issues.append(
                FieldIssue("exclude_observed", f"expected a boolean, got {flag!r}")
            )
    if "history" in query and query["history"]:
        try:
            payload["history"] = [int(item) for item in query["history"].split(",")]
        except ValueError:
            issues.append(
                FieldIssue("history", "expected comma-separated integers")
            )
    if "version" in query:
        payload["version"] = query["version"]
    if issues:
        raise SchemaError(issues)
    return payload


class EdgeServerThread:
    """Host an :class:`EdgeServer` on a dedicated event-loop thread.

    The synchronous harness used by tests, benchmarks, and the CLI's
    self-boot loadtest::

        with EdgeServerThread(server) as addr:
            ...  # addr == (host, port); requests served concurrently

    Startup errors (e.g. a taken port) re-raise in the entering thread.
    """

    def __init__(self, server: EdgeServer):
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.address: tuple[str, int] | None = None

    def __enter__(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run, name="repro-edge-loop", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.address is None:
            raise ConfigError("edge server failed to start within 30s")
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            try:
                self.address = await self.server.start()
            except BaseException as error:  # noqa: BLE001 - surfaced to __enter__
                self._startup_error = error
            finally:
                self._started.set()

        loop.run_until_complete(boot())
        if self._startup_error is None:
            loop.run_forever()
        loop.close()

    def __exit__(self, *exc_info: object) -> None:
        loop = self._loop
        if loop is None:
            return

        async def drain() -> None:
            await self.server.stop()
            # Cancel lingering connection handlers (parked keep-alive
            # reads) so the loop closes without destroying live tasks.
            current = asyncio.current_task()
            pending = [task for task in asyncio.all_tasks() if task is not current]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            loop.stop()

        asyncio.run_coroutine_threadsafe(drain(), loop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
