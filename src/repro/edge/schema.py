"""Versioned v1 wire schemas for the HTTP edge.

Every ``/v1`` request and response body is an explicit dataclass with a
``from_json_dict`` validator and a ``to_json_dict`` serializer, so the
API contract is pinned by golden fixtures instead of implied by code
paths.  The validation rules:

* **typed errors with field paths** — every problem is a
  :class:`FieldIssue` carrying the JSON path (``"requests[2].k"``) and
  a message; parsing raises one :class:`SchemaError` aggregating all
  issues, which the server renders as an :class:`ErrorResponseV1`;
* **unknown fields are rejected** (not silently dropped) — a client
  typo like ``"dead_line_ms"`` fails loudly with its path;
* **version skew is explicit** — an absent ``version`` means the
  current :data:`API_VERSION`; any other value is refused with error
  code ``unsupported_version``, so a v2 client can never be silently
  served v1 semantics;
* **oversized batches are refused at parse time** with error code
  ``batch_too_large`` (the server maps it to HTTP 413).

Provenance on responses is *not* redefined here: the payload embeds
:class:`repro.serving.schema.ServedResponse.to_json_dict` verbatim, so
the in-process and wire representations are the same frozen schema.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.serving.schema import ServedResponse
from repro.serving.tiers import RecommendationRequest
from repro.utils.exceptions import ReproError

#: The one wire version this server speaks.
API_VERSION = "v1"

#: Hard ceiling on ``/v1/recommend/batch`` fan-in (the server may
#: configure a lower one).
MAX_BATCH_SIZE = 256

#: Hard ceiling on items per ``/v1/feedback`` event.  One POST is one
#: logical interaction, not a bulk-load channel; a bound here keeps a
#: single request from inflating the WAL and the ingest batch.
MAX_FEEDBACK_ITEMS = 1024

#: Error codes an :class:`ErrorResponseV1` may carry.
ERROR_INVALID_REQUEST = "invalid_request"
ERROR_UNSUPPORTED_VERSION = "unsupported_version"
ERROR_BATCH_TOO_LARGE = "batch_too_large"
ERROR_NOT_FOUND = "not_found"
ERROR_METHOD_NOT_ALLOWED = "method_not_allowed"
ERROR_PAYLOAD_TOO_LARGE = "payload_too_large"
ERROR_OVERLOADED = "overloaded"
ERROR_DRAINING = "draining"
ERROR_INTERNAL = "internal"


@dataclass(frozen=True)
class FieldIssue:
    """One validation problem, anchored to a JSON field path."""

    path: str
    message: str

    def to_json_dict(self) -> dict:
        return {"path": self.path, "message": self.message}


class SchemaError(ReproError):
    """A request body failed v1 validation.

    Carries every :class:`FieldIssue` found (not just the first) plus
    the error ``code`` the server should map to an HTTP status.
    """

    def __init__(self, issues: list[FieldIssue], *, code: str = ERROR_INVALID_REQUEST):
        self.issues = list(issues)
        self.code = code
        detail = "; ".join(f"{issue.path}: {issue.message}" for issue in self.issues)
        super().__init__(f"invalid v1 payload ({code}): {detail}")


class _Check:
    """Collects :class:`FieldIssue`s while pulling typed fields."""

    def __init__(self, payload: Any, *, path: str = ""):
        self.payload = payload
        self.path = path
        self.issues: list[FieldIssue] = []

    def _at(self, name: str) -> str:
        return f"{self.path}.{name}" if self.path else name

    def reject_unknown(self, allowed: frozenset[str]) -> None:
        for key in self.payload:
            if key not in allowed:
                self.issues.append(
                    FieldIssue(self._at(str(key)), "unknown field (v1 rejects unrecognized fields)")
                )

    def require_mapping(self) -> bool:
        if not isinstance(self.payload, Mapping):
            self.issues.append(
                FieldIssue(self.path or "$", f"expected a JSON object, got {type(self.payload).__name__}")
            )
            return False
        return True

    def integer(self, name: str, *, required: bool = False, default=None, minimum=None):
        if name not in self.payload:
            if required:
                self.issues.append(FieldIssue(self._at(name), "required field is missing"))
            return default
        value = self.payload[name]
        # bool is an int subclass; a JSON true/false here is a type error.
        if isinstance(value, bool) or not isinstance(value, int):
            self.issues.append(
                FieldIssue(self._at(name), f"expected an integer, got {type(value).__name__}")
            )
            return default
        if minimum is not None and value < minimum:
            self.issues.append(FieldIssue(self._at(name), f"must be >= {minimum}, got {value}"))
            return default
        return int(value)

    def number(self, name: str, *, default=None, minimum=None, allow_none: bool = True):
        if name not in self.payload or (allow_none and self.payload[name] is None):
            return default
        value = self.payload[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.issues.append(
                FieldIssue(self._at(name), f"expected a number, got {type(value).__name__}")
            )
            return default
        if minimum is not None and not value > minimum:
            self.issues.append(FieldIssue(self._at(name), f"must be > {minimum}, got {value}"))
            return default
        return float(value)

    def boolean(self, name: str, *, default=None):
        if name not in self.payload:
            return default
        value = self.payload[name]
        if not isinstance(value, bool):
            self.issues.append(
                FieldIssue(self._at(name), f"expected a boolean, got {type(value).__name__}")
            )
            return default
        return value

    def int_list(self, name: str, *, default=None):
        if name not in self.payload or self.payload[name] is None:
            return default
        value = self.payload[name]
        if not isinstance(value, list):
            self.issues.append(
                FieldIssue(self._at(name), f"expected a list of integers, got {type(value).__name__}")
            )
            return default
        items = []
        for index, item in enumerate(value):
            if isinstance(item, bool) or not isinstance(item, int) or item < 0:
                self.issues.append(
                    FieldIssue(f"{self._at(name)}[{index}]", "expected a non-negative integer")
                )
                return default
            items.append(int(item))
        return tuple(items)

    def version(self, name: str = "version") -> str:
        value = self.payload.get(name, API_VERSION)
        if not isinstance(value, str):
            self.issues.append(
                FieldIssue(self._at(name), f"expected a string, got {type(value).__name__}")
            )
            return API_VERSION
        if value != API_VERSION:
            raise SchemaError(
                [FieldIssue(self._at(name), f"server speaks {API_VERSION!r}, got {value!r}")],
                code=ERROR_UNSUPPORTED_VERSION,
            )
        return value

    def raise_if_issues(self) -> None:
        if self.issues:
            raise SchemaError(self.issues)


@dataclass(frozen=True)
class RecommendRequestV1:
    """``POST /v1/recommend`` body (and ``GET /v1/recommend`` query).

    Mirrors :class:`~repro.serving.tiers.RecommendationRequest` field
    for field; :meth:`to_serving` is the only bridge, so the wire and
    in-process request surfaces cannot drift either.
    """

    user: int
    k: int = 5
    history: tuple[int, ...] | None = None
    deadline_ms: float | None = None
    exclude_observed: bool = True
    version: str = API_VERSION

    _FIELDS = frozenset({"user", "k", "history", "deadline_ms", "exclude_observed", "version"})

    @classmethod
    def from_json_dict(cls, payload: Any, *, path: str = "") -> "RecommendRequestV1":
        check = _Check(payload, path=path)
        if not check.require_mapping():
            check.raise_if_issues()
        version = check.version()
        check.reject_unknown(cls._FIELDS)
        user = check.integer("user", required=True, minimum=0)
        k = check.integer("k", default=5, minimum=1)
        history = check.int_list("history")
        deadline_ms = check.number("deadline_ms", minimum=0.0)
        exclude_observed = check.boolean("exclude_observed", default=True)
        check.raise_if_issues()
        return cls(
            user=user, k=k, history=history, deadline_ms=deadline_ms,
            exclude_observed=exclude_observed, version=version,
        )

    def to_json_dict(self) -> dict:
        payload: dict = {"version": self.version, "user": self.user, "k": self.k}
        if self.history is not None:
            payload["history"] = list(self.history)
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        if not self.exclude_observed:
            payload["exclude_observed"] = False
        return payload

    def to_serving(self) -> RecommendationRequest:
        return RecommendationRequest(
            user=self.user, k=self.k, history=self.history,
            deadline_ms=self.deadline_ms, exclude_observed=self.exclude_observed,
        )


@dataclass(frozen=True)
class BatchRecommendRequestV1:
    """``POST /v1/recommend/batch`` body."""

    requests: tuple[RecommendRequestV1, ...]
    version: str = API_VERSION

    _FIELDS = frozenset({"requests", "version"})

    @classmethod
    def from_json_dict(
        cls, payload: Any, *, max_batch: int = MAX_BATCH_SIZE
    ) -> "BatchRecommendRequestV1":
        check = _Check(payload)
        if not check.require_mapping():
            check.raise_if_issues()
        version = check.version()
        check.reject_unknown(cls._FIELDS)
        raw = payload.get("requests")
        if raw is None:
            check.issues.append(FieldIssue("requests", "required field is missing"))
            check.raise_if_issues()
        if not isinstance(raw, list):
            check.issues.append(
                FieldIssue("requests", f"expected a list, got {type(raw).__name__}")
            )
            check.raise_if_issues()
        if len(raw) == 0:
            check.issues.append(FieldIssue("requests", "batch must contain at least one request"))
        if len(raw) > max_batch:
            raise SchemaError(
                [FieldIssue("requests", f"batch size {len(raw)} exceeds the limit of {max_batch}")],
                code=ERROR_BATCH_TOO_LARGE,
            )
        parsed = []
        for index, item in enumerate(raw):
            try:
                parsed.append(RecommendRequestV1.from_json_dict(item, path=f"requests[{index}]"))
            except SchemaError as error:
                if error.code != ERROR_INVALID_REQUEST:
                    raise
                check.issues.extend(error.issues)
        check.raise_if_issues()
        return cls(requests=tuple(parsed), version=version)

    def to_json_dict(self) -> dict:
        return {
            "version": self.version,
            "requests": [request.to_json_dict() for request in self.requests],
        }


@dataclass(frozen=True)
class RecommendResponseV1:
    """``/v1/recommend`` response: version + the shared provenance schema."""

    served: ServedResponse
    version: str = API_VERSION

    def to_json_dict(self) -> dict:
        return {"version": self.version, **self.served.to_json_dict()}

    @classmethod
    def from_json_dict(cls, payload: Any) -> "RecommendResponseV1":
        check = _Check(payload)
        if not check.require_mapping():
            check.raise_if_issues()
        version = check.version()
        body = {key: value for key, value in payload.items() if key != "version"}
        return cls(served=ServedResponse.from_json_dict(body), version=version)


@dataclass(frozen=True)
class BatchRecommendResponseV1:
    """``/v1/recommend/batch`` response, responses in request order."""

    responses: tuple[ServedResponse, ...]
    version: str = API_VERSION

    def to_json_dict(self) -> dict:
        return {
            "version": self.version,
            "responses": [served.to_json_dict() for served in self.responses],
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> "BatchRecommendResponseV1":
        check = _Check(payload)
        if not check.require_mapping():
            check.raise_if_issues()
        version = check.version()
        raw = payload.get("responses")
        if not isinstance(raw, list):
            raise SchemaError([FieldIssue("responses", "expected a list")])
        return cls(
            responses=tuple(ServedResponse.from_json_dict(item) for item in raw),
            version=version,
        )


@dataclass(frozen=True)
class HealthResponseV1:
    """``GET /v1/health`` body: liveness plus cascade state at a glance.

    ``model_age_s`` is the staleness signal — seconds since the live
    model was (re)loaded into its slot, on the service's injectable
    clock — so operators can alert on "serving, but serving old".
    """

    status: str
    model_version: str | None
    requests_served: int
    model_age_s: float | None = None
    breakers: dict = field(default_factory=dict)
    version: str = API_VERSION

    def to_json_dict(self) -> dict:
        return {
            "version": self.version,
            "status": self.status,
            "model_version": self.model_version,
            "model_age_s": None if self.model_age_s is None else float(self.model_age_s),
            "requests_served": self.requests_served,
            "breakers": dict(self.breakers),
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> "HealthResponseV1":
        check = _Check(payload)
        if not check.require_mapping():
            check.raise_if_issues()
        version = check.version()
        return cls(
            status=str(payload.get("status", "")),
            model_version=(
                None if payload.get("model_version") is None
                else str(payload["model_version"])
            ),
            requests_served=int(payload.get("requests_served", 0)),
            model_age_s=(
                None if payload.get("model_age_s") is None
                else float(payload["model_age_s"])
            ),
            breakers=dict(payload.get("breakers") or {}),
            version=version,
        )


@dataclass(frozen=True)
class ReadyResponseV1:
    """``GET /v1/ready`` body: routability, as distinct from liveness.

    ``/v1/health`` answers "is this process alive" — it stays 200 while
    the stack limps along on fallbacks.  ``/v1/ready`` answers "should a
    load balancer route traffic here" and goes 503 while a supervised
    component is quarantined or restarting, or while an operator gate
    (e.g. a snapshot restore) is in force.  ``components`` carries the
    supervisor's per-component states and ``blocked_on`` names the ones
    holding readiness back; ``reason`` is the operator gate, if any.
    """

    status: str
    reason: str | None = None
    components: dict = field(default_factory=dict)
    blocked_on: tuple[str, ...] = ()
    version: str = API_VERSION

    def to_json_dict(self) -> dict:
        return {
            "version": self.version,
            "status": self.status,
            "reason": self.reason,
            "components": dict(self.components),
            "blocked_on": list(self.blocked_on),
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> "ReadyResponseV1":
        check = _Check(payload)
        if not check.require_mapping():
            check.raise_if_issues()
        version = check.version()
        return cls(
            status=str(payload.get("status", "")),
            reason=None if payload.get("reason") is None else str(payload["reason"]),
            components=dict(payload.get("components") or {}),
            blocked_on=tuple(str(name) for name in payload.get("blocked_on") or ()),
            version=version,
        )


@dataclass(frozen=True)
class FeedbackRequestV1:
    """``POST /v1/feedback`` body: one interaction event for the WAL.

    ``key`` is the duplicate-delivery idempotency key.  Clients that
    retry should send their own; when absent the server derives a
    content key (SHA-256 of the canonical ``user``/``items``/``ts``
    form via :meth:`record_key`), so a bitwise-identical retry still
    deduplicates.  Corollary: keyless events that also omit ``ts`` make
    *genuine* repeats of the same interaction collapse to one WAL
    record — clients that need repeat semantics must send ``key`` or a
    distinct ``ts``.  ``ts`` is the client-side event timestamp in
    epoch seconds (the timebase the time-decay reranker ages against).

    ``from_json_dict`` takes the server's ``max_user`` cap: the WAL
    acknowledges durably and the ingester grows ``n_users`` to cover
    every acknowledged id, so an unbounded id would let one request
    commit an absurd allocation into the replay path forever.
    """

    user: int
    items: tuple[int, ...]
    key: str | None = None
    ts: float | None = None
    version: str = API_VERSION

    _FIELDS = frozenset({"user", "items", "key", "ts", "version"})

    @classmethod
    def from_json_dict(
        cls, payload: Any, *, max_user: int | None = None
    ) -> "FeedbackRequestV1":
        check = _Check(payload)
        if not check.require_mapping():
            check.raise_if_issues()
        version = check.version()
        check.reject_unknown(cls._FIELDS)
        user = check.integer("user", required=True, minimum=0)
        if max_user is not None and user is not None and user > max_user:
            check.issues.append(
                FieldIssue("user", f"must be <= {max_user} (server growth cap), got {user}")
            )
        items = check.int_list("items")
        if "items" not in payload:
            check.issues.append(FieldIssue("items", "required field is missing"))
        elif items is not None and len(items) == 0:
            check.issues.append(FieldIssue("items", "must contain at least one item"))
        elif items is not None and len(items) > MAX_FEEDBACK_ITEMS:
            check.issues.append(
                FieldIssue(
                    "items",
                    f"must contain at most {MAX_FEEDBACK_ITEMS} items, got {len(items)}",
                )
            )
        key = payload.get("key")
        if key is not None and (not isinstance(key, str) or not key):
            check.issues.append(FieldIssue("key", "expected a non-empty string"))
            key = None
        ts = check.number("ts")
        check.raise_if_issues()
        return cls(user=user, items=tuple(items or ()), key=key, ts=ts, version=version)

    def to_json_dict(self) -> dict:
        payload: dict = {"version": self.version, "user": self.user, "items": list(self.items)}
        if self.key is not None:
            payload["key"] = self.key
        if self.ts is not None:
            payload["ts"] = self.ts
        return payload

    def record_key(self) -> str:
        """The idempotency key: the client's, or a derived content hash.

        The derived key is the full SHA-256 of the canonical content:
        WAL dedup is exact-match over the whole log lifetime, so a
        narrow hash (a 32-bit CRC reaches ~50% collision odds around
        80k keys) would silently drop distinct events as duplicates.
        """
        if self.key is not None:
            return self.key
        canonical = json.dumps(
            {"user": self.user, "items": list(self.items), "ts": self.ts},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        return f"fb-{hashlib.sha256(canonical).hexdigest()}"


@dataclass(frozen=True)
class FeedbackResponseV1:
    """``POST /v1/feedback`` 200: the durable acknowledgement.

    ``duplicate`` marks an idempotent re-delivery (acknowledged, not
    re-appended); ``segment``/``offset`` are the WAL position *after*
    the record, and ``records`` the WAL's total acknowledged count.
    """

    duplicate: bool
    segment: int
    offset: int
    records: int
    status: str = "acknowledged"
    version: str = API_VERSION

    def to_json_dict(self) -> dict:
        return {
            "version": self.version,
            "status": self.status,
            "duplicate": bool(self.duplicate),
            "segment": int(self.segment),
            "offset": int(self.offset),
            "records": int(self.records),
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> "FeedbackResponseV1":
        check = _Check(payload)
        if not check.require_mapping():
            check.raise_if_issues()
        version = check.version()
        return cls(
            duplicate=bool(payload.get("duplicate", False)),
            segment=int(payload.get("segment", 0)),
            offset=int(payload.get("offset", 0)),
            records=int(payload.get("records", 0)),
            status=str(payload.get("status", "acknowledged")),
            version=version,
        )


@dataclass(frozen=True)
class ErrorResponseV1:
    """Any non-2xx body: machine-readable code + per-field issues."""

    code: str
    message: str
    issues: tuple[FieldIssue, ...] = ()
    version: str = API_VERSION

    def to_json_dict(self) -> dict:
        return {
            "version": self.version,
            "error": {
                "code": self.code,
                "message": self.message,
                "issues": [issue.to_json_dict() for issue in self.issues],
            },
        }

    @classmethod
    def from_json_dict(cls, payload: Any) -> "ErrorResponseV1":
        check = _Check(payload)
        if not check.require_mapping():
            check.raise_if_issues()
        version = check.version()
        error = payload.get("error")
        if not isinstance(error, Mapping):
            raise SchemaError([FieldIssue("error", "expected an object")])
        return cls(
            code=str(error.get("code", ERROR_INTERNAL)),
            message=str(error.get("message", "")),
            issues=tuple(
                FieldIssue(str(item.get("path", "")), str(item.get("message", "")))
                for item in error.get("issues", ())
            ),
            version=version,
        )

    @classmethod
    def from_schema_error(cls, error: SchemaError) -> "ErrorResponseV1":
        return cls(
            code=error.code,
            message="request failed v1 schema validation",
            issues=tuple(error.issues),
        )
