"""The asynchronous HTTP edge: a versioned JSON API over the serving cascade.

``repro.edge`` puts :class:`~repro.serving.service.RecommendationService`
on the network without adding a single dependency:

* :mod:`~repro.edge.schema` — explicit v1 request/response dataclasses
  with typed field-path validation, unknown-field rejection, and
  version-skew refusal; the provenance payload *is*
  :class:`repro.serving.schema.ServedResponse`, shared with the
  in-process API;
* :mod:`~repro.edge.coalesce` — request coalescing: concurrent singles
  micro-batch into one ``recommend_batch`` call, deterministic under
  :class:`~repro.utils.clock.FakeClock`;
* :mod:`~repro.edge.http` — the stdlib asyncio server: ``/v1``
  routes, per-request deadline propagation, 429/503 load shedding,
  per-route metrics, Prometheus scrape endpoint;
* :mod:`~repro.edge.client` — the matching keep-alive client;
* :mod:`~repro.edge.loadgen` — the Zipf/diurnal/burst/replay traffic
  simulator and chaos-drill driver behind ``repro loadtest`` and
  ``benchmarks/bench_http.py``.
"""

from repro.edge.client import AsyncHttpClient, ClientError, HttpReply
from repro.edge.coalesce import CoalesceBuffer, CoalesceConfig, MicroBatcher
from repro.edge.http import EdgeConfig, EdgeServer, EdgeServerThread
from repro.edge.loadgen import (
    ChaosEvent,
    LoadReport,
    RequestOutcome,
    ScheduledRequest,
    WorkloadConfig,
    generate_schedule,
    load_trace,
    run_load,
    run_load_sync,
    save_trace,
    zipf_user_probabilities,
)
from repro.edge.schema import (
    API_VERSION,
    MAX_BATCH_SIZE,
    BatchRecommendRequestV1,
    BatchRecommendResponseV1,
    ErrorResponseV1,
    FeedbackRequestV1,
    FeedbackResponseV1,
    FieldIssue,
    HealthResponseV1,
    RecommendRequestV1,
    RecommendResponseV1,
    SchemaError,
)

__all__ = [
    "API_VERSION",
    "AsyncHttpClient",
    "BatchRecommendRequestV1",
    "BatchRecommendResponseV1",
    "ChaosEvent",
    "ClientError",
    "CoalesceBuffer",
    "CoalesceConfig",
    "EdgeConfig",
    "EdgeServer",
    "EdgeServerThread",
    "ErrorResponseV1",
    "FeedbackRequestV1",
    "FeedbackResponseV1",
    "FieldIssue",
    "HealthResponseV1",
    "HttpReply",
    "LoadReport",
    "MAX_BATCH_SIZE",
    "MicroBatcher",
    "RecommendRequestV1",
    "RecommendResponseV1",
    "RequestOutcome",
    "ScheduledRequest",
    "SchemaError",
    "WorkloadConfig",
    "generate_schedule",
    "load_trace",
    "run_load",
    "run_load_sync",
    "save_trace",
    "zipf_user_probabilities",
]
