"""A minimal stdlib asyncio HTTP/1.1 client for the edge API.

Just enough client to drive :class:`~repro.edge.http.EdgeServer` from
the load generator and the tests — keep-alive on a single connection,
``Content-Length`` bodies, JSON in/out.  One :class:`AsyncHttpClient`
per worker coroutine (it is deliberately not task-safe; the load
generator gives each virtual client its own connection, which also
makes connection-cap shedding observable).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class HttpReply:
    """One parsed response."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


class ClientError(ConnectionError):
    """Transport-level failure (refused, reset, short read, timeout)."""


class AsyncHttpClient:
    """Keep-alive HTTP/1.1 client bound to one ``host:port``."""

    def __init__(self, host: str, port: int, *, timeout_s: float = 10.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), timeout=self.timeout_s
            )
        except (OSError, asyncio.TimeoutError) as error:
            raise ClientError(f"connect to {self.host}:{self.port} failed: {error}") from None

    async def request(
        self, method: str, path: str, *, payload: Any = None
    ) -> HttpReply:
        """Send one request; reconnects once if the kept-alive socket died."""
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        for attempt in (0, 1):
            if self._writer is None or self._writer.is_closing():
                await self._connect()
            try:
                return await self._roundtrip(method, path, body)
            except ClientError:
                await self.close()
                if attempt == 1:
                    raise
        raise ClientError("unreachable")  # pragma: no cover - loop always returns/raises

    async def _roundtrip(self, method: str, path: str, body: bytes) -> HttpReply:
        assert self._reader is not None and self._writer is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        try:
            self._writer.write(head.encode("ascii") + body)
            await self._writer.drain()
            raw = await asyncio.wait_for(
                self._reader.readuntil(b"\r\n\r\n"), timeout=self.timeout_s
            )
            status_line, *header_lines = raw.decode("latin-1").split("\r\n")
            status = int(status_line.split(" ", 2)[1])
            headers: dict[str, str] = {}
            for line in header_lines:
                if line:
                    name, _, value = line.partition(":")
                    headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            reply_body = (
                await asyncio.wait_for(
                    self._reader.readexactly(length), timeout=self.timeout_s
                )
                if length
                else b""
            )
        except (OSError, ValueError, IndexError, asyncio.TimeoutError,
                asyncio.IncompleteReadError) as error:
            raise ClientError(f"request {method} {path} failed: {error}") from None
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return HttpReply(status=status, headers=headers, body=reply_body)

    async def get(self, path: str) -> HttpReply:
        return await self.request("GET", path)

    async def post(self, path: str, payload: Any) -> HttpReply:
        return await self.request("POST", path, payload=payload)

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass  # repro: allow(REP006) - already torn down; nothing to report
