"""Pure-unit tests of the circuit-breaker state machine.

Everything runs on a :class:`FakeClock` — no ``sleep`` anywhere, so the
full closed → open → half-open → closed lifecycle is exercised as a
deterministic pure function of recorded events and advanced time.
"""

from __future__ import annotations

import pytest

from repro.serving import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    FakeClock,
)
from repro.utils.exceptions import ConfigError


def make_breaker(clock=None, **overrides) -> CircuitBreaker:
    defaults = dict(
        window_seconds=10.0,
        min_calls=4,
        failure_rate_threshold=0.5,
        cooldown_seconds=5.0,
        half_open_max_probes=2,
        half_open_successes=2,
    )
    defaults.update(overrides)
    return CircuitBreaker(BreakerConfig(**defaults), clock=clock or FakeClock())


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_seconds": 0.0},
            {"min_calls": 0},
            {"failure_rate_threshold": 0.0},
            {"failure_rate_threshold": 1.5},
            {"latency_threshold_ms": -1.0},
            {"cooldown_seconds": 0.0},
            {"half_open_max_probes": 0},
            {"half_open_successes": 0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ConfigError):
            make_breaker(**kwargs)


class TestClosedState:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_min_calls_do_not_trip(self):
        breaker = make_breaker(min_calls=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED  # 3/3 failed but below min_calls

    def test_trips_at_failure_rate_threshold(self):
        breaker = make_breaker(min_calls=4, failure_rate_threshold=0.5)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/3, below min_calls anyway
        breaker.record_failure()  # 2/4 = 0.5 >= threshold
        assert breaker.state == OPEN
        assert breaker.opened_count_ == 1

    def test_stays_closed_below_threshold(self):
        breaker = make_breaker(min_calls=4, failure_rate_threshold=0.5)
        for _ in range(6):
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()  # 2/8 = 0.25 < 0.5
        assert breaker.state == CLOSED

    def test_slow_success_counts_as_failure(self):
        breaker = make_breaker(min_calls=2, latency_threshold_ms=50.0)
        breaker.record_success(latency_ms=200.0)
        breaker.record_success(latency_ms=200.0)
        assert breaker.state == OPEN

    def test_fast_success_does_not_count_as_failure(self):
        breaker = make_breaker(min_calls=2, latency_threshold_ms=50.0)
        for _ in range(10):
            breaker.record_success(latency_ms=5.0)
        assert breaker.state == CLOSED
        assert breaker.failure_rate() == 0.0

    def test_window_expiry_forgets_old_failures(self):
        clock = FakeClock()
        breaker = make_breaker(clock, window_seconds=10.0, min_calls=4)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)  # the two failures age out of the window
        breaker.record_failure()
        breaker.record_success()
        breaker.record_success()
        breaker.record_success()  # 1/4 = 0.25 < 0.5
        assert breaker.state == CLOSED
        assert breaker.failure_rate() == pytest.approx(0.25)


class TestOpenState:
    def trip(self, clock):
        breaker = make_breaker(clock, min_calls=2, cooldown_seconds=5.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        return breaker

    def test_open_rejects(self):
        breaker = self.trip(FakeClock())
        assert not breaker.allow()
        assert not breaker.allow()

    def test_straggler_results_ignored_while_open(self):
        breaker = self.trip(FakeClock())
        breaker.record_success()  # a call from before the trip finishing late
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opened_count_ == 1

    def test_cooldown_transitions_to_half_open(self):
        clock = FakeClock()
        breaker = self.trip(clock)
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN


class TestHalfOpenState:
    def make_half_open(self, clock, **overrides):
        breaker = make_breaker(clock, min_calls=2, cooldown_seconds=5.0, **overrides)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        return breaker

    def test_admits_limited_probes(self):
        breaker = self.make_half_open(FakeClock(), half_open_max_probes=2)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probe slots in flight

    def test_probe_completion_frees_a_slot(self):
        breaker = self.make_half_open(
            FakeClock(), half_open_max_probes=1, half_open_successes=3
        )
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # needs 3 successes
        assert breaker.allow()

    def test_enough_successes_close(self):
        breaker = self.make_half_open(FakeClock(), half_open_successes=2)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = self.make_half_open(clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opened_count_ == 2
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN

    def test_close_clears_window(self):
        breaker = self.make_half_open(FakeClock(), half_open_successes=1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failure_rate() == 0.0
        # One new failure must not instantly re-trip off stale history.
        breaker.record_failure()
        assert breaker.state == CLOSED


class TestFullLifecycle:
    def test_closed_open_half_open_closed(self):
        clock = FakeClock()
        breaker = make_breaker(
            clock, min_calls=3, cooldown_seconds=5.0, half_open_successes=2
        )
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(5.0)
        for _ in range(2):
            assert breaker.allow()
            breaker.record_success()
        assert breaker.state == CLOSED
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["times_opened"] == 1

    def test_snapshot_reports_window(self):
        breaker = make_breaker(min_calls=10)
        breaker.record_success(latency_ms=1.0)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["window_calls"] == 2
        assert snap["window_failures"] == 1
        assert snap["failure_rate"] == pytest.approx(0.5)
