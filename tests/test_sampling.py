"""Tests of the tuple samplers: domains, adaptivity, and DSS semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.interactions import InteractionMatrix
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.mf.params import FactorParams
from repro.sampling.aobpr import AdaptiveOversampler
from repro.sampling.base import TupleBatch
from repro.sampling.dns import DynamicNegativeSampler
from repro.sampling.dss import DoubleSampler, NegativeOnlySampler, PositiveOnlySampler
from repro.sampling.geometric import (
    FactorRankingCache,
    UserPositiveRankingCache,
    truncated_geometric,
)
from repro.sampling.uniform import UniformSampler
from repro.utils.exceptions import ConfigError, DataError, NotFittedError


@pytest.fixture
def train():
    config = SyntheticConfig(n_users=50, n_items=80, density=0.1, latent_dim=3)
    return generate_synthetic(config, seed=2).interactions


@pytest.fixture
def params(train):
    return FactorParams.init(train.n_users, train.n_items, 6, seed=0, scale=0.5)


def assert_batch_valid(batch: TupleBatch, train: InteractionMatrix):
    """Domain invariants every sampler must satisfy."""
    for user, i, k, j in zip(batch.users, batch.pos_i, batch.pos_k, batch.neg_j):
        assert train.contains(int(user), int(i)), "i must be observed"
        assert train.contains(int(user), int(k)), "k must be observed"
        assert not train.contains(int(user), int(j)), "j must be unobserved"


ALL_SAMPLERS = [
    UniformSampler,
    DynamicNegativeSampler,
    AdaptiveOversampler,
    lambda: DoubleSampler("map"),
    lambda: DoubleSampler("mrr"),
    PositiveOnlySampler,
    NegativeOnlySampler,
]


class TestDomains:
    @pytest.mark.parametrize("factory", ALL_SAMPLERS)
    def test_sampled_tuples_respect_domains(self, factory, train, params, rng):
        sampler = factory()
        sampler.bind(train, params)
        for _ in range(5):
            batch = sampler.sample(200, rng)
            assert len(batch) == 200
            assert_batch_valid(batch, train)

    def test_unbound_sampler_raises(self, rng):
        with pytest.raises(NotFittedError):
            UniformSampler().sample(10, rng)

    def test_bind_rejects_empty_matrix(self):
        with pytest.raises(DataError):
            UniformSampler().bind(InteractionMatrix.empty(3, 4))

    def test_bind_rejects_full_matrix(self):
        full = InteractionMatrix.from_dense(np.ones((2, 2)))
        with pytest.raises(DataError):
            UniformSampler().bind(full)

    def test_k_distinct_from_i_when_possible(self, train, params, rng):
        sampler = UniformSampler().bind(train, params)
        batch = sampler.sample(500, rng)
        counts = train.user_counts()[batch.users]
        multi = counts > 1
        assert np.all(batch.pos_k[multi] != batch.pos_i[multi])

    def test_step_counter(self, train, params, rng):
        sampler = UniformSampler().bind(train, params)
        sampler.sample(10, rng)
        sampler.sample(10, rng)
        assert sampler.step == 2


class TestContainsPairs:
    def test_matches_scalar_contains(self, train, rng):
        sampler = UniformSampler().bind(train)
        users = rng.integers(0, train.n_users, 300)
        items = rng.integers(0, train.n_items, 300)
        expected = np.array([train.contains(int(u), int(i)) for u, i in zip(users, items)])
        assert np.array_equal(sampler.contains_pairs(users, items), expected)

    def test_anchor_pairs_frequency_proportional_to_profile(self, train, rng):
        """Users are drawn proportionally to their positive count."""
        sampler = UniformSampler().bind(train)
        users, _ = sampler.sample_anchor_pairs(30_000, rng)
        frequencies = np.bincount(users, minlength=train.n_users) / 30_000
        expected = train.user_counts() / train.n_interactions
        assert np.abs(frequencies - expected).max() < 0.02


class TestTruncatedGeometric:
    def test_range(self, rng):
        ranks = truncated_geometric(rng, 1000, 10, tail=0.3)
        assert ranks.min() >= 0 and ranks.max() <= 9

    def test_single_item_list(self, rng):
        assert np.all(truncated_geometric(rng, 50, 1, tail=0.3) == 0)

    def test_head_heavier_than_tail(self, rng):
        ranks = truncated_geometric(rng, 20_000, 100, tail=0.1)
        head = np.mean(ranks < 10)
        tail_mass = np.mean(ranks >= 90)
        assert head > 0.5
        assert tail_mass < 0.02

    def test_smaller_tail_concentrates_more(self, rng):
        sharp = truncated_geometric(rng, 10_000, 100, tail=0.05).mean()
        flat = truncated_geometric(rng, 10_000, 100, tail=0.5).mean()
        assert sharp < flat

    def test_array_lengths(self, rng):
        lengths = np.array([1, 5, 50, 500])
        ranks = truncated_geometric(rng, 4, lengths, tail=0.2)
        assert np.all(ranks < lengths)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ConfigError):
            truncated_geometric(rng, 10, 0, tail=0.2)
        with pytest.raises(ConfigError):
            truncated_geometric(rng, 10, 5, tail=0.0)

    @given(tail=st.floats(min_value=0.01, max_value=0.99), n=st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_always_in_range(self, tail, n):
        rng = np.random.default_rng(0)
        ranks = truncated_geometric(rng, 200, n, tail)
        assert ranks.min() >= 0 and ranks.max() < n


class TestFactorRankingCache:
    def test_order_sorted_by_factor(self, params):
        cache = FactorRankingCache(params, refresh_interval=3)
        order = cache.order(2)
        values = params.item_factors[order, 2]
        assert np.all(np.diff(values) <= 1e-12)

    def test_reverse_order(self, params):
        cache = FactorRankingCache(params, refresh_interval=3)
        assert cache.order(0, descending=False).tolist() == cache.order(0)[::-1].tolist()

    def test_items_at_matches_order(self, params):
        cache = FactorRankingCache(params, refresh_interval=3)
        factors = np.array([0, 1, 2])
        ranks = np.array([0, 1, 2])
        reverse = np.array([False, False, True])
        items = cache.items_at(factors, ranks, reverse)
        assert items[0] == cache.order(0)[0]
        assert items[1] == cache.order(1)[1]
        assert items[2] == cache.order(2, descending=False)[2]

    def test_refresh_tracks_parameter_updates(self, params):
        cache = FactorRankingCache(params, refresh_interval=1)
        cache.maybe_refresh()
        before = cache.order(0).copy()
        params.item_factors[:, 0] = -params.item_factors[:, 0]
        cache.maybe_refresh()
        cache.maybe_refresh()  # interval elapsed -> rebuild
        after = cache.order(0)
        assert after.tolist() == before[::-1].tolist()

    def test_invalid_interval(self, params):
        with pytest.raises(ConfigError):
            FactorRankingCache(params, refresh_interval=0)


class TestUserPositiveRankingCache:
    def test_positions_sorted_ascending_per_user(self, train, params):
        cache = UserPositiveRankingCache(train, params, refresh_interval=5)
        cache.maybe_refresh()
        for user in range(min(train.n_users, 10)):
            count = train.n_positives(user)
            if count < 2:
                continue
            positions = np.arange(count)
            users = np.full(count, user)
            factors = np.zeros(count, dtype=int)
            items = cache.positives_at(users, factors, positions)
            values = params.item_factors[items, 0]
            assert np.all(np.diff(values) >= -1e-12)
            assert sorted(items.tolist()) == train.positives(user).tolist()


class TestAdaptiveSamplers:
    def test_dns_negatives_are_harder_than_uniform(self, train, params, rng):
        dns = DynamicNegativeSampler(n_candidates=8).bind(train, params)
        uniform = UniformSampler().bind(train, params)
        dns_batch = dns.sample(2000, rng)
        uni_batch = uniform.sample(2000, rng)
        dns_scores = params.predict_pairs(dns_batch.users, dns_batch.neg_j).mean()
        uni_scores = params.predict_pairs(uni_batch.users, uni_batch.neg_j).mean()
        assert dns_scores > uni_scores + 0.05

    def test_dns_invalid_candidates(self):
        with pytest.raises(ConfigError):
            DynamicNegativeSampler(n_candidates=0)

    def test_aobpr_negatives_are_harder_than_uniform(self, train, params, rng):
        aobpr = AdaptiveOversampler(tail=0.1).bind(train, params)
        uniform = UniformSampler().bind(train, params)
        ao_batch = aobpr.sample(2000, rng)
        uni_batch = uniform.sample(2000, rng)
        ao_scores = params.predict_pairs(ao_batch.users, ao_batch.neg_j).mean()
        uni_scores = params.predict_pairs(uni_batch.users, uni_batch.neg_j).mean()
        assert ao_scores > uni_scores

    def test_samplers_need_params(self, train, rng):
        """Adaptive samplers fail fast (at bind or first sample) without params."""
        for sampler in (DynamicNegativeSampler(), AdaptiveOversampler(), DoubleSampler("map")):
            with pytest.raises(NotFittedError):
                sampler.bind(train)  # params omitted
                sampler.sample(10, rng)


class TestDoubleSampler:
    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            DoubleSampler("ndcg")

    @staticmethod
    def _mean_factor_dot(params, batch, items):
        """Mean U_u . V_item — the part the factor-ranked draw controls.

        The item bias is *not* part of the factor ranking, so on small
        item sets its sampling noise can mask the effect; excluding it
        isolates what DSS actually biases.
        """
        dots = np.einsum(
            "td,td->t", params.user_factors[batch.users], params.item_factors[items]
        )
        return dots.mean()

    def test_map_mode_draws_low_scoring_positives(self, train, params, rng):
        """CLAPF-MAP's k should score *below* the user's average positive."""
        dss = DoubleSampler("map", tail=0.1).bind(train, params)
        uniform = UniformSampler().bind(train, params)
        dss_k = dss.sample(5000, rng)
        uni_k = uniform.sample(5000, rng)
        dss_score = self._mean_factor_dot(params, dss_k, dss_k.pos_k)
        uni_score = self._mean_factor_dot(params, uni_k, uni_k.pos_k)
        assert dss_score < uni_score

    def test_mrr_mode_draws_high_scoring_positives(self, train, params, rng):
        dss = DoubleSampler("mrr", tail=0.1).bind(train, params)
        uniform = UniformSampler().bind(train, params)
        dss_k = dss.sample(5000, rng)
        uni_k = uniform.sample(5000, rng)
        dss_score = self._mean_factor_dot(params, dss_k, dss_k.pos_k)
        uni_score = self._mean_factor_dot(params, uni_k, uni_k.pos_k)
        assert dss_score > uni_score

    def test_negative_draw_is_hard(self, train, params, rng):
        dss = DoubleSampler("map", tail=0.1).bind(train, params)
        uniform = UniformSampler().bind(train, params)
        dss_batch = dss.sample(3000, rng)
        uni_batch = uniform.sample(3000, rng)
        dss_j = params.predict_pairs(dss_batch.users, dss_batch.neg_j).mean()
        uni_j = params.predict_pairs(uni_batch.users, uni_batch.neg_j).mean()
        assert dss_j > uni_j

    def test_ablations_disable_one_side(self, train, params, rng):
        positive_only = PositiveOnlySampler("map").bind(train, params)
        negative_only = NegativeOnlySampler("map").bind(train, params)
        assert positive_only.positive_ranked and not positive_only.negative_ranked
        assert negative_only.negative_ranked and not negative_only.positive_ranked
        assert_batch_valid(positive_only.sample(300, rng), train)
        assert_batch_valid(negative_only.sample(300, rng), train)


class TestTupleBatch:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            TupleBatch(
                users=np.zeros(3, dtype=int),
                pos_i=np.zeros(3, dtype=int),
                pos_k=np.zeros(2, dtype=int),
                neg_j=np.zeros(3, dtype=int),
            )

    def test_len(self):
        batch = TupleBatch(*(np.zeros(4, dtype=int),) * 4)
        assert len(batch) == 4
