"""Tests of GBPR (group Bayesian personalized ranking)."""

import numpy as np
import pytest

from repro.metrics.evaluator import evaluate_model
from repro.mf.sgd import SGDConfig
from repro.models.bpr import BPR
from repro.models.gbpr import GBPR
from repro.models.poprank import PopRank
from repro.utils.exceptions import ConfigError


class TestConstruction:
    def test_invalid_rho(self):
        with pytest.raises(ConfigError):
            GBPR(rho=1.2)

    def test_invalid_group_size(self):
        with pytest.raises(ConfigError):
            GBPR(group_size=0)

    def test_name(self):
        assert GBPR().name == "GBPR"


class TestGroupSampling:
    def test_groups_are_co_consumers(self, learnable_split):
        model = GBPR(n_factors=4, sgd=SGDConfig(n_epochs=1), seed=0)
        model.fit(learnable_split.train)
        rng = np.random.default_rng(0)
        items = rng.integers(0, learnable_split.n_items, 200)
        # Restrict to items someone consumed (group sampling needs >= 1).
        counts = learnable_split.train.item_counts()
        items = items[counts[items] > 0]
        groups = model._sample_groups(items, rng)
        item_major = learnable_split.train.transpose()
        for item, group in zip(items, groups):
            consumers = set(int(u) for u in item_major.positives(int(item)))
            for user in group:
                assert int(user) in consumers

    def test_transpose_roundtrip(self, tiny_matrix):
        assert tiny_matrix.transpose().transpose() == tiny_matrix

    def test_transpose_rows_are_item_consumers(self, tiny_matrix):
        item_major = tiny_matrix.transpose()
        assert item_major.positives(2).tolist() == [0, 1]
        assert item_major.positives(4).tolist() == []


class TestTraining:
    def test_loss_decreases(self, learnable_split):
        model = GBPR(n_factors=8, sgd=SGDConfig(n_epochs=20, learning_rate=0.08), seed=0)
        model.fit(learnable_split.train)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_beats_popularity(self, learnable_split):
        model = GBPR(
            n_factors=8, rho=0.4,
            sgd=SGDConfig(n_epochs=60, learning_rate=0.08), seed=0,
        )
        model.fit(learnable_split.train)
        pop = PopRank().fit(learnable_split.train)
        assert (
            evaluate_model(model, learnable_split)["auc"]
            > evaluate_model(pop, learnable_split)["auc"]
        )

    def test_rho_zero_close_to_bpr_quality(self, learnable_split):
        """rho = 0 removes the group term; quality should track BPR.

        Exact parameter equality is not expected (the RNG consumes
        group draws), so we compare evaluation quality instead.
        """
        sgd = SGDConfig(n_epochs=30, learning_rate=0.08)
        gbpr = GBPR(rho=0.0, sgd=sgd, seed=0).fit(learnable_split.train)
        bpr = BPR(sgd=sgd, seed=0).fit(learnable_split.train)
        gbpr_auc = evaluate_model(gbpr, learnable_split)["auc"]
        bpr_auc = evaluate_model(bpr, learnable_split)["auc"]
        assert abs(gbpr_auc - bpr_auc) < 0.05

    def test_predict_shape(self, learnable_split):
        model = GBPR(n_factors=4, sgd=SGDConfig(n_epochs=2), seed=0)
        model.fit(learnable_split.train)
        assert model.predict_user(0).shape == (learnable_split.n_items,)

    def test_epoch_callback(self, learnable_split):
        epochs = []
        model = GBPR(
            n_factors=4, sgd=SGDConfig(n_epochs=3), seed=0,
            epoch_callback=lambda m, e: epochs.append(e),
        )
        model.fit(learnable_split.train)
        assert epochs == [0, 1, 2]
