"""Property test: the Evaluator agrees with a brute-force protocol."""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import DatasetSplit
from repro.data.interactions import InteractionMatrix
from repro.metrics.evaluator import Evaluator


@st.composite
def random_split_and_scores(draw):
    n_users = draw(st.integers(2, 6))
    n_items = draw(st.integers(4, 12))
    cells = [(u, i) for u in range(n_users) for i in range(n_items)]
    labels = draw(
        st.lists(st.sampled_from(["none", "train", "test"]), min_size=len(cells), max_size=len(cells))
    )
    train_pairs = [c for c, l in zip(cells, labels) if l == "train"]
    test_pairs = [c for c, l in zip(cells, labels) if l == "test"]
    train = InteractionMatrix.from_pairs(train_pairs or [(0, 0)], n_users, n_items)
    test_pairs = [p for p in test_pairs if not train.contains(*p)]
    test = InteractionMatrix.from_pairs(test_pairs, n_users, n_items)
    # Unique scores per cell: top-k selection's tie-break order is
    # unspecified (argpartition), so the property is stated tie-free.
    seed = draw(st.integers(0, 10_000))
    scores = np.random.default_rng(seed).permutation(n_users * n_items).astype(float)
    scores = scores.reshape(n_users, n_items)
    return train, test, scores


def brute_force_precision_at_1(train, test, scores):
    """Literal protocol: exclude train positives, rank, check the top item."""
    values = []
    for user in range(train.n_users):
        relevant = set(int(i) for i in test.positives(user))
        if not relevant:
            continue
        masked = scores[user].copy()
        masked[train.positives(user)] = -np.inf
        # stable argmax consistent with the library's tie-break
        order = np.argsort(-masked, kind="stable")
        values.append(1.0 if int(order[0]) in relevant else 0.0)
    return float(np.mean(values)) if values else 0.0


class TestEvaluatorAgainstBruteForce:
    @given(case=random_split_and_scores())
    @settings(max_examples=40, deadline=None)
    def test_precision_at_1_matches(self, case):
        train, test, scores = case
        if test.n_interactions == 0:
            return
        split = DatasetSplit(name="prop", train=train, test=test)
        evaluator = Evaluator(split, ks=(1,))
        result = evaluator.evaluate(SimpleNamespace(predict_user=lambda user: scores[user]))
        assert result["precision@1"] == pytest.approx(
            brute_force_precision_at_1(train, test, scores)
        )

    @given(case=random_split_and_scores())
    @settings(max_examples=40, deadline=None)
    def test_all_metrics_bounded(self, case):
        train, test, scores = case
        if test.n_interactions == 0:
            return
        split = DatasetSplit(name="prop", train=train, test=test)
        result = Evaluator(split, ks=(1, 3)).evaluate(
            SimpleNamespace(predict_user=lambda user: scores[user])
        )
        for key, value in result.metrics.items():
            assert 0.0 <= value <= 1.0, key
