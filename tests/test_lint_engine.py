"""Tests for the repro.analysis.lint engine, rules, config, and CLI."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    DEFAULT_CONFIG,
    PARSE_ERROR_RULE,
    RULE_REGISTRY,
    Finding,
    LintConfig,
    Suppressions,
    lint_paths,
    lint_source,
    load_config,
    render_json,
    render_text,
    result_from_json,
    result_to_json,
)
from repro.analysis.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def findings_for(source: str, *, rule: str, relpath: str = "mod.py") -> list[Finding]:
    """Lint a dedented snippet with one rule selected."""
    config = LintConfig(select=(rule,))
    result = lint_source(textwrap.dedent(source), relpath=relpath, config=config)
    return result.findings


def assert_fires(source: str, rule: str, *, times: int = 1) -> list[Finding]:
    findings = findings_for(source, rule=rule)
    assert len(findings) == times, [f.render() for f in findings]
    assert all(f.rule == rule for f in findings)
    return findings


def assert_clean(source: str, rule: str) -> None:
    findings = findings_for(source, rule=rule)
    assert findings == [], [f.render() for f in findings]


class TestREP001GlobalRandom:
    def test_global_call_fires(self):
        finding = assert_fires(
            """
            import numpy as np
            x = np.random.rand(3)
            """,
            "REP001",
        )[0]
        assert "numpy.random.rand" in finding.message
        assert finding.line == 3

    def test_seed_and_shuffle_fire(self):
        assert_fires(
            """
            import numpy as np
            np.random.seed(0)
            np.random.shuffle([1, 2])
            """,
            "REP001",
            times=2,
        )

    def test_from_import_alias_fires(self):
        assert_fires(
            """
            from numpy.random import rand as make
            x = make(3)
            """,
            "REP001",
        )

    def test_generator_api_is_clean(self):
        assert_clean(
            """
            import numpy as np
            rng = np.random.default_rng(0)
            seq = np.random.SeedSequence(42)
            x = rng.random(3)
            """,
            "REP001",
        )

    def test_annotation_is_clean(self):
        assert_clean(
            """
            import numpy as np
            def f(rng: np.random.Generator) -> None:
                rng.shuffle([1])
            """,
            "REP001",
        )

    def test_suppressed(self):
        assert_clean(
            """
            import numpy as np
            x = np.random.rand(3)  # repro: allow(REP001)
            """,
            "REP001",
        )


class TestREP002WallClock:
    def test_perf_counter_fires(self):
        finding = assert_fires(
            """
            import time
            start = time.perf_counter()
            """,
            "REP002",
        )[0]
        assert "time.perf_counter" in finding.message

    def test_datetime_now_fires(self):
        assert_fires(
            """
            from datetime import datetime
            stamp = datetime.now()
            """,
            "REP002",
        )

    def test_clock_module_api_is_clean(self):
        assert_clean(
            """
            from repro.utils.clock import SystemClock, Timer
            with Timer() as timer:
                pass
            now = SystemClock().monotonic()
            """,
            "REP002",
        )

    def test_sleep_is_clean(self):
        assert_clean(
            """
            import time
            time.sleep(0.1)
            """,
            "REP002",
        )

    def test_allowlisted_path_is_clean(self):
        source = "import time\nnow = time.monotonic()\n"
        config = LintConfig(select=("REP002",), allow={"REP002": ("*/utils/clock.py",)})
        assert lint_source(source, relpath="src/repro/utils/clock.py", config=config).ok
        assert not lint_source(source, relpath="src/repro/other.py", config=config).ok


class TestREP003AtomicWrites:
    def test_open_write_fires(self):
        assert_fires("handle = open('x.txt', 'w')\n", "REP003")

    def test_path_open_append_fires(self):
        assert_fires(
            """
            from pathlib import Path
            with Path('x.txt').open('a') as handle:
                pass
            """,
            "REP003",
        )

    def test_np_save_family_fires(self):
        assert_fires(
            """
            import numpy as np
            np.save('x.npy', [1])
            np.savez('x.npz', a=[1])
            np.savez_compressed('y.npz', a=[1])
            """,
            "REP003",
            times=3,
        )

    def test_read_modes_clean(self):
        assert_clean(
            """
            from pathlib import Path
            a = open('x.txt')
            b = open('x.txt', 'rb')
            with Path('x.txt').open() as handle:
                pass
            """,
            "REP003",
        )

    def test_mode_keyword_fires(self):
        assert_fires("handle = open('x.txt', mode='wb')\n", "REP003")

    def test_suppressed(self):
        assert_clean(
            """
            import numpy as np
            np.savez('x.npz', a=[1])  # repro: allow(REP003) — fixture
            """,
            "REP003",
        )


class TestREP004UnguardedExp:
    def test_unbounded_fires(self):
        assert_fires(
            """
            import numpy as np
            def f(x):
                return np.exp(x)
            """,
            "REP004",
        )

    def test_negated_variable_fires(self):
        assert_fires(
            """
            import numpy as np
            def f(x):
                return np.exp(-x)
            """,
            "REP004",
        )

    def test_clip_guard_clean(self):
        assert_clean(
            """
            import numpy as np
            def f(x):
                return np.exp(np.clip(x, -30, 30))
            """,
            "REP004",
        )

    def test_minimum_guard_clean(self):
        assert_clean(
            """
            import numpy as np
            def f(x):
                return np.exp(np.minimum(x, 709.0))
            """,
            "REP004",
        )

    def test_neg_abs_guard_clean(self):
        assert_clean(
            """
            import numpy as np
            def f(x):
                return np.log1p(np.exp(-np.abs(x)))
            """,
            "REP004",
        )

    def test_split_sign_mask_clean(self):
        assert_clean(
            """
            import numpy as np
            def f(x):
                positive = x >= 0
                return np.exp(x[~positive])
            """,
            "REP004",
        )

    def test_constant_clean(self):
        assert_clean("import numpy as np\ny = np.exp(-1.0)\n", "REP004")


LOCKED_CLASS_HEADER = """
import threading

class Shared:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
"""


class TestREP005LockDiscipline:
    def test_mixed_discipline_fires(self):
        source = (
            LOCKED_CLASS_HEADER
            + """
    def bump(self):
        with self._lock:
            self.count += 1

    def sneak(self):
        self.count = 0
"""
        )
        finding = assert_fires(source, "REP005")[0]
        assert "self.count" in finding.message

    def test_consistent_discipline_clean(self):
        source = (
            LOCKED_CLASS_HEADER
            + """
    def bump(self):
        with self._lock:
            self.count += 1

    def reset(self):
        with self._lock:
            self.count = 0
"""
        )
        assert_clean(source, "REP005")

    def test_helper_called_under_lock_is_clean(self):
        """The breaker pattern: helpers only ever invoked with the lock
        held count as in-lock, including through a helper chain."""
        source = (
            LOCKED_CLASS_HEADER
            + """
    def bump(self):
        with self._lock:
            self._inc()

    def reset(self):
        with self._lock:
            self._apply()

    def _apply(self):
        self._inc()

    def _inc(self):
        self.count += 1
"""
        )
        assert_clean(source, "REP005")

    def test_helper_also_called_unlocked_fires(self):
        source = (
            LOCKED_CLASS_HEADER
            + """
    def bump(self):
        with self._lock:
            self._inc()

    def sneak(self):
        self._inc()

    def _inc(self):
        self.count += 1
"""
        )
        assert_fires(source, "REP005")

    def test_unlocked_class_ignored(self):
        assert_clean(
            """
            class Plain:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
            """,
            "REP005",
        )

    def test_init_mutation_does_not_fire(self):
        source = (
            LOCKED_CLASS_HEADER
            + """
    def bump(self):
        with self._lock:
            self.count += 1
"""
        )
        assert_clean(source, "REP005")


class TestREP006Hygiene:
    def test_mutable_default_fires(self):
        assert_fires("def f(items=[]):\n    return items\n", "REP006")

    def test_dict_and_kwonly_defaults_fire(self):
        assert_fires(
            """
            def f(a={}, *, b=set()):
                return a, b
            """,
            "REP006",
            times=2,
        )

    def test_none_default_clean(self):
        assert_clean("def f(items=None, k=5, name='x'):\n    return items\n", "REP006")

    def test_bare_except_fires(self):
        assert_fires(
            """
            try:
                work()
            except:
                handle()
            """,
            "REP006",
        )

    def test_swallowed_exception_fires(self):
        assert_fires(
            """
            try:
                work()
            except Exception:
                pass
            """,
            "REP006",
        )

    def test_handled_broad_except_clean(self):
        assert_clean(
            """
            try:
                work()
            except Exception as error:
                log(error)
                raise
            except ValueError:
                pass
            """,
            "REP006",
        )


class TestSuppressions:
    def test_same_line(self):
        suppressions = Suppressions("x = 1  # repro: allow(REP001)\n")
        assert suppressions.is_suppressed("REP001", 1)
        assert not suppressions.is_suppressed("REP002", 1)

    def test_standalone_comment_covers_next_line(self):
        suppressions = Suppressions("# repro: allow(REP003)\nx = 1\ny = 2\n")
        assert suppressions.is_suppressed("REP003", 1)
        assert suppressions.is_suppressed("REP003", 2)
        assert not suppressions.is_suppressed("REP003", 3)

    def test_multiple_ids_and_star(self):
        suppressions = Suppressions("x = 1  # repro: allow(REP001, REP004)\ny = 2  # repro: allow(*)\n")
        assert suppressions.is_suppressed("REP001", 1)
        assert suppressions.is_suppressed("REP004", 1)
        assert not suppressions.is_suppressed("REP002", 1)
        assert suppressions.is_suppressed("REP999", 2)

    def test_trailing_rationale_allowed(self):
        suppressions = Suppressions("x = 1  # repro: allow(REP003) — fixture\n")
        assert suppressions.is_suppressed("REP003", 1)

    def test_suppressed_count_reported(self):
        result = lint_source(
            "import numpy as np\nx = np.random.rand(3)  # repro: allow(REP001)\n",
            config=LintConfig(select=("REP001",)),
        )
        assert result.ok
        assert result.suppressed == 1


class TestConfig:
    def test_select_filters_rules(self):
        source = "import numpy as np\nimport time\nnp.random.rand(3)\ntime.time()\n"
        result = lint_source(source, config=LintConfig(select=("REP002",)))
        assert [f.rule for f in result.findings] == ["REP002"]

    def test_only_restricts_rule_to_paths(self):
        config = LintConfig(select=("REP005",), only={"REP005": ("*/serving/*.py",)})
        source = LOCKED_CLASS_HEADER + "\n    def sneak(self):\n        with self._lock:\n            self.count = 1\n\n    def other(self):\n        self.count = 2\n"
        assert not lint_source(source, relpath="src/repro/serving/a.py", config=config).ok
        assert lint_source(source, relpath="src/repro/models/a.py", config=config).ok

    def test_exclude_skips_file(self):
        config = LintConfig(exclude=("vendored/*",))
        assert config.is_excluded("vendored/thing.py")
        assert not config.is_excluded("src/thing.py")

    def test_merged_with_extends_allow(self):
        merged = DEFAULT_CONFIG.merged_with(allow={"REP002": ("extra/legacy.py",)})
        assert merged.applies_to("REP002", "src/anything.py")
        assert not merged.applies_to("REP002", "extra/legacy.py")
        assert not merged.applies_to("REP002", "src/repro/utils/clock.py")

    def test_load_config_reads_pyproject_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.repro_lint]\nselect = ["REP001"]\nexclude = ["gen/*"]\n'
            '[tool.repro_lint.allow]\nREP001 = ["legacy/*"]\n',
            encoding="utf-8",
        )
        config = load_config(pyproject)
        assert config.select == ("REP001",)
        assert config.is_excluded("gen/a.py")
        assert not config.applies_to("REP001", "legacy/a.py")

    def test_load_config_missing_file_or_table(self, tmp_path):
        assert load_config(tmp_path / "nope.toml") == DEFAULT_CONFIG
        bare = tmp_path / "pyproject.toml"
        bare.write_text("[project]\nname = 'x'\n", encoding="utf-8")
        assert load_config(bare) == DEFAULT_CONFIG


class TestEngineAndReporters:
    def test_parse_error_becomes_finding(self):
        result = lint_source("def broken(:\n")
        assert [f.rule for f in result.findings] == [PARSE_ERROR_RULE]
        assert not result.ok

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "pkg" / "bad.py").write_text(
            "import numpy as np\nnp.random.rand(1)\n", encoding="utf-8"
        )
        result = lint_paths([tmp_path / "pkg"], root=tmp_path)
        assert result.files_scanned == 2
        assert [f.render() for f in result.findings] == [
            "pkg/bad.py:2:0: REP001 call to global-state `numpy.random.rand`; "
            "inject a `numpy.random.Generator` (see utils/rng.py) instead"
        ]

    def test_text_report_format(self):
        result = lint_source("import time\ntime.time()\n", relpath="a.py")
        text = render_text(result)
        assert text.splitlines()[0].startswith("a.py:2:0: REP002 ")
        assert "1 finding(s) in 1 file(s) (0 suppressed)" in text

    def test_json_schema_round_trip(self):
        result = lint_source(
            "import numpy as np\nnp.random.rand(1)\nnp.random.rand(2)  # repro: allow(REP001)\n"
        )
        payload = result_to_json(result)
        assert payload["version"] == 1
        assert payload["counts"] == {"REP001": 1}
        assert set(payload["findings"][0]) == {"rule", "path", "line", "col", "message"}
        restored = result_from_json(render_json(result))
        assert restored.findings == result.findings
        assert restored.suppressed == result.suppressed
        assert restored.files_scanned == result.files_scanned

    def test_json_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            result_from_json(json.dumps({"version": 99, "findings": []}))

    def test_all_six_rules_registered(self):
        assert {f"REP00{i}" for i in range(1, 7)} <= set(RULE_REGISTRY)
        for rule_class in RULE_REGISTRY.values():
            assert rule_class.rationale


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main(["ok.py"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one_with_path_line(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.rand(1)\n", encoding="utf-8"
        )
        assert lint_main(["bad.py"]) == 1
        assert "bad.py:2:0: REP001" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--select", "REP999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_out_writes_json_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.rand(1)\n", encoding="utf-8"
        )
        out = tmp_path / "report" / "lint.json"
        assert lint_main(["bad.py", "--format", "json", "--out", str(out)]) == 1
        restored = result_from_json(out.read_text(encoding="utf-8"))
        assert restored.findings[0].rule == "REP001"
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "REP006" in out


class TestSelfCheck:
    """The shipped tree must be clean under the shipped config."""

    def test_src_repro_is_lint_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        result = lint_paths([REPO_ROOT / "src" / "repro"], config=config, root=REPO_ROOT)
        assert result.files_scanned > 50
        assert result.ok, "\n" + "\n".join(f.render() for f in result.findings)

    def test_benchmarks_are_lint_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        result = lint_paths([REPO_ROOT / "benchmarks"], config=config, root=REPO_ROOT)
        assert result.ok, "\n" + "\n".join(f.render() for f in result.findings)
