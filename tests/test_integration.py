"""End-to-end integration tests asserting the paper's qualitative claims.

Each test trains real models on synthetic data and checks a *shape*
claim from the evaluation section (who beats whom, complexity ratios),
not absolute numbers.  Seeds are fixed so the assertions are
deterministic.
"""

import pytest

from repro.core.clapf import CLAPF, clapf_map, clapf_mrr, clapf_plus_map
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.data.split import train_test_split
from repro.metrics.evaluator import Evaluator, evaluate_model
from repro.mf.sgd import SGDConfig
from repro.models import BPR, CLiMF, PopRank
from repro.sampling.dss import DoubleSampler
from repro.utils.clock import Timer
from repro.sampling.uniform import UniformSampler

SGD = SGDConfig(n_epochs=60, learning_rate=0.08)


@pytest.fixture(scope="module")
def fitted():
    """Train the headline models once on the medium split."""
    config = SyntheticConfig(
        n_users=250, n_items=300, density=0.05, latent_dim=5,
        signal=9.0, popularity_weight=0.7,
    )
    dataset = generate_synthetic(config, seed=11, name="medium")
    split = train_test_split(dataset, seed=11)
    models = {
        "pop": PopRank(),
        "bpr": BPR(sgd=SGD, seed=1),
        "clapf_map": clapf_map(0.4, sgd=SGD, seed=1),
        "clapf_mrr": clapf_mrr(0.2, sgd=SGD, seed=1),
        "clapf_plus_map": clapf_plus_map(0.4, sgd=SGD, seed=1),
    }
    results = {}
    for name, model in models.items():
        model.fit(split.train)
        results[name] = evaluate_model(model, split, ks=(5,))
    return results


class TestTable2Shape:
    def test_personalized_models_crush_popularity(self, fitted):
        for name in ("bpr", "clapf_map", "clapf_mrr", "clapf_plus_map"):
            assert fitted[name]["ndcg@5"] > 2 * fitted["pop"]["ndcg@5"]
            assert fitted[name]["map"] > 1.5 * fitted["pop"]["map"]

    def test_clapf_map_beats_bpr_on_rank_metrics(self, fitted):
        """The paper's headline: CLAPF improves top-k and rank-biased
        metrics over BPR (Table 2)."""
        assert fitted["clapf_map"]["ndcg@5"] > fitted["bpr"]["ndcg@5"]
        assert fitted["clapf_map"]["map"] >= fitted["bpr"]["map"]
        assert fitted["clapf_map"]["mrr"] > fitted["bpr"]["mrr"]

    def test_dss_at_least_matches_uniform_clapf(self, fitted):
        assert fitted["clapf_plus_map"]["ndcg@5"] >= fitted["clapf_map"]["ndcg@5"] - 0.01

    def test_auc_similar_across_pairwise_models(self, fitted):
        """CLAPF optimizes ranking, not AUC; its AUC stays in BPR's
        neighbourhood (the listwise pair doesn't wreck the pairwise part)."""
        assert abs(fitted["clapf_map"]["auc"] - fitted["bpr"]["auc"]) < 0.05


class TestComplexityClaims:
    def test_clapf_epoch_cost_comparable_to_bpr(self, medium_split):
        """Section 4.3: CLAPF's extra cost over BPR is one more item
        update — per-epoch wall time must stay within a small factor."""
        short = SGDConfig(n_epochs=10, learning_rate=0.05)
        with Timer() as bpr_timer:
            BPR(sgd=short, seed=0).fit(medium_split.train)
        bpr_time = bpr_timer.elapsed
        with Timer() as clapf_timer:
            CLAPF("map", sgd=short, seed=0).fit(medium_split.train)
        clapf_time = clapf_timer.elapsed
        assert clapf_time < 3 * bpr_time + 0.2

    def test_climf_much_slower_than_clapf(self, medium_split):
        """Table 2's time column: CLiMF is the slow method (quadratic in
        profile size), CLAPF runs at BPR-like speed."""
        short = SGDConfig(n_epochs=5, learning_rate=0.05)
        with Timer() as clapf_timer:
            CLAPF("map", sgd=short, seed=0).fit(medium_split.train)
        clapf_time = clapf_timer.elapsed
        with Timer() as climf_timer:
            CLiMF(sgd=short, seed=0).fit(medium_split.train)
        climf_time = climf_timer.elapsed
        assert climf_time > 2 * clapf_time


class TestFigure4Shape:
    def test_dss_reaches_higher_map_on_wide_catalogs(self):
        """On a wide sparse catalog (the regime the paper's datasets live
        in), DSS-trained CLAPF ends at a higher test MAP than uniform
        sampling with the same budget (Fig. 4's late-phase ordering)."""
        config = SyntheticConfig(
            n_users=300, n_items=1800, density=0.007, latent_dim=5,
            signal=9.0, popularity_weight=0.8, popularity_exponent=0.9,
        )
        dataset = generate_synthetic(config, seed=3, name="widecat")
        split = train_test_split(dataset, seed=3)
        evaluator = Evaluator(split, ks=(5,), max_users=120, seed=0)
        schedule = SGDConfig(n_epochs=120, learning_rate=0.08)

        def final_map(sampler):
            model = CLAPF("map", tradeoff=0.4, sgd=schedule, sampler=sampler, seed=1)
            model.fit(split.train)
            return evaluator.evaluate(model)["map"]

        assert final_map(DoubleSampler("map")) > final_map(UniformSampler()) - 0.003


class TestPublicApiRoundtrip:
    def test_quickstart_flow(self):
        """The README quickstart must work end to end."""
        from repro import (
            clapf_map,
            evaluate_model,
            make_profile_dataset,
            train_test_split,
        )

        dataset = make_profile_dataset("ML100K", scale=0.3, seed=0)
        split = train_test_split(dataset, seed=0)
        model = clapf_map(0.4, sgd=SGDConfig(n_epochs=5), seed=0).fit(split.train)
        result = evaluate_model(model, split, ks=(5,))
        assert 0.0 <= result["ndcg@5"] <= 1.0
        recommendations = model.recommend(0, k=5)
        assert len(recommendations) == 5
