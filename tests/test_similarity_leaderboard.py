"""Tests of similarity queries, the leaderboard, warm start, and the
sampled-candidates evaluation protocol."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.experiments.leaderboard import build_leaderboard, render_leaderboard
from repro.experiments.runner import MethodResult
from repro.metrics.evaluator import Evaluator
from repro.mf.params import FactorParams
from repro.mf.sgd import SGDConfig
from repro.mf.similarity import item_similarity_matrix, similar_items, similar_users
from repro.models.bpr import BPR
from repro.utils.exceptions import ConfigError, DataError


class TestSimilarity:
    @pytest.fixture
    def params(self):
        item_factors = np.array(
            [[1.0, 0.0], [0.9, 0.1], [0.0, 1.0], [-1.0, 0.0]], dtype=float
        )
        user_factors = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=float)
        return FactorParams(user_factors, item_factors, np.zeros(4))

    def test_similar_items_orders_by_cosine(self, params):
        items, similarities = similar_items(params, 0, k=3)
        assert items[0] == 1  # nearly parallel
        assert items[-1] == 3  # antiparallel
        assert np.all(np.diff(similarities) <= 1e-12)

    def test_query_item_excluded(self, params):
        items, _ = similar_items(params, 2, k=3)
        assert 2 not in items

    def test_similar_users(self, params):
        users, _ = similar_users(params, 0, k=1)
        assert users.tolist() == [1]

    def test_similarity_matrix_symmetric_zero_diagonal(self, params):
        matrix = item_similarity_matrix(params)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)

    def test_validation(self, params):
        with pytest.raises(DataError):
            similar_items(params, 99, k=1)
        with pytest.raises(ConfigError):
            similar_items(params, 0, k=0)


def _result(name, value, timed_out=False):
    return MethodResult(
        name=name,
        means={} if timed_out else {"ndcg@5": value, "map": value / 2},
        stds={} if timed_out else {"ndcg@5": 0.0, "map": 0.0},
        train_seconds=1.0,
        n_repeats=1,
        timed_out=timed_out,
    )


class TestLeaderboard:
    def test_mean_rank_ordering(self):
        blocks = {
            "D1": {"A": _result("A", 0.5), "B": _result("B", 0.3)},
            "D2": {"A": _result("A", 0.4), "B": _result("B", 0.6)},
        }
        rows = build_leaderboard(blocks, metrics=("ndcg@5",))
        assert {row.method for row in rows} == {"A", "B"}
        assert rows[0].mean_rank == rows[1].mean_rank == 1.5
        assert all(row.wins == 1 for row in rows)

    def test_dominant_method_wins(self):
        blocks = {
            "D1": {"A": _result("A", 0.9), "B": _result("B", 0.2)},
            "D2": {"A": _result("A", 0.9), "B": _result("B", 0.2)},
        }
        rows = build_leaderboard(blocks)
        assert rows[0].method == "A"
        assert rows[0].mean_rank == 1.0
        assert rows[0].wins == rows[0].cells

    def test_timed_out_methods_skipped(self):
        blocks = {"D1": {"A": _result("A", 0.5), "Slow": _result("Slow", 0.0, timed_out=True)}}
        rows = build_leaderboard(blocks, metrics=("ndcg@5",))
        assert [row.method for row in rows] == ["A"]

    def test_render(self):
        blocks = {"D1": {"A": _result("A", 0.5)}}
        text = render_leaderboard(build_leaderboard(blocks))
        assert "mean rank" in text and "A" in text

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            build_leaderboard({})
        with pytest.raises(DataError):
            build_leaderboard({"D": {}}, metrics=("ndcg@5",))


class TestWarmStart:
    def test_warm_start_continues_from_params(self, learnable_split):
        model = BPR(sgd=SGDConfig(n_epochs=3), seed=0, warm_start=True)
        model.fit(learnable_split.train)
        checkpoint = model.params_.user_factors.copy()
        model.fit(learnable_split.train)
        # Training continued (parameters moved) rather than re-initialized
        # to the same seed-0 start (which would reproduce run 1 exactly).
        assert not np.allclose(model.params_.user_factors, checkpoint)

    def test_cold_start_reinitializes(self, learnable_split):
        model = BPR(sgd=SGDConfig(n_epochs=3), seed=0, warm_start=False)
        model.fit(learnable_split.train)
        first = model.params_.user_factors.copy()
        model.fit(learnable_split.train)
        assert np.allclose(model.params_.user_factors, first)

    def test_warm_start_shape_change_reinitializes(self, learnable_split, tiny_matrix):
        model = BPR(sgd=SGDConfig(n_epochs=1), seed=0, warm_start=True)
        model.fit(learnable_split.train)
        model.fit(tiny_matrix)  # different shape: must re-init, not crash
        assert model.params_.n_users == tiny_matrix.n_users


class TestSampledCandidatesProtocol:
    def test_sampled_metrics_inflated_vs_full(self, medium_split):
        """The paper's Section 6.3 point: ranking against 100 sampled
        items inflates metrics relative to ranking the full catalog."""
        model = BPR(sgd=SGDConfig(n_epochs=20), seed=0).fit(medium_split.train)
        full = Evaluator(medium_split, ks=(5,), seed=0).evaluate(model)
        sampled = Evaluator(
            medium_split, ks=(5,), seed=0, sampled_candidates=100
        ).evaluate(model)
        assert sampled["ndcg@5"] > full["ndcg@5"]
        assert sampled["mrr"] > full["mrr"]

    def test_relevant_items_always_candidates(self, medium_split):
        evaluator = Evaluator(medium_split, ks=(1,), seed=0, sampled_candidates=5)

        def oracle(user):
            scores = np.zeros(medium_split.n_items)
            scores[medium_split.test.positives(user)] = 10.0
            return scores

        scorer = SimpleNamespace(predict_user=oracle)
        assert evaluator.evaluate(scorer)["precision@1"] == pytest.approx(1.0)

    def test_invalid_count(self, medium_split):
        with pytest.raises(ConfigError):
            Evaluator(medium_split, sampled_candidates=0)
