"""Tests of the shared utilities (rng, validation, tables, exceptions)."""

import numpy as np
import pytest

from repro.utils.exceptions import ConfigError, DataError, NotFittedError, ReproError
from repro.utils.rng import (
    SeedSequenceFactory,
    as_generator,
    permutation_seeds,
    spawn_generators,
)
from repro.utils.tables import format_table
from repro.utils.validation import check_in_range, check_positive, check_probability


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(DataError, ReproError)
        assert issubclass(NotFittedError, ReproError)
        assert issubclass(ConfigError, ValueError)
        assert issubclass(NotFittedError, RuntimeError)


class TestRng:
    def test_as_generator_from_int(self):
        a = as_generator(42)
        b = as_generator(42)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_as_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_as_generator_from_seed_sequence(self):
        sequence = np.random.SeedSequence(5)
        assert isinstance(as_generator(sequence), np.random.Generator)

    def test_spawn_generators_independent(self):
        children = spawn_generators(7, 3)
        draws = [child.random() for child in children]
        assert len(set(draws)) == 3

    def test_spawn_reproducible_from_int(self):
        a = [g.random() for g in spawn_generators(7, 2)]
        b = [g.random() for g in spawn_generators(7, 2)]
        assert a == b

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(7, -1)

    def test_seed_factory_named_streams_stable(self):
        a = SeedSequenceFactory(9).generator("sampler").random()
        b = SeedSequenceFactory(9).generator("sampler").random()
        c = SeedSequenceFactory(9).generator("init").random()
        assert a == b
        assert a != c

    def test_seed_factory_generators_dict(self):
        gens = SeedSequenceFactory(1).generators(["a", "b"])
        assert set(gens) == {"a", "b"}

    def test_permutation_seeds_deterministic(self):
        assert permutation_seeds(3, 4) == permutation_seeds(3, 4)
        assert len(permutation_seeds(3, 4)) == 4


class TestValidation:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ConfigError):
            check_positive(0, "x")
        assert check_positive(0, "x", strict=False) == 0
        with pytest.raises(ConfigError):
            check_positive(-1, "x", strict=False)
        with pytest.raises(ConfigError):
            check_positive("nope", "x")

    def test_check_in_range(self):
        assert check_in_range(0.5, "x", 0, 1) == 0.5
        assert check_in_range(1.0, "x", 0, 1) == 1.0
        with pytest.raises(ConfigError):
            check_in_range(1.0, "x", 0, 1, inclusive=False)
        with pytest.raises(ConfigError):
            check_in_range(2, "x", 0, 1)

    def test_check_probability(self):
        assert check_probability(0.0, "p") == 0.0
        with pytest.raises(ConfigError):
            check_probability(-0.1, "p")


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert "2.5000" in text
        assert "-" in lines[-1]  # None renders as dash

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_custom_float_format(self):
        text = format_table(["a"], [[0.123456]], float_format="{:.2f}")
        assert "0.12" in text

    def test_empty_rows(self):
        text = format_table(["a", "bb"], [])
        assert "bb" in text
