"""Tests of the smoothed MAP/MRR math (Section 4.1 equations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.smoothing import (
    clapf_margin,
    climf_objective,
    exact_average_precision,
    exact_reciprocal_rank,
    l_map_objective,
    margin_coefficients,
    smoothed_ap_jensen_bound,
    smoothed_average_precision,
    smoothed_reciprocal_rank,
    smoothed_rr_jensen_bound,
)
from repro.metrics.ranking import average_precision, reciprocal_rank
from repro.utils.exceptions import ConfigError, DataError

scores_strategy = st.lists(
    st.floats(min_value=-4, max_value=4, allow_nan=False), min_size=1, max_size=12
)


@st.composite
def relevance_case(draw):
    n = draw(st.integers(min_value=2, max_value=15))
    scores = np.array(
        draw(st.lists(st.floats(-3, 3, allow_nan=False), min_size=n, max_size=n))
    )
    relevance = np.array(draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)))
    return scores, relevance


class TestExactMeasures:
    def test_exact_rr_equals_inverse_min_rank(self):
        scores = np.array([0.1, 0.9, 0.5, 0.2])
        relevance = np.array([1, 0, 1, 0])
        # ranking: [1, 2, 3, 0]; best relevant is item 2 at rank 2.
        assert exact_reciprocal_rank(scores, relevance) == pytest.approx(0.5)

    def test_exact_ap_hand_case(self):
        scores = np.array([0.5, 0.7, 0.1, 0.9])
        relevance = np.array([1, 0, 0, 1])
        assert exact_average_precision(scores, relevance) == pytest.approx((1 + 2 / 3) / 2)

    def test_no_relevant_items(self):
        scores = np.array([0.3, 0.2])
        zeros = np.zeros(2)
        assert exact_reciprocal_rank(scores, zeros) == 0.0
        assert exact_average_precision(scores, zeros) == 0.0

    def test_input_validation(self):
        with pytest.raises(DataError):
            exact_reciprocal_rank(np.array([1.0]), np.array([2]))
        with pytest.raises(DataError):
            exact_average_precision(np.array([1.0, 2.0]), np.array([1]))

    @given(case=relevance_case())
    @settings(max_examples=60, deadline=None)
    def test_exact_measures_match_metrics_module(self, case):
        """Eq. (5)/(8) must agree with the evaluation metrics on full rankings."""
        scores, relevance = case
        relevant = np.flatnonzero(relevance)
        if len(relevant) == 0:
            # Intentional divergence: the evaluation metrics treat "no
            # relevant items" as undefined (NaN, excluded from means)
            # while the training-side measures use 0.
            assert exact_reciprocal_rank(scores, relevance) == 0.0
            assert np.isnan(reciprocal_rank(scores, relevant))
            return
        assert exact_reciprocal_rank(scores, relevance) == pytest.approx(
            reciprocal_rank(scores, relevant)
        )
        assert exact_average_precision(scores, relevance) == pytest.approx(
            average_precision(scores, relevant)
        )


class TestSmoothedMeasures:
    def test_smoothed_ap_positive(self):
        assert smoothed_average_precision(np.array([0.5, -1.0, 2.0])) > 0

    def test_smoothed_rr_positive_for_single_item(self):
        # With one item: sigma(f) * (1 - sigma(0)) = sigma(f) / 2.
        value = smoothed_reciprocal_rank(np.array([1.0]))
        from repro.mf.functional import sigmoid

        assert value == pytest.approx(sigmoid(1.0) * 0.5)

    def test_empty_scores_rejected(self):
        with pytest.raises(DataError):
            smoothed_average_precision(np.array([]))
        with pytest.raises(DataError):
            smoothed_reciprocal_rank(np.array([]))

    @given(f_pos=scores_strategy)
    @settings(max_examples=80, deadline=None)
    def test_ap_jensen_bound_holds(self, f_pos):
        """ln(Eq. 9) >= the Jensen lower bound (middle of Eq. 11)."""
        f_pos = np.array(f_pos)
        lhs = np.log(smoothed_average_precision(f_pos))
        rhs = smoothed_ap_jensen_bound(f_pos)
        assert lhs >= rhs - 1e-9

    @given(f_pos=scores_strategy)
    @settings(max_examples=80, deadline=None)
    def test_rr_jensen_bound_holds(self, f_pos):
        """ln(Eq. 6) >= CLiMF's Jensen lower bound."""
        f_pos = np.array(f_pos)
        value = smoothed_reciprocal_rank(f_pos)
        if value <= 0:
            return  # product underflow on long adversarial inputs
        assert np.log(value) >= smoothed_rr_jensen_bound(f_pos) - 1e-9

    @given(f_pos=scores_strategy)
    @settings(max_examples=60, deadline=None)
    def test_objectives_are_finite_and_nonpositive(self, f_pos):
        f_pos = np.array(f_pos)
        for objective in (l_map_objective, climf_objective):
            value = objective(f_pos)
            assert np.isfinite(value)
            assert value <= 1e-9  # sums of log-sigmoids

    def test_l_map_and_climf_pairwise_terms_are_mirrored(self):
        """Eq. (12) uses ln sigma(f_k - f_i); Eq. (7) uses ln sigma(f_i - f_k);
        the first (per-item) terms coincide."""
        f_pos = np.array([0.3, -0.7, 1.2])
        from repro.mf.functional import log_sigmoid

        first_term = float(np.sum(log_sigmoid(f_pos)))
        map_pair = l_map_objective(f_pos) - first_term
        climf_pair = climf_objective(f_pos) - first_term
        diff = f_pos[:, None] - f_pos[None, :]
        assert map_pair == pytest.approx(float(np.sum(log_sigmoid(-diff))))
        assert climf_pair == pytest.approx(float(np.sum(log_sigmoid(diff))))


class TestMarginCoefficients:
    def test_map_coefficients(self):
        coeffs = margin_coefficients("map", 0.4)
        assert coeffs == {"k": 0.4, "i": pytest.approx(0.2), "j": pytest.approx(-0.6)}

    def test_mrr_coefficients(self):
        coeffs = margin_coefficients("mrr", 0.2)
        assert coeffs == {"i": 1.0, "k": pytest.approx(-0.2), "j": pytest.approx(-0.8)}

    def test_lambda_zero_reduces_to_bpr(self):
        """At lambda = 0 both variants give the BPR margin f_i - f_j."""
        for metric in ("map", "mrr"):
            coeffs = margin_coefficients(metric, 0.0)
            assert coeffs["i"] == pytest.approx(1.0)
            assert coeffs["k"] == pytest.approx(0.0)
            assert coeffs["j"] == pytest.approx(-1.0)

    def test_lambda_one_is_pure_listwise(self):
        map_coeffs = margin_coefficients("map", 1.0)
        assert map_coeffs["j"] == pytest.approx(0.0)
        assert map_coeffs["k"] == pytest.approx(1.0)
        assert map_coeffs["i"] == pytest.approx(-1.0)
        mrr_coeffs = margin_coefficients("mrr", 1.0)
        assert mrr_coeffs["j"] == pytest.approx(0.0)

    def test_invalid_metric(self):
        with pytest.raises(ConfigError):
            margin_coefficients("auc", 0.5)

    def test_invalid_tradeoff(self):
        with pytest.raises(ConfigError):
            margin_coefficients("map", 1.5)

    @given(
        lam=st.floats(0, 1),
        f_i=st.floats(-3, 3),
        f_k=st.floats(-3, 3),
        f_j=st.floats(-3, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_margin_matches_paper_formulas(self, lam, f_i, f_k, f_j):
        map_margin = clapf_margin("map", lam, f_i, f_k, f_j)
        assert map_margin == pytest.approx(lam * (f_k - f_i) + (1 - lam) * (f_i - f_j))
        mrr_margin = clapf_margin("mrr", lam, f_i, f_k, f_j)
        assert mrr_margin == pytest.approx(lam * (f_i - f_k) + (1 - lam) * (f_i - f_j))
