"""Tests of the MF substrate: stable logistic functions and parameters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mf.functional import log_sigmoid, sigmoid
from repro.mf.params import FactorParams
from repro.mf.sgd import RegularizationConfig, SGDConfig
from repro.utils.exceptions import ConfigError, DataError

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestSigmoid:
    def test_known_values(self):
        assert sigmoid(0.0) == pytest.approx(0.5)
        assert sigmoid(np.log(3)) == pytest.approx(0.75)

    def test_extreme_values_do_not_overflow(self):
        assert sigmoid(-1000.0) == pytest.approx(0.0)
        assert sigmoid(1000.0) == pytest.approx(1.0)
        assert np.isfinite(log_sigmoid(-1000.0))
        assert log_sigmoid(1000.0) == pytest.approx(0.0)

    def test_vector_input(self):
        out = sigmoid(np.array([-1.0, 0.0, 1.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    @given(x=finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_complement_identity(self, x):
        assert sigmoid(x) + sigmoid(-x) == pytest.approx(1.0)

    @given(x=st.floats(min_value=-500, max_value=500, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_log_sigmoid_consistent(self, x):
        # Range restricted to where sigmoid(x) is a normal float; below
        # ~-690 the naive log(sigmoid(x)) loses precision to denormals
        # while log_sigmoid stays exact (that is the point of it).
        assert log_sigmoid(x) == pytest.approx(np.log(sigmoid(x)), abs=1e-9)

    @given(x=finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_log_sigmoid_nonpositive(self, x):
        assert log_sigmoid(x) <= 1e-12


class TestFactorParams:
    def test_init_shapes(self):
        params = FactorParams.init(5, 7, 3, seed=0)
        assert params.user_factors.shape == (5, 3)
        assert params.item_factors.shape == (7, 3)
        assert params.item_bias.shape == (7,)
        assert (params.n_users, params.n_items, params.n_factors) == (5, 7, 3)

    def test_init_scale_bounds(self):
        params = FactorParams.init(50, 50, 4, seed=0, scale=0.1)
        assert np.abs(params.user_factors).max() <= 0.05 + 1e-12

    def test_init_reproducible(self):
        a = FactorParams.init(5, 7, 3, seed=42)
        b = FactorParams.init(5, 7, 3, seed=42)
        assert np.array_equal(a.user_factors, b.user_factors)

    def test_invalid_factors(self):
        with pytest.raises(ConfigError):
            FactorParams.init(5, 7, 0)

    def test_shape_validation(self):
        with pytest.raises(DataError):
            FactorParams(np.zeros((2, 3)), np.zeros((4, 2)), np.zeros(4))
        with pytest.raises(DataError):
            FactorParams(np.zeros((2, 3)), np.zeros((4, 3)), np.zeros(5))

    def test_predict_user_matches_formula(self):
        params = FactorParams.init(4, 6, 3, seed=1)
        expected = params.user_factors[2] @ params.item_factors.T + params.item_bias
        assert np.allclose(params.predict_user(2), expected)

    def test_predict_pairs_matches_predict_user(self):
        params = FactorParams.init(4, 6, 3, seed=1)
        users = np.array([0, 1, 2])
        items = np.array([5, 0, 3])
        expected = [params.predict_user(u)[i] for u, i in zip(users, items)]
        assert np.allclose(params.predict_pairs(users, items), expected)

    def test_score_matrix_consistent(self):
        params = FactorParams.init(3, 4, 2, seed=1)
        matrix = params.score_matrix()
        for user in range(3):
            assert np.allclose(matrix[user], params.predict_user(user))

    def test_copy_is_deep(self):
        params = FactorParams.init(3, 4, 2, seed=1)
        clone = params.copy()
        clone.user_factors[0, 0] += 1.0
        assert params.user_factors[0, 0] != clone.user_factors[0, 0]


class TestConfigs:
    def test_sgd_defaults_valid(self):
        config = SGDConfig()
        assert config.steps_per_epoch(10_000) >= 1

    def test_steps_per_epoch_scales(self):
        config = SGDConfig(batch_size=100, samples_per_pair=2.0)
        assert config.steps_per_epoch(1_000) == 20

    def test_steps_per_epoch_minimum_one(self):
        config = SGDConfig(batch_size=512)
        assert config.steps_per_epoch(10) == 1

    def test_invalid_learning_rate(self):
        with pytest.raises(ConfigError):
            SGDConfig(learning_rate=0.0)

    def test_regularization_uniform(self):
        reg = RegularizationConfig.uniform(0.02)
        assert reg.alpha_u == reg.alpha_v == reg.beta_v == 0.02

    def test_negative_regularization_rejected(self):
        with pytest.raises(ConfigError):
            RegularizationConfig(alpha_u=-0.1)
