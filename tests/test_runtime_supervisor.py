"""Supervision-tree policy tests on a FakeClock.

Component bodies run on real (daemon) threads, but every restart /
backoff / quarantine *decision* is made inside :meth:`Supervisor.poll`
against the injected clock — so these tests advance a
:class:`FakeClock` by hand and only ever block on thread joins, never
on wall-clock backoff delays.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import MetricsRegistry
from repro.resilience.chaos import ProcessFaultInjector
from repro.runtime import (
    BACKOFF,
    QUARANTINED,
    RUNNING,
    STOPPED,
    Supervisor,
    SupervisorConfig,
)
from repro.utils.clock import FakeClock
from repro.utils.exceptions import ConfigError


def well_behaved(ctx) -> None:
    while not ctx.wait(0.001):
        ctx.heartbeat()


class CrashNTimes:
    """A body that dies on its first ``n`` starts, then behaves."""

    def __init__(self, n: int):
        self.n = n
        self.starts = 0

    def __call__(self, ctx) -> None:
        self.starts += 1
        if self.starts <= self.n:
            raise RuntimeError(f"boom {self.starts}")
        well_behaved(ctx)


def wait_for_state(supervisor: Supervisor, name: str, state: str, timeout=5.0) -> None:
    """Block (real time) until the component thread reports ``state``.

    Crash accounting runs on the dying component thread itself, so the
    only real-time wait these tests need is for that thread to finish.
    """
    deadline = time.monotonic() + timeout  # repro: allow(REP002) — real thread join
    while time.monotonic() < deadline:  # repro: allow(REP002) — real thread join
        if supervisor.states()[name] == state:
            return
        time.sleep(0.001)
    raise AssertionError(
        f"{name} never reached {state!r}; states={supervisor.states()}"
    )


@pytest.fixture
def clock():
    return FakeClock()


def make_supervisor(clock, **overrides):
    settings = dict(
        backoff_base_s=1.0,
        backoff_factor=2.0,
        backoff_max_s=8.0,
        max_restarts=3,
        crash_window_s=100.0,
        heartbeat_timeout_s=5.0,
        drain_timeout_s=5.0,
    )
    settings.update(overrides)
    return Supervisor(SupervisorConfig(**settings), clock=clock, obs=MetricsRegistry())


class TestRestartPolicy:
    def test_crash_restarts_after_backoff_expires(self, clock):
        supervisor = make_supervisor(clock)
        body = CrashNTimes(1)
        supervisor.add("worker", body)
        supervisor.start()
        wait_for_state(supervisor, "worker", BACKOFF)

        # The backoff has not expired on the fake clock: no restart.
        assert supervisor.poll()["worker"] == BACKOFF
        assert supervisor.component("worker").restarts == 1

        clock.advance(1.0)
        assert supervisor.poll()["worker"] == RUNNING
        assert body.starts == 2
        supervisor.drain()

    def test_backoff_schedule_doubles_then_caps(self, clock):
        supervisor = make_supervisor(clock, backoff_max_s=3.0)
        supervisor.add("worker", CrashNTimes(10))
        supervisor.start()
        # base * factor**(burst-1), clamped to backoff_max_s.
        for expected_delay in (1.0, 2.0, 3.0):
            wait_for_state(supervisor, "worker", BACKOFF)
            managed = supervisor.component("worker")
            assert managed.backoff_until - clock.now == pytest.approx(expected_delay)
            clock.advance(expected_delay)
            supervisor.poll()
        supervisor.drain()

    def test_exiting_without_stop_request_counts_as_a_crash(self, clock):
        supervisor = make_supervisor(clock)
        supervisor.add("worker", lambda ctx: None)  # returns immediately
        supervisor.start()
        wait_for_state(supervisor, "worker", BACKOFF)
        assert supervisor.component("worker").restarts == 1
        supervisor.drain()

    def test_crash_outside_window_resets_the_burst(self, clock):
        supervisor = make_supervisor(clock, crash_window_s=10.0)
        supervisor.add("worker", CrashNTimes(2))
        supervisor.start()
        wait_for_state(supervisor, "worker", BACKOFF)
        assert supervisor.component("worker").backoff_until - clock.now == 1.0

        # Let the first crash age out of the window before the second.
        clock.advance(50.0)
        supervisor.poll()
        wait_for_state(supervisor, "worker", BACKOFF)
        # Burst restarted at 1 => the delay is the base again, not 2x.
        managed = supervisor.component("worker")
        assert managed.backoff_until - clock.now == pytest.approx(1.0)
        assert len(managed.crash_times) == 1
        supervisor.drain()


class TestQuarantine:
    def test_crash_loop_quarantines_and_fires_hook(self, clock):
        quarantined: list[str] = []
        supervisor = make_supervisor(clock, max_restarts=2)
        supervisor.add(
            "worker", CrashNTimes(10), on_quarantine=quarantined.append
        )
        supervisor.add("bystander", well_behaved, critical=False)
        supervisor.start()
        # Crashes 1 and 2 restart; crash 3 exceeds max_restarts=2.
        for _ in range(2):
            wait_for_state(supervisor, "worker", BACKOFF)
            clock.advance(10.0)
            supervisor.poll()
        wait_for_state(supervisor, "worker", QUARANTINED)
        assert quarantined == ["worker"]
        assert supervisor.component("worker").restarts == 2

        # Quarantine is terminal for poll(): no further restarts.
        clock.advance(1000.0)
        assert supervisor.poll()["worker"] == QUARANTINED
        assert supervisor.states()["bystander"] == RUNNING
        supervisor.drain()

    def test_quarantined_critical_component_blocks_readiness(self, clock):
        supervisor = make_supervisor(clock, max_restarts=0)
        supervisor.add("worker", CrashNTimes(10), critical=True)
        supervisor.start()
        wait_for_state(supervisor, "worker", QUARANTINED)
        is_ready, detail = supervisor.ready()
        assert not is_ready
        assert detail["blocked_on"] == ["worker"]
        supervisor.drain()

    def test_non_critical_quarantine_keeps_readiness(self, clock):
        supervisor = make_supervisor(clock, max_restarts=0)
        supervisor.add("edge", well_behaved, critical=True)
        supervisor.add("scrub", CrashNTimes(10), critical=False)
        supervisor.start()
        wait_for_state(supervisor, "scrub", QUARANTINED)
        is_ready, detail = supervisor.ready()
        assert is_ready
        assert detail["blocked_on"] == []
        supervisor.drain()


class TestHeartbeats:
    def test_stall_is_flagged_once_and_not_restarted(self, clock):
        obs = MetricsRegistry()
        supervisor = Supervisor(
            SupervisorConfig(heartbeat_timeout_s=5.0), clock=clock, obs=obs
        )

        def silent(ctx) -> None:
            ctx.heartbeat()
            ctx.stop_event.wait()  # alive but never beats again

        supervisor.add("worker", silent)
        supervisor.start()
        clock.advance(6.0)
        assert supervisor.poll()["worker"] == RUNNING
        managed = supervisor.component("worker")
        assert managed.stalled
        assert managed.restarts == 0
        is_ready, detail = supervisor.ready()
        assert not is_ready and detail["blocked_on"] == ["worker"]

        # Flagged once per episode, not once per poll.
        clock.advance(6.0)
        supervisor.poll()
        assert obs.counter("supervisor_heartbeat_stalls_total").value == 1
        supervisor.drain()

    def test_heartbeat_clears_the_stall_flag(self, clock):
        supervisor = make_supervisor(clock)
        beat = {"go": False}

        def sometimes(ctx) -> None:
            while not ctx.wait(0.001):
                if beat["go"]:
                    ctx.heartbeat()

        supervisor.add("worker", sometimes)
        supervisor.start()
        clock.advance(6.0)
        supervisor.poll()
        assert supervisor.component("worker").stalled
        beat["go"] = True
        deadline = time.monotonic() + 5.0  # repro: allow(REP002) — real thread wait
        while supervisor.component("worker").stalled:
            assert time.monotonic() < deadline, "stall flag never cleared"  # repro: allow(REP002) — real thread wait
            time.sleep(0.001)
        assert supervisor.ready()[0]
        supervisor.drain()

    def test_simulated_kill_fires_from_heartbeat(self, clock):
        faults = ProcessFaultInjector()
        supervisor = Supervisor(
            SupervisorConfig(backoff_base_s=1.0), clock=clock,
            obs=MetricsRegistry(), faults=faults,
        )
        supervisor.add("worker", well_behaved)
        supervisor.start()
        faults.kill("worker")
        wait_for_state(supervisor, "worker", BACKOFF)
        assert faults.fired_ == ["worker"]
        assert "SimulatedKill" in supervisor.component("worker").last_error
        clock.advance(1.0)
        supervisor.poll()
        wait_for_state(supervisor, "worker", RUNNING)
        supervisor.drain()


class TestLifecycle:
    def test_drain_stops_in_reverse_start_order(self, clock):
        supervisor = make_supervisor(clock)
        for name in ("edge", "ingest", "scrub"):
            supervisor.add(name, well_behaved)
        supervisor.start()
        report = supervisor.drain()
        assert report["order"] == ["scrub", "ingest", "edge"]
        assert report["stragglers"] == []
        assert set(supervisor.states().values()) == {STOPPED}

    def test_gate_blocks_readiness_until_lifted(self, clock):
        supervisor = make_supervisor(clock)
        supervisor.add("worker", well_behaved)
        supervisor.start()
        assert supervisor.ready()[0]
        supervisor.set_gate("restoring")
        is_ready, detail = supervisor.ready()
        assert not is_ready
        assert detail["gate"] == "restoring"
        supervisor.set_gate(None)
        assert supervisor.ready()[0]
        supervisor.drain()

    def test_draining_reports_not_ready(self, clock):
        supervisor = make_supervisor(clock)
        supervisor.add("worker", well_behaved)
        supervisor.start()
        supervisor.drain()
        is_ready, detail = supervisor.ready()
        assert not is_ready
        assert detail["draining"] is True

    def test_duplicate_registration_is_rejected(self, clock):
        supervisor = make_supervisor(clock)
        supervisor.add("worker", well_behaved)
        with pytest.raises(ConfigError):
            supervisor.add("worker", well_behaved)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SupervisorConfig(backoff_base_s=-1.0)
        with pytest.raises(ConfigError):
            SupervisorConfig(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            SupervisorConfig(backoff_base_s=2.0, backoff_max_s=1.0)
        with pytest.raises(ConfigError):
            SupervisorConfig(crash_window_s=0.0)
