"""Fixture tests for the whole-program rules REP007–REP012.

Each of REP007/REP008/REP011 pins at least one positive, one negative,
and one suppressed case (the acceptance bar for this rule family);
REP009/REP010/REP012 pin positive/negative pairs.  The REP000 pipeline
tests pin the parse-error contract: a broken file becomes a finding
(exit 1, not a traceback), the rest of the tree still lints, and the
graph simply drops the unparseable module.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.lint import (
    PARSE_ERROR_RULE,
    GraphConfig,
    LintConfig,
    LintResult,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.analysis.lint.cli import main as lint_main


def run(sources: dict[str, str], rule: str, graph: GraphConfig) -> LintResult:
    """Lint dedented fixture modules with one graph rule selected."""
    dedented = {relpath: textwrap.dedent(source) for relpath, source in sources.items()}
    return lint_sources(dedented, config=LintConfig(select=(rule,), graph=graph))


def renders(result: LintResult) -> list[str]:
    return [finding.render() for finding in result.findings]


# ---------------------------------------------------------------------------
# REP007 — blocking calls reachable from the async edge
# ---------------------------------------------------------------------------

EDGE_GRAPH = GraphConfig(async_packages=("app.edge",))


class TestREP007AsyncBlocking:
    def blocking_two_hops(self, *, suppress: bool = False) -> dict[str, str]:
        hop = "    return fetch()\n"
        if suppress:
            hop = (
                "    # executor-wrapped upstream of this fixture;"
                " kept for the suppressed-case pin\n"
                "    return fetch()  # repro: allow(REP007)\n"
            )
        return {
            "src/app/edge/http.py": (
                "from app.edge.helpers import fetch\n"
                "async def handler():\n" + hop
            ),
            "src/app/edge/helpers.py": """
                from app.util import pause
                def fetch():
                    return pause()
            """,
            "src/app/util.py": """
                import time
                def pause():
                    time.sleep(1)
            """,
        }

    def test_positive_two_hops_away(self):
        result = run(self.blocking_two_hops(), "REP007", EDGE_GRAPH)
        assert len(result.findings) == 1, renders(result)
        finding = result.findings[0]
        # Anchored at the first hop inside the async root, not the leaf.
        assert finding.path == "src/app/edge/http.py"
        assert "time.sleep" in finding.message
        assert "`app.util.pause`" in finding.message
        assert "`app.edge.http.handler` -> `app.edge.helpers.fetch`" in finding.message

    def test_positive_direct_blocking_call(self):
        result = run(
            {
                "src/app/edge/http.py": """
                    import time
                    async def handler():
                        time.sleep(0.1)
                """,
            },
            "REP007",
            EDGE_GRAPH,
        )
        assert len(result.findings) == 1, renders(result)
        assert "blocks the event loop" in result.findings[0].message

    def test_negative_executor_boundary(self):
        # The lambda handed to run_in_executor runs on a worker thread;
        # the graph deliberately draws no edge through it.
        result = run(
            {
                "src/app/edge/http.py": """
                    from app.util import pause
                    async def handler(loop, pool):
                        return await loop.run_in_executor(pool, lambda: pause())
                """,
                "src/app/util.py": """
                    import time
                    def pause():
                        time.sleep(1)
                """,
            },
            "REP007",
            EDGE_GRAPH,
        )
        assert result.findings == [], renders(result)

    def test_negative_nonblocking_acquire(self):
        result = run(
            {
                "src/app/edge/http.py": """
                    import threading
                    class Handler:
                        def __init__(self):
                            self._lock = threading.Lock()
                        async def poll(self):
                            return self._lock.acquire(blocking=False)
                """,
            },
            "REP007",
            EDGE_GRAPH,
        )
        assert result.findings == [], renders(result)

    def test_positive_blocking_acquire(self):
        result = run(
            {
                "src/app/edge/http.py": """
                    import threading
                    class Handler:
                        def __init__(self):
                            self._lock = threading.Lock()
                        async def poll(self):
                            return self._lock.acquire()
                """,
            },
            "REP007",
            EDGE_GRAPH,
        )
        assert len(result.findings) == 1, renders(result)
        assert "acquire" in result.findings[0].message

    def test_suppressed_case(self):
        result = run(self.blocking_two_hops(suppress=True), "REP007", EDGE_GRAPH)
        assert result.findings == [], renders(result)
        assert result.suppressed == 1


# ---------------------------------------------------------------------------
# REP008 — cross-class lock-order cycles
# ---------------------------------------------------------------------------

LOCK_GRAPH = GraphConfig(lock_packages=("app.serving",))


class TestREP008LockOrder:
    def deadlock_pair(self, *, consistent: bool = False, suppress: bool = False) -> dict[str, str]:
        """Two classes; A holds its lock and calls into B (which locks).

        ``consistent=False`` adds the reverse path (B holds its lock and
        calls back into A) — the classic ABBA inversion.
        """
        cross = ""
        if not consistent:
            cross = """
                def cross(self):
                    with self._lock:
                        self.peer.tick()
            """
        a_step = (
            "    def step(self):\n"
            "        with self._lock:\n"
            "            self.peer.poke()\n"
        )
        if suppress:
            a_step = (
                "    def step(self):\n"
                "        with self._lock:\n"
                "            # startup-only path, single-threaded by construction;"
                " pinned as the suppressed case\n"
                "            self.peer.poke()  # repro: allow(REP008)\n"
            )
        return {
            "src/app/serving/a.py": (
                "import threading\n"
                "from app.serving.b import B\n"
                "class A:\n"
                "    def __init__(self, peer: B):\n"
                "        self._lock = threading.Lock()\n"
                "        self.peer = peer\n"
                + a_step
                + "    def tick(self):\n"
                "        with self._lock:\n"
                "            pass\n"
            ),
            "src/app/serving/b.py": (
                "import threading\n"
                "class B:\n"
                '    def __init__(self, peer: "app.serving.a.A" = None):\n'
                "        self._lock = threading.Lock()\n"
                "        self.peer = peer\n"
                "    def poke(self):\n"
                "        with self._lock:\n"
                "            pass\n"
                + textwrap.dedent(cross).replace("\n", "\n    ").rstrip()
                + "\n"
            ),
        }

    def test_positive_abba_cycle_with_witness(self):
        result = run(self.deadlock_pair(), "REP008", LOCK_GRAPH)
        assert len(result.findings) == 1, renders(result)
        message = result.findings[0].message
        assert "lock-order cycle" in message
        assert "`app.serving.a.A._lock` -> `app.serving.b.B._lock`" in message
        assert "`app.serving.b.B._lock` -> `app.serving.a.A._lock`" in message

    def test_negative_consistent_order(self):
        result = run(self.deadlock_pair(consistent=True), "REP008", LOCK_GRAPH)
        assert result.findings == [], renders(result)

    def test_suppressed_case(self):
        result = run(self.deadlock_pair(suppress=True), "REP008", LOCK_GRAPH)
        assert result.findings == [], renders(result)
        assert result.suppressed == 1

    def test_out_of_scope_packages_ignored(self):
        result = run(
            self.deadlock_pair(), "REP008", GraphConfig(lock_packages=("other.pkg",))
        )
        assert result.findings == [], renders(result)


# ---------------------------------------------------------------------------
# REP009 — durability reachability
# ---------------------------------------------------------------------------

DURABLE_GRAPH = GraphConfig(
    durability_roots=("app.streaming.wal.*",),
    durable_gateways=("app.atomicio",),
)


class TestREP009Durability:
    def test_positive_raw_write_on_commit_path(self):
        result = run(
            {
                "src/app/streaming/wal.py": """
                    from app.sink import dump
                    def commit():
                        dump()
                """,
                "src/app/sink.py": """
                    def dump():
                        with open("state.bin", "wb") as handle:
                            handle.write(b"x")
                """,
            },
            "REP009",
            DURABLE_GRAPH,
        )
        assert len(result.findings) == 1, renders(result)
        finding = result.findings[0]
        assert finding.path == "src/app/sink.py"
        assert "`app.streaming.wal.commit` -> `app.sink.dump`" in finding.message

    def test_negative_write_in_gateway_module(self):
        result = run(
            {
                "src/app/streaming/wal.py": """
                    from app.atomicio import atomic_dump
                    def commit():
                        atomic_dump()
                """,
                "src/app/atomicio.py": """
                    def atomic_dump():
                        with open("state.tmp", "wb") as handle:
                            handle.write(b"x")
                """,
            },
            "REP009",
            DURABLE_GRAPH,
        )
        assert result.findings == [], renders(result)

    def test_negative_write_not_reachable_from_roots(self):
        result = run(
            {
                "src/app/streaming/wal.py": """
                    def commit():
                        return 1
                """,
                "src/app/sink.py": """
                    def dump():
                        with open("state.bin", "wb") as handle:
                            handle.write(b"x")
                """,
            },
            "REP009",
            DURABLE_GRAPH,
        )
        assert result.findings == [], renders(result)


# ---------------------------------------------------------------------------
# REP010 — dtype-policy flow
# ---------------------------------------------------------------------------

DTYPE_GRAPH = GraphConfig(float32_sources=("app.store.rows",))


class TestREP010DtypeFlow:
    def test_positive_mixing_store_f32_with_f64(self):
        result = run(
            {
                "src/app/serve.py": """
                    import numpy as np
                    from app.store import rows
                    def score(query):
                        factors = rows([1, 2])
                        weights = np.asarray(query, dtype=np.float64)
                        return factors @ weights
                """,
                "src/app/store.py": """
                    def rows(users):
                        return users
                """,
            },
            "REP010",
            DTYPE_GRAPH,
        )
        assert len(result.findings) == 1, renders(result)
        assert "float32" in result.findings[0].message

    def test_negative_upcast_before_mixing(self):
        result = run(
            {
                "src/app/serve.py": """
                    import numpy as np
                    from app.store import rows
                    def score(query):
                        factors = rows([1, 2]).astype(np.float64)
                        weights = np.asarray(query, dtype=np.float64)
                        return factors @ weights
                """,
                "src/app/store.py": """
                    def rows(users):
                        return users
                """,
            },
            "REP010",
            DTYPE_GRAPH,
        )
        assert result.findings == [], renders(result)

    def test_allow_glob_exempts_dtype_boundary(self):
        sources = {
            "src/app/store/dtype.py": """
                import numpy as np
                from app.store import rows
                def upcast(query):
                    factors = rows([1])
                    weights = np.asarray(query, dtype=np.float64)
                    return factors + weights
            """,
            "src/app/store/__init__.py": """
                def rows(users):
                    return users
            """,
        }
        config = LintConfig(
            select=("REP010",),
            allow={"REP010": ("*/store/dtype.py",)},
            graph=GraphConfig(float32_sources=("app.store.rows",)),
        )
        result = lint_sources(
            {relpath: textwrap.dedent(source) for relpath, source in sources.items()},
            config=config,
        )
        assert result.findings == [], renders(result)


# ---------------------------------------------------------------------------
# REP011 — import-layering contracts
# ---------------------------------------------------------------------------

LAYER_GRAPH = GraphConfig(forbid={"app.metrics": ("app.serving",)})


class TestREP011Layering:
    def violation(self, *, suppress: bool = False) -> dict[str, str]:
        importer = "from app.bridge import helper\n"
        if suppress:
            importer = (
                "# transitional: bridge split tracked separately;"
                " pinned as the suppressed case\n"
                "from app.bridge import helper  # repro: allow(REP011)\n"
            )
        return {
            "src/app/metrics/rank.py": importer,
            "src/app/bridge.py": "import app.serving.svc\n\n\ndef helper():\n    return 1\n",
            "src/app/serving/svc.py": "VALUE = 1\n",
        }

    def test_positive_reports_full_chain(self):
        result = run(self.violation(), "REP011", LAYER_GRAPH)
        assert len(result.findings) == 1, renders(result)
        finding = result.findings[0]
        assert finding.path == "src/app/metrics/rank.py"
        assert (
            "`app.metrics.rank` -> `app.bridge` -> `app.serving.svc`" in finding.message
        )

    def test_negative_clean_layers(self):
        result = run(
            {
                "src/app/metrics/rank.py": "from app.bridge import helper\n",
                "src/app/bridge.py": "def helper():\n    return 1\n",
                "src/app/serving/svc.py": "VALUE = 1\n",
            },
            "REP011",
            LAYER_GRAPH,
        )
        assert result.findings == [], renders(result)

    def test_suppressed_case(self):
        result = run(self.violation(suppress=True), "REP011", LAYER_GRAPH)
        assert result.findings == [], renders(result)
        assert result.suppressed == 1

    def test_lazy_import_still_violates_and_is_labelled(self):
        result = run(
            {
                "src/app/metrics/rank.py": """
                    def compute():
                        from app.serving.svc import VALUE
                        return VALUE
                """,
                "src/app/serving/svc.py": "VALUE = 1\n",
            },
            "REP011",
            LAYER_GRAPH,
        )
        assert len(result.findings) == 1, renders(result)
        assert "lazy" in result.findings[0].message

    def test_top_level_import_cycle_reported(self):
        result = run(
            {
                "src/app/metrics/a.py": "import app.metrics.b\n",
                "src/app/metrics/b.py": "import app.metrics.a\n",
            },
            "REP011",
            GraphConfig(forbid={}),
        )
        assert len(result.findings) == 1, renders(result)
        assert "import cycle" in result.findings[0].message


# ---------------------------------------------------------------------------
# REP012 — RNG seed provenance
# ---------------------------------------------------------------------------


class TestREP012SeedProvenance:
    def check(self, source: str) -> LintResult:
        return lint_source(
            textwrap.dedent(source),
            relpath="src/repro/fake.py",
            config=LintConfig(select=("REP012",)),
        )

    def test_missing_seed_fires(self):
        result = self.check(
            """
            import numpy as np
            def make():
                return np.random.default_rng()
            """
        )
        assert len(result.findings) == 1, renders(result)
        assert "no seed" in result.findings[0].message

    def test_literal_seed_fires(self):
        result = self.check(
            """
            import numpy as np
            def make():
                return np.random.default_rng(42)
            """
        )
        assert len(result.findings) == 1, renders(result)

    def test_literal_via_module_constant_fires(self):
        result = self.check(
            """
            import numpy as np
            SEED = 7
            def make():
                return np.random.default_rng(SEED)
            """
        )
        assert len(result.findings) == 1, renders(result)
        assert "SEED" in result.findings[0].message

    def test_parameter_seed_clean(self):
        result = self.check(
            """
            import numpy as np
            def make(seed):
                return np.random.default_rng(seed)
            """
        )
        assert result.findings == [], renders(result)


# ---------------------------------------------------------------------------
# REP000 — parse-error pipeline (satellite bugfix pin)
# ---------------------------------------------------------------------------


class TestREP000ParseErrorPipeline:
    def test_syntax_error_becomes_finding_and_rest_still_lints(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n", encoding="utf-8")
        (tmp_path / "dirty.py").write_text(
            "import numpy as np\nx = np.random.rand(3)\n", encoding="utf-8"
        )
        result = lint_paths([tmp_path], config=LintConfig(), root=tmp_path)
        rules = {finding.rule for finding in result.findings}
        assert PARSE_ERROR_RULE in rules, renders(result)
        assert "REP001" in rules, renders(result)
        parse = [f for f in result.findings if f.rule == PARSE_ERROR_RULE]
        assert parse[0].path == "broken.py"
        assert "syntax error" in parse[0].message

    def test_null_byte_becomes_finding(self, tmp_path):
        (tmp_path / "nul.py").write_bytes(b"x = 1\x00\n")
        result = lint_paths([tmp_path], config=LintConfig(), root=tmp_path)
        assert [f.rule for f in result.findings] == [PARSE_ERROR_RULE], renders(result)

    def test_cli_exit_code_is_one_not_two(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def oops(:\n", encoding="utf-8")
        code = lint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 1
        assert PARSE_ERROR_RULE in capsys.readouterr().out

    def test_graph_pass_skips_unparseable_module(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n", encoding="utf-8")
        (tmp_path / "fine.py").write_text("def ok():\n    return 1\n", encoding="utf-8")
        result = lint_paths(
            [tmp_path], config=LintConfig(), root=tmp_path, build_graph=True
        )
        assert result.project is not None
        assert "fine" in result.project.modules
        assert "broken" not in result.project.modules


# ---------------------------------------------------------------------------
# Engine behavior: parallelism, --changed scoping, graph export plumbing
# ---------------------------------------------------------------------------


class TestEngineParallelAndScope:
    def seed_tree(self, tmp_path: Path) -> Path:
        for index in range(12):
            (tmp_path / f"mod_{index:02d}.py").write_text(
                "import numpy as np\n"
                f"def f_{index}():\n"
                f"    return np.random.rand({index})\n",
                encoding="utf-8",
            )
        return tmp_path

    def test_finding_order_identical_across_worker_counts(self, tmp_path):
        tree = self.seed_tree(tmp_path)
        config = LintConfig(select=("REP001",))
        serial = lint_paths([tree], config=config, root=tmp_path, jobs=1)
        pooled = lint_paths([tree], config=config, root=tmp_path, jobs=6)
        assert renders(serial) == renders(pooled)
        assert renders(serial) == sorted(
            renders(serial)
        ), "findings must come back in sorted path:line:col order"

    def test_module_scope_restricts_per_module_rules_only(self, tmp_path):
        tree = self.seed_tree(tmp_path)
        config = LintConfig(select=("REP001",))
        scoped = lint_paths(
            [tree], config=config, root=tmp_path, module_scope={"mod_03.py"}
        )
        assert {f.path for f in scoped.findings} == {"mod_03.py"}
        # Every file is still parsed (the graph pass must see the tree).
        assert scoped.files_scanned == 12

    def test_module_scope_keeps_graph_rules_whole_tree(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src/app").mkdir()
        (tmp_path / "src/app/metrics").mkdir()
        (tmp_path / "src/app/serving").mkdir()
        for name, body in {
            "src/app/metrics/rank.py": "import app.serving.svc\n",
            "src/app/serving/svc.py": "VALUE = 1\n",
        }.items():
            (tmp_path / name).write_text(body, encoding="utf-8")
        config = LintConfig(
            select=("REP011",), graph=GraphConfig(forbid={"app.metrics": ("app.serving",)})
        )
        # Scope excludes the violating file from *module* rules; the
        # graph rule must still see and report it.
        result = lint_paths(
            [tmp_path / "src"],
            config=config,
            root=tmp_path,
            module_scope={"src/app/serving/svc.py"},
        )
        assert len(result.findings) == 1, renders(result)
        assert result.findings[0].rule == "REP011"

    def test_graph_out_cli_round_trips(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def ok():\n    return 1\n", encoding="utf-8")
        out = tmp_path / "artifacts" / "graph.json"
        code = lint_main(
            [
                str(tmp_path / "mod.py"),
                "--root",
                str(tmp_path),
                "--select",
                "REP001",
                "--graph-out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert out.with_suffix(".dot").exists()
        assert out.with_suffix(".calls.dot").exists()
        from repro.analysis.graph import graph_from_json

        loaded = graph_from_json(out.read_text(encoding="utf-8"))
        assert "mod" in loaded.module_names()


# ---------------------------------------------------------------------------
# Whole-repo self-check under the full 12-rule set
# ---------------------------------------------------------------------------


class TestRepoSelfCheckExpanded:
    def test_src_and_benchmarks_clean_under_all_rules(self):
        repo_root = Path(__file__).resolve().parent.parent
        from repro.analysis.lint import load_config

        config = load_config(repo_root / "pyproject.toml")
        result = lint_paths(
            [repo_root / "src", repo_root / "benchmarks"],
            config=config,
            root=repo_root,
        )
        assert result.findings == [], renders(result)
        assert result.project is not None
        assert len(result.project.modules) > 100
