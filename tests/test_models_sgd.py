"""Gradient-level tests of the tuple-SGD engine and CLiMF's exact step.

These verify the hand-derived gradients against finite differences of
the written-down objectives — the strongest correctness evidence short
of re-deriving the math.
"""

import numpy as np
import pytest

from repro.core.clapf import CLAPF
from repro.data.interactions import InteractionMatrix
from repro.mf.functional import sigmoid
from repro.mf.params import FactorParams
from repro.mf.sgd import RegularizationConfig, SGDConfig
from repro.models.bpr import BPR
from repro.models.climf import CLiMF
from repro.sampling.base import TupleBatch
from repro.utils.exceptions import NotFittedError

EPS = 1e-6


def tuple_objective(params, user, items, coefficients, reg):
    """f(u, S) = -ln sigma(R) + regularization (Section 4.3)."""
    scores = params.user_factors[user] @ params.item_factors[items].T + params.item_bias[items]
    margin = float(coefficients @ scores)
    loss = np.logaddexp(0.0, -margin)  # = log(1 + exp(-margin)), overflow-safe
    loss += 0.5 * reg.alpha_u * np.sum(params.user_factors[user] ** 2)
    loss += 0.5 * reg.alpha_v * np.sum(params.item_factors[items] ** 2)
    loss += 0.5 * reg.beta_v * np.sum(params.item_bias[items] ** 2)
    return loss


def numerical_step(params, user, items, coefficients, reg, lr):
    """Theta - lr * finite-difference gradient of the tuple objective."""
    result = params.copy()

    def central_diff(array, index):
        original = array[index]
        array[index] = original + EPS
        up = tuple_objective(params, user, items, coefficients, reg)
        array[index] = original - EPS
        down = tuple_objective(params, user, items, coefficients, reg)
        array[index] = original
        return (up - down) / (2 * EPS)

    for d in range(params.n_factors):
        grad = central_diff(params.user_factors, (user, d))
        result.user_factors[user, d] -= lr * grad
    for item in set(int(i) for i in items):
        for d in range(params.n_factors):
            grad = central_diff(params.item_factors, (item, d))
            result.item_factors[item, d] -= lr * grad
        grad = central_diff(params.item_bias, item)
        result.item_bias[item] -= lr * grad
    return result


@pytest.fixture
def small_train():
    pairs = [(0, 0), (0, 1), (0, 2), (1, 1), (1, 3), (2, 0), (2, 4)]
    return InteractionMatrix.from_pairs(pairs, n_users=3, n_items=5)


class TestTupleSGDGradients:
    @pytest.mark.parametrize(
        "model_factory",
        [
            lambda: BPR(n_factors=3, seed=0),
            lambda: CLAPF("map", tradeoff=0.4, n_factors=3, seed=0),
            lambda: CLAPF("mrr", tradeoff=0.3, n_factors=3, seed=0),
        ],
    )
    def test_sgd_step_matches_finite_differences(self, model_factory, small_train):
        model = model_factory()
        model.sgd = SGDConfig(learning_rate=0.01, n_epochs=1, batch_size=1)
        model.reg = RegularizationConfig(alpha_u=0.03, alpha_v=0.02, beta_v=0.01)
        model.params_ = FactorParams.init(3, 5, 3, seed=9, scale=0.8)
        model._train = small_train
        model.sampler.bind(small_train, model.params_)

        batch = TupleBatch(
            users=np.array([0]),
            pos_i=np.array([1]),
            pos_k=np.array([2]),
            neg_j=np.array([4]),
        )
        items, coefficients = model._tuple_terms(batch)
        if coefficients.ndim == 1:
            coefficients = np.broadcast_to(coefficients, items.shape)
        expected = numerical_step(
            model.params_, 0, items[0], coefficients[0], model.reg, 0.01
        )
        model._sgd_step(batch)
        assert np.allclose(model.params_.user_factors, expected.user_factors, atol=1e-7)
        assert np.allclose(model.params_.item_factors, expected.item_factors, atol=1e-7)
        assert np.allclose(model.params_.item_bias, expected.item_bias, atol=1e-7)

    def test_sgd_step_returns_mean_loss(self, small_train):
        model = BPR(n_factors=3, seed=0)
        model.params_ = FactorParams.init(3, 5, 3, seed=9, scale=0.8)
        model._train = small_train
        model.sampler.bind(small_train, model.params_)
        batch = TupleBatch(
            users=np.array([0]),
            pos_i=np.array([1]),
            pos_k=np.array([1]),
            neg_j=np.array([4]),
        )
        f_i = model.params_.predict_pairs(batch.users, batch.pos_i)
        f_j = model.params_.predict_pairs(batch.users, batch.neg_j)
        expected = float(np.log1p(np.exp(-(f_i[0] - f_j[0]))))
        assert model._sgd_step(batch) == pytest.approx(expected)


class TestCLiMFGradients:
    def test_user_step_matches_finite_differences(self, small_train):
        model = CLiMF(n_factors=3, sgd=SGDConfig(learning_rate=0.01, n_epochs=1), seed=0)
        model.params_ = FactorParams.init(3, 5, 3, seed=4, scale=0.8)
        positives = small_train.positives(0)
        reg = model.reg

        def objective(params):
            """-(Eq. 7 for user 0) + regularization (on user 0's block)."""
            scores = (
                params.user_factors[0] @ params.item_factors[positives].T
                + params.item_bias[positives]
            )
            gain = np.sum(np.log(sigmoid(scores)))
            diff = scores[:, None] - scores[None, :]
            off_diagonal = ~np.eye(len(scores), dtype=bool)
            gain += np.sum(np.log(sigmoid(diff))[off_diagonal])
            penalty = 0.5 * reg.alpha_u * np.sum(params.user_factors[0] ** 2)
            penalty += 0.5 * reg.alpha_v * np.sum(params.item_factors[positives] ** 2)
            penalty += 0.5 * reg.beta_v * np.sum(params.item_bias[positives] ** 2)
            return -gain + penalty

        params = model.params_
        expected = params.copy()
        lr = model.sgd.learning_rate

        def central_diff(array, index):
            original = array[index]
            array[index] = original + EPS
            up = objective(params)
            array[index] = original - EPS
            down = objective(params)
            array[index] = original
            return (up - down) / (2 * EPS)

        for d in range(3):
            expected.user_factors[0, d] -= lr * central_diff(params.user_factors, (0, d))
        for item in positives:
            for d in range(3):
                expected.item_factors[item, d] -= lr * central_diff(
                    params.item_factors, (int(item), d)
                )
            expected.item_bias[item] -= lr * central_diff(params.item_bias, int(item))

        model._user_step(0, positives)
        assert np.allclose(model.params_.user_factors[0], expected.user_factors[0], atol=1e-7)
        assert np.allclose(
            model.params_.item_factors[positives], expected.item_factors[positives], atol=1e-7
        )
        assert np.allclose(
            model.params_.item_bias[positives], expected.item_bias[positives], atol=1e-7
        )

    def test_objective_increases_during_training(self, learnable_split):
        model = CLiMF(
            n_factors=5, sgd=SGDConfig(n_epochs=10, learning_rate=0.05), seed=0
        )
        model.fit(learnable_split.train)
        history = model.objective_history_
        assert history[-1] > history[0]

    def test_predict_requires_fit(self):
        with pytest.raises(NotFittedError):
            CLiMF().predict_user(0)
