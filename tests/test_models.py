"""Behavioral tests for the baseline models."""

import numpy as np
import pytest

from repro.data.interactions import InteractionMatrix
from repro.metrics.evaluator import evaluate_model
from repro.mf.sgd import SGDConfig
from repro.models import BPR, MPR, WMF, CLiMF, PopRank, RandomWalk
from repro.utils.exceptions import ConfigError, NotFittedError

FAST_SGD = SGDConfig(n_epochs=25, learning_rate=0.08)
LONG_SGD = SGDConfig(n_epochs=60, learning_rate=0.08)


class TestPopRank:
    def test_scores_equal_popularity(self, tiny_matrix):
        model = PopRank().fit(tiny_matrix)
        assert np.array_equal(model.predict_user(0), tiny_matrix.item_counts())

    def test_same_scores_for_all_users(self, tiny_matrix):
        model = PopRank().fit(tiny_matrix)
        assert np.array_equal(model.predict_user(0), model.predict_user(3))

    def test_recommend_excludes_observed(self, tiny_matrix):
        model = PopRank().fit(tiny_matrix)
        recs = model.recommend(0, k=3)
        for item in recs:
            assert not tiny_matrix.contains(0, int(item))

    def test_recommend_can_include_observed(self, tiny_matrix):
        model = PopRank().fit(tiny_matrix)
        recs = model.recommend(0, k=1, exclude_observed=False)
        assert recs[0] == 2  # the most popular item overall

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PopRank().predict_user(0)

    def test_invalid_k(self, tiny_matrix):
        model = PopRank().fit(tiny_matrix)
        with pytest.raises(ConfigError):
            model.recommend(0, k=0)


class TestRandomWalk:
    def test_scores_respect_neighbourhoods(self):
        """Two cliques of users; preferences must not leak across them."""
        pairs = [(0, 0), (0, 1), (1, 0), (1, 2), (2, 4), (2, 5), (3, 4), (3, 6)]
        train = InteractionMatrix.from_pairs(pairs, 4, 7)
        model = RandomWalk(walk_length=5, reachable_threshold=1).fit(train)
        scores = model.predict_user(0)
        # User 0's clique (users 0, 1) interacts with items 0, 1, 2 only.
        assert scores[2] > scores[4]
        assert scores[2] > scores[6]

    def test_reachability_threshold_cuts_weak_links(self):
        pairs = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]
        train = InteractionMatrix.from_pairs(pairs, 3, 3)
        strict = RandomWalk(walk_length=3, reachable_threshold=2).fit(train)
        # User 0 shares only one item with user 1 -> unreachable under
        # threshold 2, so item 1 gets no propagated mass beyond user 0.
        scores = strict.predict_user(0)
        assert scores[1] == pytest.approx(0.0, abs=1e-9)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            RandomWalk(walk_length=0)
        with pytest.raises(ConfigError):
            RandomWalk(reachable_threshold=0)
        with pytest.raises(ConfigError):
            RandomWalk(restart=1.0)

    def test_beats_nothing_on_empty_user(self, tiny_matrix):
        model = RandomWalk(walk_length=2, reachable_threshold=1).fit(tiny_matrix)
        scores = model.predict_user(3)  # user with no history
        assert scores.shape == (6,)


class TestWMF:
    def test_reconstructs_observed_cells(self):
        """On an easy block-structured matrix, WMF should score observed
        cells clearly above unobserved ones."""
        dense = np.zeros((8, 8), dtype=int)
        dense[:4, :4] = 1
        dense[4:, 4:] = 1
        train = InteractionMatrix.from_dense(dense)
        model = WMF(n_factors=4, weight=20, reg=0.05, n_iterations=10, seed=0).fit(train)
        scores = model.predict_user(0)
        assert scores[:4].min() > scores[4:].max()

    def test_improves_over_popularity(self, learnable_split):
        wmf = WMF(n_factors=8, weight=10, reg=0.1, n_iterations=25, seed=0)
        wmf.fit(learnable_split.train)
        pop = PopRank().fit(learnable_split.train)
        wmf_result = evaluate_model(wmf, learnable_split)
        pop_result = evaluate_model(pop, learnable_split)
        assert wmf_result["auc"] > pop_result["auc"]

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            WMF(n_factors=0)
        with pytest.raises(ConfigError):
            WMF(weight=-1)


class TestBPR:
    def test_training_reduces_loss(self, learnable_split):
        model = BPR(n_factors=8, sgd=FAST_SGD, seed=0).fit(learnable_split.train)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_improves_auc_over_popularity(self, learnable_split):
        model = BPR(n_factors=8, sgd=FAST_SGD, seed=0).fit(learnable_split.train)
        pop = PopRank().fit(learnable_split.train)
        assert (
            evaluate_model(model, learnable_split)["auc"]
            > evaluate_model(pop, learnable_split)["auc"]
        )

    def test_deterministic_given_seed(self, learnable_split):
        a = BPR(n_factors=4, sgd=SGDConfig(n_epochs=3), seed=5).fit(learnable_split.train)
        b = BPR(n_factors=4, sgd=SGDConfig(n_epochs=3), seed=5).fit(learnable_split.train)
        assert np.array_equal(a.params_.user_factors, b.params_.user_factors)

    def test_name(self):
        assert BPR().name == "BPR"


class TestMPR:
    def test_trains_and_predicts(self, learnable_split):
        model = MPR(n_factors=8, tradeoff=0.5, sgd=FAST_SGD, seed=0)
        model.fit(learnable_split.train)
        scores = model.predict_user(0)
        assert scores.shape == (learnable_split.n_items,)
        assert np.isfinite(scores).all()

    def test_improves_over_popularity(self, learnable_split):
        # MPR spreads each update over two pairwise criteria, so it needs
        # a longer schedule than BPR to clear the popularity baseline.
        model = MPR(n_factors=8, tradeoff=0.5, sgd=LONG_SGD, seed=0)
        model.fit(learnable_split.train)
        pop = PopRank().fit(learnable_split.train)
        assert (
            evaluate_model(model, learnable_split)["auc"]
            > evaluate_model(pop, learnable_split)["auc"]
        )

    def test_uncertain_items_are_unobserved(self, learnable_split, rng):
        model = MPR(n_factors=4, seed=0)
        model.fit(learnable_split.train)
        batch = model._make_batch(500, rng)
        for user, item in zip(batch.users, batch.pos_k):
            assert not learnable_split.train.contains(int(user), int(item))

    def test_uncertain_items_skew_popular(self, learnable_split, rng):
        model = MPR(n_factors=4, seed=0)
        model.fit(learnable_split.train)
        batch = model._make_batch(3000, rng)
        counts = learnable_split.train.item_counts()
        uncertain_popularity = counts[batch.pos_k].mean()
        uniform_popularity = counts[batch.neg_j].mean()
        assert uncertain_popularity > uniform_popularity

    def test_invalid_tradeoff(self):
        with pytest.raises(ConfigError):
            MPR(tradeoff=1.2)


class TestCLiMF:
    def test_only_observed_items_move(self, learnable_split):
        """CLiMF never touches unobserved items' factors (Section 3.3)."""
        model = CLiMF(n_factors=4, sgd=SGDConfig(n_epochs=2), seed=0)
        train = learnable_split.train
        model.fit(train)
        from repro.mf.params import FactorParams

        initial = FactorParams.init(train.n_users, train.n_items, 4, seed=np.random.default_rng(0))
        # Items never observed by anyone keep their initial factors...
        never_observed = np.flatnonzero(train.item_counts() == 0)
        if len(never_observed):
            assert np.array_equal(
                model.params_.item_factors[never_observed],
                initial.item_factors[never_observed],
            )

    def test_predict_shape(self, learnable_split):
        model = CLiMF(n_factors=4, sgd=SGDConfig(n_epochs=2), seed=0)
        model.fit(learnable_split.train)
        assert model.predict_user(1).shape == (learnable_split.n_items,)
