"""WAL crash-safety: torn tails at every byte, idempotency, rotation.

The central invariant — *an acknowledged append survives a kill at any
byte* — is tested exhaustively: the log file is truncated at every
possible byte boundary and corrupted at every byte offset, and recovery
must always come back to exactly the longest prefix of whole, valid
frames.  Kill-switch drills cover every append-path crash site, and
duplicate-delivery tests pin the at-least-once → exactly-once story.
"""

from __future__ import annotations

import pytest

from repro.resilience.chaos import KillSwitch, SimulatedKill
from repro.streaming.wal import (
    WAL_START,
    WalConfig,
    WalPosition,
    WalRecord,
    WriteAheadLog,
    decode_frames,
    encode_frame,
    segment_name,
)
from repro.utils.exceptions import ConfigError, DataError


def make_records(n: int) -> list[WalRecord]:
    return [
        WalRecord(key=f"r{i:03d}", user=i % 5, items=(i % 7, (i * 3) % 7 + 7), ts=float(i))
        for i in range(n)
    ]


def read_all(wal: WriteAheadLog) -> list[WalRecord]:
    return [record for _, record in wal.read()]


class TestFraming:
    def test_frame_round_trips(self):
        payloads = [b"alpha", b"x" * 300]
        data = b"".join(encode_frame(p) for p in payloads)
        decoded, valid = decode_frames(data)
        assert decoded == payloads
        assert valid == len(data)

    def test_decode_stops_at_garbage(self):
        good = encode_frame(b"kept")
        decoded, valid = decode_frames(good + b"\xff\xff\xff\xff torn")
        assert decoded == [b"kept"]
        assert valid == len(good)

    def test_zero_filled_tail_is_torn_not_valid(self):
        # crc32(b"") == 0, so an all-zeros tail (size extended, data
        # pages never flushed) would frame as "valid" empty records if
        # length == 0 were accepted.
        good = encode_frame(b"kept")
        for pad in (8, 16, 64):
            decoded, valid = decode_frames(good + b"\x00" * pad)
            assert decoded == [b"kept"]
            assert valid == len(good)

    def test_record_payload_round_trips(self):
        record = WalRecord(key="k", user=3, items=(1, 2), ts=9.5)
        assert WalRecord.from_payload(record.to_payload()) == record
        no_ts = WalRecord(key="k2", user=0, items=(4,))
        assert WalRecord.from_payload(no_ts.to_payload()).ts is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"key": "", "user": 0, "items": (1,)},
            {"key": "k", "user": -1, "items": (1,)},
            {"key": "k", "user": 0, "items": ()},
            {"key": "k", "user": 0, "items": (1, -2)},
        ],
    )
    def test_invalid_records_rejected(self, kwargs):
        with pytest.raises(DataError):
            WalRecord(**kwargs)


class TestAppendRead:
    def test_round_trip_and_positions(self, tmp_path):
        records = make_records(6)
        with WriteAheadLog(tmp_path) as wal:
            positions = [wal.append(r).position for r in records]
            assert positions == sorted(positions)
            assert len(wal) == 6
            assert all(r.key in wal for r in records)
            assert read_all(wal) == records

    def test_read_after_position_resumes_exactly(self, tmp_path):
        records = make_records(6)
        with WriteAheadLog(tmp_path) as wal:
            positions = [wal.append(r).position for r in records]
            for i, position in enumerate(positions):
                tail = [r for _, r in wal.read(after=position)]
                assert tail == records[i + 1 :]
            assert [r for _, r in wal.read(after=WAL_START)] == records

    def test_append_on_closed_log_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        with pytest.raises(DataError):
            wal.append(make_records(1)[0])

    def test_reopen_sees_everything(self, tmp_path):
        records = make_records(5)
        with WriteAheadLog(tmp_path) as wal:
            for r in records:
                wal.append(r)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.recovery_.records == 5
            assert read_all(wal) == records


class TestIdempotency:
    def test_duplicate_append_is_a_durable_noop(self, tmp_path):
        record = make_records(1)[0]
        with WriteAheadLog(tmp_path) as wal:
            first = wal.append(record)
            assert not first.duplicate
            size = (tmp_path / segment_name(0)).stat().st_size
            second = wal.append(record)
            assert second.duplicate
            assert (tmp_path / segment_name(0)).stat().st_size == size
            assert len(wal) == 1
            assert second.position == wal.position()

    def test_dedup_index_survives_restart(self, tmp_path):
        records = make_records(4)
        with WriteAheadLog(tmp_path) as wal:
            for r in records:
                wal.append(r)
        with WriteAheadLog(tmp_path) as wal:
            # The producer redelivers the whole stream after a crash.
            assert all(wal.append(r).duplicate for r in records)
            assert read_all(wal) == records


class TestRotation:
    def test_segments_rotate_and_read_in_order(self, tmp_path):
        records = make_records(10)
        config = WalConfig(segment_bytes=96, fsync="always")
        with WriteAheadLog(tmp_path, config) as wal:
            positions = [wal.append(r).position for r in records]
        assert positions[-1].segment >= 2
        assert positions == sorted(positions)
        with WriteAheadLog(tmp_path, config) as wal:
            assert wal.recovery_.segments >= 3
            assert wal.recovery_.records == 10
            assert read_all(wal) == records
            mid = positions[4]
            assert [r for _, r in wal.read(after=mid)] == records[5:]


class TestEveryByteBoundary:
    """Cut or corrupt the segment at literally every byte."""

    @pytest.fixture(scope="class")
    def log_bytes(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("wal-src")
        records = make_records(5)
        with WriteAheadLog(directory) as wal:
            for r in records:
                wal.append(r)
        data = (directory / segment_name(0)).read_bytes()
        frames = [encode_frame(r.to_payload()) for r in records]
        boundaries = []
        offset = 0
        for frame in frames:
            offset += len(frame)
            boundaries.append(offset)
        assert boundaries[-1] == len(data)
        return records, data, boundaries

    def test_truncation_at_every_byte_recovers_the_frame_prefix(
        self, tmp_path, log_bytes
    ):
        records, data, boundaries = log_bytes
        for cut in range(len(data) + 1):
            directory = tmp_path / f"cut{cut:04d}"
            directory.mkdir()
            (directory / segment_name(0)).write_bytes(data[:cut])
            expected = sum(1 for b in boundaries if b <= cut)
            with WriteAheadLog(directory) as wal:
                assert read_all(wal) == records[:expected], f"cut at byte {cut}"
                assert wal.recovery_.records == expected
            # The torn tail is physically gone after recovery.
            valid = max([0] + [b for b in boundaries if b <= cut])
            assert (directory / segment_name(0)).stat().st_size == valid

    def test_corruption_at_every_byte_stops_at_the_bad_frame(
        self, tmp_path, log_bytes
    ):
        records, data, boundaries = log_bytes
        for index in range(len(data)):
            directory = tmp_path / f"flip{index:04d}"
            directory.mkdir()
            mutated = bytearray(data)
            mutated[index] ^= 0xFF
            (directory / segment_name(0)).write_bytes(bytes(mutated))
            frame_index = sum(1 for b in boundaries if b <= index)
            with WriteAheadLog(directory) as wal:
                assert read_all(wal) == records[:frame_index], f"flip at byte {index}"

    def test_zero_filled_tail_recovers_every_acknowledged_record(
        self, tmp_path, log_bytes
    ):
        # Post-power-loss reality on ext4/XFS: the file grew but the
        # data pages are zeros.  Recovery must truncate, not crash.
        records, data, boundaries = log_bytes
        (tmp_path / segment_name(0)).write_bytes(data + b"\x00" * 128)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.recovery_.truncated_bytes == 128
            assert read_all(wal) == records
        assert (tmp_path / segment_name(0)).stat().st_size == len(data)

    def test_crc_valid_but_unparseable_frame_is_a_torn_tail(
        self, tmp_path, log_bytes
    ):
        # A frame that passes the CRC but does not decode to a WAL
        # record (foreign writer, framed garbage) must become the
        # truncation point — not a JSONDecodeError that wedges every
        # subsequent open.
        records, data, boundaries = log_bytes
        for junk in (b"", b"not json", b"{}", b'{"user": 1}'):
            directory = tmp_path / f"junk{len(junk)}"
            directory.mkdir()
            bad = encode_frame(junk)
            (directory / segment_name(0)).write_bytes(data + bad)
            with WriteAheadLog(directory) as wal:
                assert read_all(wal) == records
            assert (directory / segment_name(0)).stat().st_size == len(data)
        # Reopening after the repair is clean: nothing left to cut.
        with WriteAheadLog(tmp_path / "junk0") as wal:
            assert wal.recovery_.truncated_bytes == 0

    def test_append_after_torn_tail_recovery_continues_the_log(
        self, tmp_path, log_bytes
    ):
        records, data, boundaries = log_bytes
        cut = boundaries[2] + 3  # mid-frame: three torn bytes of record 3
        (tmp_path / segment_name(0)).write_bytes(data[:cut])
        with WriteAheadLog(tmp_path) as wal:
            assert wal.recovery_.truncated_bytes == 3
            assert wal.recovery_.truncated_segment == 0
            # The producer retries the unacknowledged record, then moves on.
            assert not wal.append(records[3]).duplicate
            extra = WalRecord(key="extra", user=1, items=(9,), ts=99.0)
            wal.append(extra)
            assert read_all(wal) == records[:4] + [extra]


class TestKillSwitchSites:
    """Crash at each append site; recovery + producer retry never loses
    or duplicates an interaction."""

    @pytest.mark.parametrize(
        "site, durable",
        [
            # before_write: nothing appended, the record must be gone.
            ("wal.append.before_write", False),
            # after_write: bytes sit in user-space buffers the crash
            # destroys — unacknowledged, so loss is allowed (and, with
            # the abandoned handle never flushed, expected).
            ("wal.append.after_write", False),
            # after_sync: the fsync completed, so even though append()
            # never returned, the record is on stable storage.
            ("wal.append.after_sync", True),
        ],
    )
    def test_kill_then_retry_yields_exactly_once(self, tmp_path, site, durable):
        records = make_records(3)
        switch = KillSwitch().arm(site, at_tick=3)  # dies appending records[2]
        # Keep the crashed instance referenced: dropping it would let the
        # interpreter finalize (flush) its file handle, which a real
        # ``kill -9`` never does.
        crashed = WriteAheadLog(tmp_path, kill_switch=switch)
        for r in records[:2]:
            crashed.append(r)
        with pytest.raises(SimulatedKill):
            crashed.append(records[2])
        # No close(): the process is gone.  Reopen and redeliver.
        with WriteAheadLog(tmp_path) as wal:
            assert read_all(wal)[:2] == records[:2]  # acknowledged survive
            assert (records[2].key in wal) == durable
            result = wal.append(records[2])
            assert result.duplicate == durable
            assert read_all(wal) == records  # exactly once, in order

    def test_unarmed_sites_tick_harmlessly(self, tmp_path):
        switch = KillSwitch()
        with WriteAheadLog(tmp_path, kill_switch=switch) as wal:
            for r in make_records(2):
                wal.append(r)
        assert switch.ticks_["wal.append.after_sync"] == 2
        assert switch.fired_ == []


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"segment_bytes": 0},
            {"fsync": "sometimes"},
            {"batch_every": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            WalConfig(**kwargs)

    def test_batch_fsync_records_visible_to_read(self, tmp_path):
        records = make_records(5)
        with WriteAheadLog(tmp_path, WalConfig(fsync="batch", batch_every=100)) as wal:
            for r in records:
                wal.append(r)
            assert read_all(wal) == records

    def test_position_round_trips_json(self):
        position = WalPosition(segment=3, offset=1024)
        assert WalPosition.from_json_dict(position.to_json_dict()) == position
