"""Tests of the neural layers, optimizers, losses, and the three baselines."""

import numpy as np
import pytest

from repro.metrics.evaluator import evaluate_model
from repro.models.poprank import PopRank
from repro.neural.autograd import Tensor
from repro.neural.deepicf import DeepICF
from repro.neural.layers import MLP, Dense, Embedding, Module, Parameter
from repro.neural.losses import bce_with_logits, bpr_loss
from repro.neural.neumf import NeuMF
from repro.neural.neupr import NeuPR
from repro.neural.optim import SGD, Adam
from repro.utils.exceptions import ConfigError, DataError


class TestLayers:
    def test_dense_shapes_and_activation(self):
        layer = Dense(4, 3, activation="relu", seed=0)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 4))))
        assert out.shape == (5, 3)
        assert (out.data >= 0).all()

    def test_dense_invalid_activation(self):
        with pytest.raises(ConfigError):
            Dense(4, 3, activation="swish")

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, seed=0)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        assert np.array_equal(out.data[0], out.data[1])

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ConfigError):
            MLP((4,))

    def test_module_collects_parameters(self):
        class Net(Module):
            def __init__(self):
                self.layer = Dense(3, 2, seed=0)
                self.embedding = Embedding(5, 3, seed=0)
                self.tower = [Dense(2, 2, seed=0), Dense(2, 1, seed=0)]

        net = Net()
        # dense (W+b) + embedding (table) + 2 tower denses (W+b each) = 7
        assert len(net.parameters()) == 7
        assert net.n_parameters() == (3 * 2 + 2) + 5 * 3 + (2 * 2 + 2) + (2 * 1 + 1)

    def test_zero_grad_clears(self):
        layer = Dense(2, 1, seed=0)
        out = layer(Tensor(np.ones((1, 2)), requires_grad=False)).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestOptimizers:
    def test_sgd_step_math(self):
        param = Parameter(np.array([1.0, 2.0]))
        param.grad = np.array([0.5, -0.5])
        SGD([param], learning_rate=0.1).step()
        assert np.allclose(param.data, [0.95, 2.05])

    def test_sgd_weight_decay(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([0.0])
        SGD([param], learning_rate=0.1, weight_decay=0.5).step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_sgd_skips_gradless_params(self):
        param = Parameter(np.array([1.0]))
        SGD([param], learning_rate=0.1).step()
        assert param.data[0] == 1.0

    def test_adam_converges_on_quadratic(self):
        param = Parameter(np.array([5.0]))
        optimizer = Adam([param], learning_rate=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            loss = (Tensor(param.data) * 0).sum()  # placeholder
            param.grad = 2 * (param.data - 1.5)  # d/dx (x - 1.5)^2
            optimizer.step()
        assert param.data[0] == pytest.approx(1.5, abs=1e-2)

    def test_adam_invalid_betas(self):
        with pytest.raises(ConfigError):
            Adam([Parameter(np.zeros(1))], beta1=1.0)


class TestAutogradNumericalSafety:
    def test_exp_extreme_logits_no_warning(self):
        """Regression: Tensor.exp at x = ±1000 must neither overflow-warn
        nor poison gradients with nan (REP004 saturation guard)."""
        import warnings

        x = Tensor(np.array([-1000.0, 0.0, 1000.0]), requires_grad=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            out = x.exp()
            out.sum().backward()
        assert np.isfinite(out.data).all()
        assert np.isfinite(x.grad).all()
        assert out.data[0] == pytest.approx(0.0)
        assert out.data[1] == pytest.approx(1.0)

    def test_bce_extreme_logits_finite(self):
        import warnings

        logits = Tensor(np.array([-1000.0, 1000.0]), requires_grad=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            loss = bce_with_logits(logits, np.array([1.0, 0.0]))
            loss.backward()
        assert np.isfinite(loss.item())
        assert np.isfinite(logits.grad).all()


class TestLosses:
    def test_bce_matches_manual(self):
        logits = Tensor(np.array([0.3, -1.2, 2.0]), requires_grad=True)
        targets = np.array([1.0, 0.0, 1.0])
        loss = bce_with_logits(logits, targets)
        # repro: allow(REP004) — reference sigmoid over fixed small logits
        probs = 1 / (1 + np.exp(-logits.data))
        expected = -np.mean(targets * np.log(probs) + (1 - targets) * np.log(1 - probs))
        assert loss.item() == pytest.approx(expected)

    def test_bce_shape_mismatch(self):
        with pytest.raises(DataError):
            bce_with_logits(Tensor(np.zeros(3)), np.zeros(4))

    def test_bpr_loss_decreases_with_margin(self):
        tight = bpr_loss(Tensor(np.array([0.1])), Tensor(np.array([0.0]))).item()
        wide = bpr_loss(Tensor(np.array([3.0])), Tensor(np.array([0.0]))).item()
        assert wide < tight

    def test_bce_gradient_direction(self):
        logits = Tensor(np.array([0.0]), requires_grad=True)
        loss = bce_with_logits(logits, np.array([1.0]))
        loss.backward()
        assert logits.grad[0] < 0  # pushing the logit up reduces the loss


NEURAL_MODELS = [
    lambda **kw: NeuMF(embedding_dim=8, **kw),
    lambda **kw: NeuPR(embedding_dim=8, **kw),
    lambda **kw: DeepICF(embedding_dim=8, **kw),
]


class TestNeuralRecommenders:
    @pytest.mark.parametrize("factory", NEURAL_MODELS)
    def test_fit_predict_shapes(self, factory, learnable_split):
        model = factory(n_epochs=2, seed=0)
        model.fit(learnable_split.train)
        scores = model.predict_user(0)
        assert scores.shape == (learnable_split.n_items,)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("factory", NEURAL_MODELS)
    def test_loss_decreases(self, factory, learnable_split):
        model = factory(n_epochs=10, learning_rate=0.01, seed=0)
        model.fit(learnable_split.train)
        assert min(model.loss_history_) < model.loss_history_[0]

    def test_neumf_learns_better_than_popularity_eventually(self, learnable_split):
        model = NeuMF(embedding_dim=16, n_epochs=30, learning_rate=0.01, seed=0)
        model.fit(learnable_split.train)
        pop = PopRank().fit(learnable_split.train)
        assert (
            evaluate_model(model, learnable_split)["auc"]
            > evaluate_model(pop, learnable_split)["auc"] - 0.05
        )

    def test_empty_train_rejected(self):
        from repro.data.interactions import InteractionMatrix

        with pytest.raises(DataError):
            NeuMF(n_epochs=1, seed=0).fit(InteractionMatrix.empty(3, 4))

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            NeuMF(embedding_dim=0)
        with pytest.raises(ConfigError):
            NeuMF(n_epochs=0)

    def test_epoch_callback(self, learnable_split):
        epochs = []
        model = NeuPR(n_epochs=3, seed=0, epoch_callback=lambda m, e: epochs.append(e))
        model.fit(learnable_split.train)
        assert epochs == [0, 1, 2]

    def test_negative_sampling_avoids_observed(self, learnable_split, rng):
        model = NeuPR(n_epochs=1, seed=0)
        model.fit(learnable_split.train)
        users = rng.integers(0, learnable_split.n_users, 500)
        negatives = model._sample_negatives(users, rng)
        for user, item in zip(users, negatives):
            assert not learnable_split.train.contains(int(user), int(item))

    def test_deepicf_excludes_target_from_history(self, learnable_split):
        model = DeepICF(n_epochs=1, seed=0)
        model.fit(learnable_split.train)
        user = int(learnable_split.train.user_counts().argmax())
        items = learnable_split.train.positives(user)[:2]
        weights = model._history_weights(np.array([user, user]), items)
        for row, item in enumerate(items):
            assert weights[row, item] == 0.0
            assert weights[row].sum() == pytest.approx(1.0)

    def test_names(self):
        assert NeuMF().name == "NeuMF"
        assert NeuPR().name == "NeuPR"
        assert DeepICF().name == "DeepICF"
