"""Tests of the ABS sampler and early stopping."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.clapf import clapf_map
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.mf.params import FactorParams
from repro.mf.sgd import EarlyStoppingConfig, SGDConfig
from repro.models.base import validation_ndcg
from repro.sampling.abs import AlphaBetaSampler
from repro.sampling.uniform import UniformSampler
from repro.utils.exceptions import ConfigError


@pytest.fixture
def train():
    config = SyntheticConfig(n_users=60, n_items=120, density=0.08, latent_dim=3)
    return generate_synthetic(config, seed=4).interactions


@pytest.fixture
def params(train):
    return FactorParams.init(train.n_users, train.n_items, 6, seed=0, scale=0.5)


class TestAlphaBetaSampler:
    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            AlphaBetaSampler(alpha=0.5, beta=0.5)
        with pytest.raises(ConfigError):
            AlphaBetaSampler(alpha=-0.1, beta=0.5)

    def test_tuples_valid(self, train, params, rng):
        sampler = AlphaBetaSampler(alpha=0.05, beta=0.4).bind(train, params)
        batch = sampler.sample(300, rng)
        for user, i, j in zip(batch.users, batch.pos_i, batch.neg_j):
            assert train.contains(int(user), int(i))
            assert not train.contains(int(user), int(j))

    def test_negatives_avoid_head_and_tail(self, train, params, rng):
        """Windowed negatives should be easier than AoBPR-style head
        draws but harder than uniform's deep tail."""
        window = AlphaBetaSampler(alpha=0.1, beta=0.3).bind(train, params)
        head = AlphaBetaSampler(alpha=0.0, beta=0.05).bind(train, params)
        uniform = UniformSampler().bind(train, params)

        def mean_dot(sampler):
            batch = sampler.sample(4000, rng)
            return np.einsum(
                "td,td->t",
                params.user_factors[batch.users],
                params.item_factors[batch.neg_j],
            ).mean()

        head_score = mean_dot(head)
        window_score = mean_dot(window)
        uniform_score = mean_dot(uniform)
        assert head_score > window_score > uniform_score


class TestEarlyStopping:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            EarlyStoppingConfig(patience=0)
        with pytest.raises(ConfigError):
            EarlyStoppingConfig(eval_every=0)

    def test_requires_validation(self, learnable_split):
        model = clapf_map(0.4, seed=0, early_stopping=EarlyStoppingConfig())
        with pytest.raises(ConfigError):
            model.fit(learnable_split.train)  # validation omitted

    def test_stops_before_budget_and_restores_best(self, learnable_split):
        model = clapf_map(
            0.4,
            seed=0,
            sgd=SGDConfig(n_epochs=300, learning_rate=0.08),
            early_stopping=EarlyStoppingConfig(patience=2, eval_every=5, max_users=100),
        )
        model.fit(learnable_split.train, learnable_split.validation)
        assert model.stopped_early_
        assert model.best_epoch_ is not None
        assert len(model.loss_history_) < 300
        # Restored parameters must score the recorded best.
        score = validation_ndcg(
            model.params_,
            learnable_split.train,
            learnable_split.validation,
            max_users=100,
        )
        assert score == pytest.approx(max(model.validation_history_), abs=1e-9)

    def test_no_early_stopping_runs_full_budget(self, learnable_split):
        model = clapf_map(0.4, seed=0, sgd=SGDConfig(n_epochs=4))
        model.fit(learnable_split.train, learnable_split.validation)
        assert len(model.loss_history_) == 4
        assert not model.stopped_early_


class TestValidationNdcg:
    def test_oracle_scores_one(self, learnable_split):
        def oracle(user):
            scores = np.zeros(learnable_split.n_items)
            scores[learnable_split.validation.positives(user)] = 10.0
            return scores

        value = validation_ndcg(
            SimpleNamespace(predict_user=oracle),
            learnable_split.train,
            learnable_split.validation,
        )
        assert value == pytest.approx(1.0)

    def test_empty_validation_returns_zero(self, learnable_split):
        from repro.data.interactions import InteractionMatrix

        empty = InteractionMatrix.empty(learnable_split.n_users, learnable_split.n_items)
        zeros = SimpleNamespace(predict_user=lambda u: np.zeros(learnable_split.n_items))
        assert validation_ndcg(zeros, learnable_split.train, empty) == 0.0

    def test_max_users_subsamples(self, learnable_split):
        value = validation_ndcg(
            SimpleNamespace(
                predict_user=lambda user: np.arange(learnable_split.n_items, dtype=float)
            ),
            learnable_split.train,
            learnable_split.validation,
            max_users=10,
        )
        assert 0.0 <= value <= 1.0
