"""Tests of the experiment harness (registry, runner, grid, tables, figures)."""

import pytest

from repro.core.clapf import CLAPF
from repro.data.split import repeated_splits, train_test_split
from repro.experiments.config import ExperimentScale
from repro.experiments.figures import (
    FIGURE4_SAMPLERS,
    figure2_topk_curves,
    figure3_tradeoff_sweep,
    figure4_convergence,
)
from repro.experiments.grid import grid_search
from repro.experiments.registry import (
    PAPER_TRADEOFFS,
    TABLE2_METHODS,
    make_model,
    tradeoff_for,
)
from repro.experiments.runner import run_method, run_methods
from repro.experiments.tables import (
    render_table1,
    table1_dataset_statistics,
    table2_main_comparison,
)
from repro.mf.sgd import SGDConfig
from repro.models.bpr import BPR
from repro.models.poprank import PopRank
from repro.utils.exceptions import ConfigError

TINY = ExperimentScale(dataset_scale=0.15, n_epochs=4, neural_epochs=1, repeats=2)


class TestRegistry:
    @pytest.mark.parametrize("name", TABLE2_METHODS + ("CLAPF-NDCG", "CLAPF+-NDCG"))
    def test_all_methods_constructible(self, name):
        model = make_model(name, scale=TINY, dataset="ML100K", seed=0)
        assert model is not None

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            make_model("SVD++", scale=TINY)

    def test_paper_tradeoffs_applied(self):
        model = make_model("CLAPF-MAP", scale=TINY, dataset="ML1M", seed=0)
        assert model.tradeoff == PAPER_TRADEOFFS["ML1M"]["map"]
        model = make_model("CLAPF-MRR", scale=TINY, dataset="ML20M-sim@0.5", seed=0)
        assert model.tradeoff == PAPER_TRADEOFFS["ML20M"]["mrr"]

    def test_tradeoff_for_unknown_dataset_uses_default(self):
        assert tradeoff_for("MyData", "map") == 0.4

    def test_plus_methods_get_dss(self):
        from repro.sampling.dss import DoubleSampler

        model = make_model("CLAPF+-MRR", scale=TINY, dataset="ML100K", seed=0)
        assert isinstance(model.sampler, DoubleSampler)
        assert model.sampler.mode == "mrr"


class TestRunner:
    def test_run_method_aggregates(self, learnable_dataset):
        splits = repeated_splits(learnable_dataset, repeats=3, seed=0)
        result = run_method(lambda repeat: PopRank(), splits, ks=(5,))
        assert result.n_repeats == 3
        assert set(result.means) == set(result.stds)
        assert "ndcg@5" in result.means
        assert result.train_seconds >= 0
        assert len(result.per_repeat) == 3

    def test_cell_format(self, learnable_dataset):
        splits = repeated_splits(learnable_dataset, repeats=2, seed=0)
        result = run_method(lambda repeat: PopRank(), splits, ks=(5,))
        cell = result.cell("ndcg@5")
        assert "±" in cell

    def test_run_method_requires_splits(self):
        with pytest.raises(ConfigError):
            run_method(lambda repeat: PopRank(), [])

    def test_run_methods_named(self, learnable_dataset):
        splits = repeated_splits(learnable_dataset, repeats=2, seed=0)
        results = run_methods({"Pop": lambda r: PopRank()}, splits)
        assert list(results) == ["Pop"]
        assert results["Pop"].name == "Pop"

    def test_time_budget_marks_timeout(self, learnable_dataset):
        """Over-budget methods render as the paper's '-' cells."""
        import time as time_module

        class SlowModel(PopRank):
            def fit(self, train, validation=None):
                time_module.sleep(0.05)
                return super().fit(train)

        splits = repeated_splits(learnable_dataset, repeats=2, seed=0)
        result = run_method(
            lambda repeat: SlowModel(), splits, name="Slow", time_budget_seconds=0.01
        )
        assert result.timed_out
        assert result.cell("ndcg@5") == "-"
        assert result.means == {}

    def test_time_budget_not_triggered_when_fast(self, learnable_dataset):
        splits = repeated_splits(learnable_dataset, repeats=2, seed=0)
        result = run_method(
            lambda repeat: PopRank(), splits, time_budget_seconds=60.0
        )
        assert not result.timed_out
        assert "ndcg@5" in result.means

    def test_injected_clock_drives_train_seconds(self, learnable_dataset):
        """run_method times fits through the Clock seam (REP002): a
        FakeClock that jumps 2s per fit yields exactly 2.0s mean."""
        from repro.utils.clock import FakeClock

        class JumpyClock(FakeClock):
            def monotonic(self):
                now = self.now
                self.now += 2.0
                return now

        splits = repeated_splits(learnable_dataset, repeats=3, seed=0)
        result = run_method(lambda repeat: PopRank(), splits, ks=(5,), clock=JumpyClock())
        assert result.train_seconds == pytest.approx(2.0)

    def test_factory_receives_repeat_index(self, learnable_dataset):
        splits = repeated_splits(learnable_dataset, repeats=3, seed=0)
        seen = []

        def factory(repeat):
            seen.append(repeat)
            return PopRank()

        run_method(factory, splits)
        assert seen == [0, 1, 2]


class TestGridSearch:
    def test_selects_best_by_validation_ndcg(self, learnable_dataset):
        split = train_test_split(learnable_dataset, seed=0)
        sgd = SGDConfig(n_epochs=8, learning_rate=0.08)
        result = grid_search(
            lambda tradeoff: CLAPF("map", tradeoff=tradeoff, sgd=sgd, seed=0),
            {"tradeoff": [0.0, 0.4, 1.0]},
            split,
        )
        assert result.best_params["tradeoff"] in (0.0, 0.4, 1.0)
        assert len(result.scores) == 3
        assert result.best_score == max(score for _, score in result.scores)
        assert result.ranked()[0][1] == result.best_score

    def test_requires_validation(self, learnable_dataset):
        split = train_test_split(learnable_dataset, validation_per_user=0, seed=0)
        with pytest.raises(ConfigError):
            grid_search(lambda: BPR(), {"n_factors": [4]}, split)

    def test_empty_grid_rejected(self, learnable_split):
        with pytest.raises(ConfigError):
            grid_search(lambda: BPR(), {}, learnable_split)


class TestTables:
    def test_table1_covers_all_profiles(self):
        rows = table1_dataset_statistics(scale=TINY)
        assert len(rows) == 6
        rendered = render_table1(rows)
        assert "ML100K" in rendered and "Netflix" in rendered

    def test_table2_block(self):
        block = table2_main_comparison(
            "ML100K", methods=("PopRank", "BPR", "CLAPF-MAP"), scale=TINY
        )
        assert set(block.results) == {"PopRank", "BPR", "CLAPF-MAP"}
        rendered = block.render()
        assert "NDCG@5" in rendered and "CLAPF-MAP" in rendered
        assert block.best_method("ndcg@5") in block.results


class TestFigures:
    def test_figure2_series_shapes(self):
        result = figure2_topk_curves("ML100K", methods=("PopRank", "BPR"), scale=TINY)
        assert result.ks == (3, 5, 10, 15, 20)
        assert len(result.recall["BPR"]) == 5
        assert "Recall@k" in result.render()

    def test_figure3_lambda_grid(self):
        result = figure3_tradeoff_sweep("ML100K", lambdas=(0.0, 0.5, 1.0), scale=TINY)
        assert set(result.curves) == {"CLAPF-MAP", "CLAPF-MRR"}
        assert len(result.curves["CLAPF-MAP"]["ndcg@5"]) == 3
        assert "λ=0.5" in result.render()

    def test_figure4_traces(self):
        result = figure4_convergence(
            "ML100K", samplers=("Uniform", "DSS"), scale=TINY, max_users=50
        )
        assert set(result.traces) == {"Uniform", "DSS"}
        assert len(result.traces["DSS"]) == TINY.n_epochs
        assert result.epochs_to_reach("DSS", 0.0) == 0
        assert result.epochs_to_reach("DSS", 2.0) is None

    def test_figure2_chart_renders(self):
        result = figure2_topk_curves("ML100K", methods=("PopRank",), scale=TINY)
        chart = result.chart("recall")
        assert "Fig. 2" in chart and "PopRank" in chart
        assert "k=3" in chart and "k=20" in chart

    def test_figure4_chart_renders(self):
        result = figure4_convergence("ML100K", samplers=("Uniform",), scale=TINY, max_users=30)
        chart = result.chart()
        assert "Fig. 4" in chart and "Uniform" in chart

    def test_figure4_unknown_sampler(self):
        with pytest.raises(ConfigError):
            figure4_convergence("ML100K", samplers=("Magic",), scale=TINY)

    def test_figure4_sampler_names(self):
        assert FIGURE4_SAMPLERS == ("Uniform", "Positive", "Negative", "DSS")


class TestScale:
    def test_quick_smaller_than_paper(self):
        quick, paper = ExperimentScale.quick(), ExperimentScale.paper()
        assert quick.dataset_scale < paper.dataset_scale
        assert quick.neural_epochs < paper.neural_epochs
        assert quick.repeats < paper.repeats

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            ExperimentScale(dataset_scale=0)

    def test_sgd_config_reflects_scale(self):
        scale = ExperimentScale(n_epochs=7, learning_rate=0.02)
        config = scale.sgd_config()
        assert config.n_epochs == 7
        assert config.learning_rate == 0.02
