"""Candidate retrieval: shortlist honesty and exact-rerank equality.

The contract under test (:mod:`repro.retrieval`):

* shortlisted candidates are scored with the same chunk-invariant
  kernel as the dense engine, so whenever the shortlist contains the
  true top-k (recall@k = 1.0 — e.g. probing every IVF cell) the
  reranked ranking equals the dense ranking **exactly**, ties and all;
* shortlist recall is *measured*, never assumed, and on clustered item
  factors a modest probe count clears the honesty floor;
* the exact path of :func:`~repro.metrics.scoring.topk_with_retrieval`
  is the unchanged dense engine (``metrics_identical`` discipline).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import scoring
from repro.retrieval import IVFConfig, IVFIndex, measure_recall, rerank_topk
from repro.utils.exceptions import ConfigError


def clustered_factors(n_items=200, d=8, n_clusters=5, seed=0, spread=0.15):
    """Mixture-of-Gaussians item factors (realistic clustered catalog)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_clusters, d)) * 3.0
    assignment = rng.integers(0, n_clusters, size=n_items)
    return centers[assignment] + rng.normal(size=(n_items, d)) * spread


@pytest.fixture
def catalog():
    item_factors = clustered_factors()
    rng = np.random.default_rng(1)
    item_bias = rng.normal(size=len(item_factors)) * 0.1
    user_vectors = rng.normal(size=(24, item_factors.shape[1]))
    return user_vectors, item_factors, item_bias


class TestIVFIndex:
    def test_build_is_deterministic(self, catalog):
        _, item_factors, _ = catalog
        a = IVFIndex.build(item_factors, IVFConfig(n_clusters=8, n_probe=4, seed=3))
        b = IVFIndex.build(item_factors, IVFConfig(n_clusters=8, n_probe=4, seed=3))
        assert np.array_equal(a.centroids, b.centroids)
        users = np.random.default_rng(0).normal(size=(4, item_factors.shape[1]))
        for row_a, row_b in zip(a.shortlist(users), b.shortlist(users)):
            assert np.array_equal(row_a, row_b)

    def test_shortlist_sorted_unique_in_catalog(self, catalog):
        user_vectors, item_factors, _ = catalog
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=8, n_probe=2))
        for candidates in index.shortlist(user_vectors):
            assert np.array_equal(candidates, np.unique(candidates))
            assert candidates.min() >= 0 and candidates.max() < len(item_factors)

    def test_every_item_lives_in_exactly_one_cell(self, catalog):
        _, item_factors, _ = catalog
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=8, n_probe=2))
        members = np.concatenate(index.members)
        assert sorted(members.tolist()) == list(range(len(item_factors)))

    def test_n_clusters_clamped_to_catalog(self):
        item_factors = np.random.default_rng(0).normal(size=(5, 3))
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=64, n_probe=64))
        assert len(index.members) <= 5

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            IVFConfig(n_clusters=0)
        with pytest.raises(ConfigError):
            IVFConfig(n_probe=0)
        with pytest.raises(ConfigError):
            IVFConfig(max_iter=0)


class TestRerankEqualsDense:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_full_probe_equals_dense_exactly(self, seed):
        """recall@k = 1.0 (probe all cells) => rankings identical, ties and all."""
        item_factors = clustered_factors(seed=seed)
        rng = np.random.default_rng(seed + 100)
        item_bias = rng.normal(size=len(item_factors)) * 0.1
        user_vectors = rng.normal(size=(16, item_factors.shape[1]))
        n_clusters = 8
        index = IVFIndex.build(
            item_factors, IVFConfig(n_clusters=n_clusters, n_probe=n_clusters)
        )
        assert measure_recall(index, user_vectors, item_factors, item_bias, 10) == 1.0
        exact = scoring.topk_with_retrieval(user_vectors, item_factors, item_bias, 10)
        approx = scoring.topk_with_retrieval(
            user_vectors, item_factors, item_bias, 10, retriever=index
        )
        for exact_row, approx_row in zip(exact, approx):
            assert np.array_equal(exact_row, approx_row)

    def test_tied_scores_rerank_identically(self):
        # All-zero factors, constant bias: every item ties; both paths
        # must fall back to the same ties-by-item-id order.
        item_factors = np.zeros((12, 4))
        item_bias = np.ones(12)
        user_vectors = np.ones((3, 4))
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=3, n_probe=3))
        exact = scoring.topk_with_retrieval(user_vectors, item_factors, item_bias, 5)
        approx = scoring.topk_with_retrieval(
            user_vectors, item_factors, item_bias, 5, retriever=index
        )
        for exact_row, approx_row in zip(exact, approx):
            assert np.array_equal(exact_row, approx_row)

    def test_exclusions_respected_on_both_paths(self, catalog):
        user_vectors, item_factors, item_bias = catalog
        exclude = [
            np.arange(row % 7, dtype=np.int64) for row in range(len(user_vectors))
        ]
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=6, n_probe=6))
        exact = scoring.topk_with_retrieval(
            user_vectors, item_factors, item_bias, 10, exclude=exclude
        )
        approx = scoring.topk_with_retrieval(
            user_vectors, item_factors, item_bias, 10, retriever=index, exclude=exclude
        )
        for row, (exact_row, approx_row) in enumerate(zip(exact, approx)):
            assert not np.isin(exact_row, exclude[row]).any()
            assert np.array_equal(exact_row, approx_row)

    def test_partial_probe_recall_measured_not_assumed(self, catalog):
        user_vectors, item_factors, item_bias = catalog
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=10, n_probe=3))
        recall = measure_recall(index, user_vectors, item_factors, item_bias, 10)
        assert 0.0 <= recall <= 1.0
        # Clustered catalogs are the honest case for IVF: a 3/10 probe
        # should comfortably clear the benchmark's recall floor.
        assert recall >= 0.95


class TestRerankEdges:
    def test_k_zero_returns_empty_rows(self, catalog):
        user_vectors, item_factors, item_bias = catalog
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=4, n_probe=2))
        rankings = rerank_topk(user_vectors, item_factors, item_bias, 0, index)
        assert all(len(row) == 0 for row in rankings)

    def test_negative_k_rejected(self, catalog):
        user_vectors, item_factors, item_bias = catalog
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=4, n_probe=2))
        with pytest.raises(ConfigError):
            rerank_topk(user_vectors, item_factors, item_bias, -1, index)

    def test_fully_excluded_shortlist_yields_empty_row(self):
        item_factors = np.random.default_rng(0).normal(size=(6, 3))
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=1, n_probe=1))
        rankings = rerank_topk(
            np.ones((1, 3)), item_factors, None, 3, index,
            exclude=[np.arange(6, dtype=np.int64)],
        )
        assert len(rankings[0]) == 0

    def test_describe_is_json_ready(self, catalog):
        _, item_factors, _ = catalog
        index = IVFIndex.build(item_factors, IVFConfig(n_clusters=4, n_probe=2))
        description = index.describe()
        assert description["name"] == "ivf"
        import json

        json.dumps(description)
