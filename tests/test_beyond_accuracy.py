"""Tests of the beyond-accuracy metrics (coverage, novelty, diversity)."""

import numpy as np
import pytest

from repro.metrics.beyond_accuracy import (
    beyond_accuracy_report,
    catalog_coverage,
    intra_list_diversity,
    novelty,
)
from repro.models.bpr import BPR
from repro.models.poprank import PopRank
from repro.mf.sgd import SGDConfig
from repro.utils.exceptions import ConfigError, DataError


class TestCatalogCoverage:
    def test_full_coverage(self):
        recs = np.array([[0, 1], [2, 3]])
        assert catalog_coverage(recs, 4) == 1.0

    def test_partial_coverage(self):
        recs = np.array([[0, 0], [0, 0]])
        assert catalog_coverage(recs, 10) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            catalog_coverage(np.array([[0]]), 0)
        with pytest.raises(DataError):
            catalog_coverage(np.array([0, 1]), 5)  # not 2-D
        with pytest.raises(DataError):
            catalog_coverage(np.array([[9]]), 5)


class TestNovelty:
    def test_rare_items_more_novel(self, tiny_matrix):
        popular = novelty(np.array([[2]]), tiny_matrix)  # item 2: 2 users
        rare = novelty(np.array([[4]]), tiny_matrix)  # item 4: never seen
        assert rare > popular

    def test_positive_and_finite(self, tiny_matrix):
        value = novelty(np.array([[0, 1, 2], [3, 4, 5]]), tiny_matrix)
        assert np.isfinite(value) and value > 0


class TestDiversity:
    def test_identical_items_zero_diversity(self):
        reps = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert intra_list_diversity(np.array([[0, 1]]), reps) == pytest.approx(0.0)

    def test_orthogonal_items_high_diversity(self):
        reps = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert intra_list_diversity(np.array([[0, 1]]), reps) == pytest.approx(1.0)

    def test_single_item_lists(self):
        reps = np.eye(3)
        assert intra_list_diversity(np.array([[0], [1]]), reps) == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            intra_list_diversity(np.array([[0, 1]]), np.zeros(3))


class TestReport:
    def test_popularity_has_minimal_coverage(self, learnable_split):
        pop = PopRank().fit(learnable_split.train)
        bpr = BPR(n_factors=8, sgd=SGDConfig(n_epochs=30), seed=0).fit(learnable_split.train)
        pop_report = beyond_accuracy_report(pop, learnable_split.train, k=10)
        bpr_report = beyond_accuracy_report(bpr, learnable_split.train, k=10)
        # PopRank shows (almost) the same list to everyone.
        assert pop_report["catalog_coverage"] < bpr_report["catalog_coverage"]
        # Personalized lists are more novel than pure popularity.
        assert bpr_report["novelty_bits"] > pop_report["novelty_bits"]

    def test_diversity_included_for_factor_models(self, learnable_split):
        bpr = BPR(n_factors=8, sgd=SGDConfig(n_epochs=5), seed=0).fit(learnable_split.train)
        report = beyond_accuracy_report(bpr, learnable_split.train, k=5)
        assert "intra_list_diversity" in report
        assert 0.0 <= report["intra_list_diversity"] <= 2.0

    def test_no_users_rejected(self, learnable_split):
        pop = PopRank().fit(learnable_split.train)
        with pytest.raises(DataError):
            beyond_accuracy_report(pop, learnable_split.train, users=np.array([], dtype=int))
