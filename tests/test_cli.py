"""Tests of the command-line interface."""

import pytest

from repro.cli import main


class TestProfiles:
    def test_lists_all_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("ML100K", "ML1M", "UserTag", "ML20M", "Flixter", "Netflix"):
            assert name in out
        assert "480189" in out  # Netflix paper user count


class TestStats:
    def test_profile_stats(self, capsys):
        assert main(["stats", "--profile", "ML100K", "--scale", "0.2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "item_gini" in out
        assert "density" in out


class TestGenerate:
    def test_writes_pair_file(self, tmp_path, capsys):
        out_file = tmp_path / "pairs.tsv"
        code = main([
            "generate", "--profile", "UserTag", "--scale", "0.15",
            "--seed", "3", "--out", str(out_file),
        ])
        assert code == 0
        lines = out_file.read_text().strip().splitlines()
        assert len(lines) > 10
        user, item = lines[0].split("\t")
        assert user.isdigit() and item.isdigit()

    def test_generated_file_loads_back(self, tmp_path, capsys):
        out_file = tmp_path / "pairs.tsv"
        main(["generate", "--profile", "ML100K", "--scale", "0.15", "--seed", "3",
              "--out", str(out_file)])
        assert main(["stats", "--data", str(out_file)]) == 0


class TestTrain:
    def test_train_prints_metrics(self, capsys):
        code = main([
            "train", "--profile", "ML100K", "--scale", "0.2", "--seed", "0",
            "--method", "BPR", "--epochs", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ndcg@5" in out and "auc" in out

    def test_train_saves_model(self, tmp_path, capsys):
        model_path = tmp_path / "bpr.npz"
        code = main([
            "train", "--profile", "ML100K", "--scale", "0.2", "--seed", "0",
            "--method", "BPR", "--epochs", "2", "--save", str(model_path),
        ])
        assert code == 0
        from repro.persistence import load_factors

        params, metadata = load_factors(model_path)
        assert metadata["method"] == "BPR"
        assert params.n_factors == 20

    def test_train_nonfactor_model_save_is_graceful(self, tmp_path, capsys):
        code = main([
            "train", "--profile", "ML100K", "--scale", "0.2", "--seed", "0",
            "--method", "PopRank", "--epochs", "1", "--save", str(tmp_path / "pop.npz"),
        ])
        assert code == 0
        assert "nothing to save" in capsys.readouterr().out

    def test_unknown_method_exits_nonzero(self, capsys):
        code = main([
            "train", "--profile", "ML100K", "--scale", "0.2",
            "--method", "SVD++", "--epochs", "1",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestReproduce:
    def test_table1(self, capsys, monkeypatch):
        assert main(["reproduce", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestCompare:
    def test_compare_runs_and_reports(self, capsys):
        code = main([
            "compare", "--profile", "ML100K", "--scale", "0.2", "--seed", "0",
            "--method-a", "BPR", "--method-b", "PopRank", "--epochs", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "A = BPR, B = PopRank" in out
        assert "Holm-Bonferroni" in out
        assert "ndcg@5" in out


class TestSweep:
    def test_sweep_renders_table(self, capsys):
        code = main([
            "sweep", "--property", "signal", "--values", "2", "10",
            "--methods", "PopRank", "BPR", "--epochs", "5", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sensitivity of ndcg@5 to signal" in out
        assert "signal=2" in out and "signal=10" in out

    def test_sweep_integer_property_coerced(self, capsys):
        code = main([
            "sweep", "--property", "n_items", "--values", "60", "120",
            "--methods", "PopRank", "--epochs", "2", "--seed", "1",
        ])
        assert code == 0

    def test_sweep_unknown_property_errors(self, capsys):
        code = main([
            "sweep", "--property", "sparkliness", "--values", "1",
            "--methods", "PopRank", "--epochs", "2",
        ])
        assert code == 2


SERVE_BASE = [
    "serve", "--profile", "ML100K", "--scale", "0.2", "--seed", "0",
    "--method", "BPR", "--epochs", "2", "--executor", "inline",
    "--deadline-ms", "200",
]


class TestServe:
    def test_healthy_traffic_serves_and_summarizes(self, capsys):
        assert main(SERVE_BASE + ["--requests", "30"]) == 0
        out = capsys.readouterr().out
        assert "Serving summary" in out
        assert "personalized" in out
        assert "fallback rate" in out

    def test_injected_faults_degrade_every_request(self, capsys):
        code = main(SERVE_BASE + [
            "--requests", "40", "--cold-fraction", "0.0",
            "--inject-nan", "personalized", "--expect-degraded",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "all responses degraded with provenance, none failed" in out
        assert "open" in out  # the personalized breaker opened

    def test_faults_clear_and_tier_recovers(self, capsys):
        code = main(SERVE_BASE + [
            "--requests", "60", "--inject-fail", "personalized",
            "--breaker-cooldown", "0.01", "--clear-faults-after", "30",
        ])
        assert code == 0
        assert "faults cleared" in capsys.readouterr().out

    def test_unknown_fault_tier_exits_2(self, capsys):
        code = main(SERVE_BASE + ["--requests", "5", "--inject-nan", "nosuchtier"])
        assert code == 2
        assert "unknown tier" in capsys.readouterr().err

    def test_watch_accepts_a_new_model(self, tmp_path, capsys):
        # The candidate is trained identically to the live model, so its
        # canary NDCG matches and the reload must be accepted.
        model_path = tmp_path / "bpr.npz"
        assert main([
            "train", "--profile", "ML100K", "--scale", "0.2", "--seed", "0",
            "--method", "BPR", "--epochs", "2", "--save", str(model_path),
        ]) == 0
        capsys.readouterr()
        code = main(SERVE_BASE + [
            "--requests", "30", "--watch", str(model_path), "--poll-every", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "watching" in out
        assert "reload accepted" in out

    def test_serve_saved_model(self, tmp_path, capsys):
        model_path = tmp_path / "bpr.npz"
        main([
            "train", "--profile", "ML100K", "--scale", "0.2", "--seed", "0",
            "--method", "BPR", "--epochs", "2", "--save", str(model_path),
        ])
        capsys.readouterr()
        code = main(SERVE_BASE + [
            "--requests", "10", "--model", str(model_path),
        ])
        assert code == 0
        assert "Serving summary" in capsys.readouterr().out


class TestShadowEval:
    def test_reports_agreement(self, capsys):
        code = main([
            "shadow-eval", "--profile", "ML100K", "--scale", "0.15", "--seed", "0",
            "--method", "BPR", "--epochs", "2", "--executor", "inline",
            "--deadline-ms", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "exact-match rate" in out
        assert "mean overlap@5" in out
        assert "Serving summary" in out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_invalid_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["stats", "--profile", "NotADataset"])
