"""Additional property-based tests across subsystems.

These target invariants that unit tests state only pointwise:
persistence round-trips, transpose duality, fold-in behaviour, the
smoothed-measure orderings, and leaderboard rank arithmetic.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.smoothing import (
    l_map_objective,
    smoothed_average_precision,
    smoothed_reciprocal_rank,
)
from repro.data.interactions import InteractionMatrix
from repro.mf.fold_in import fold_in_user_ridge
from repro.mf.params import FactorParams
from repro.persistence import (
    load_factors,
    load_interactions,
    save_factors,
    save_interactions,
)


def pairs_strategy(max_users=7, max_items=9):
    return st.lists(
        st.tuples(st.integers(0, max_users - 1), st.integers(0, max_items - 1)),
        max_size=30,
    )


class TestTransposeProperties:
    @given(pairs=pairs_strategy())
    @settings(max_examples=50, deadline=None)
    def test_transpose_involution(self, pairs):
        matrix = InteractionMatrix.from_pairs(pairs, 7, 9)
        assert matrix.transpose().transpose() == matrix

    @given(pairs=pairs_strategy())
    @settings(max_examples=50, deadline=None)
    def test_transpose_swaps_membership(self, pairs):
        matrix = InteractionMatrix.from_pairs(pairs, 7, 9)
        transposed = matrix.transpose()
        for user, item in pairs[:10]:
            assert transposed.contains(item, user) == matrix.contains(user, item)

    @given(pairs=pairs_strategy())
    @settings(max_examples=50, deadline=None)
    def test_transpose_preserves_interaction_count(self, pairs):
        matrix = InteractionMatrix.from_pairs(pairs, 7, 9)
        assert matrix.transpose().n_interactions == matrix.n_interactions


class TestPersistenceProperties:
    @given(
        n_users=st.integers(1, 6),
        n_items=st.integers(1, 8),
        n_factors=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_factor_roundtrip_bitexact(self, tmp_path_factory, n_users, n_items, n_factors, seed):
        directory = tmp_path_factory.mktemp("factors")
        params = FactorParams.init(n_users, n_items, n_factors, seed=seed)
        path = save_factors(directory / "m.npz", params)
        loaded, _ = load_factors(path)
        assert np.array_equal(loaded.user_factors, params.user_factors)
        assert np.array_equal(loaded.item_bias, params.item_bias)

    @given(pairs=pairs_strategy())
    @settings(max_examples=25, deadline=None)
    def test_interactions_roundtrip(self, tmp_path_factory, pairs):
        directory = tmp_path_factory.mktemp("interactions")
        matrix = InteractionMatrix.from_pairs(pairs, 7, 9)
        path = save_interactions(directory / "d.npz", matrix)
        assert load_interactions(path) == matrix


class TestSmoothingOrderings:
    @given(
        f_pos=st.lists(st.floats(-3, 3, allow_nan=False), min_size=1, max_size=8),
        shift=st.floats(0.1, 2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_shift_raises_smoothed_measures(self, f_pos, shift):
        """Raising every observed score raises the smoothed AP and RR:
        the pairwise terms are shift-invariant and sigma(f) grows."""
        low = np.array(f_pos)
        high = low + shift
        assert smoothed_average_precision(high) >= smoothed_average_precision(low) - 1e-12
        assert smoothed_reciprocal_rank(high) >= smoothed_reciprocal_rank(low) - 1e-12

    @given(
        f_pos=st.lists(st.floats(-3, 3, allow_nan=False), min_size=1, max_size=8),
        shift=st.floats(0.1, 2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_shift_raises_l_map(self, f_pos, shift):
        low = np.array(f_pos)
        assert l_map_objective(low + shift) >= l_map_objective(low) - 1e-12


class TestFoldInProperties:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_ridge_fold_in_is_scale_stable(self, seed):
        """Duplicating the history (a multiset) changes nothing for the
        ridge solve expressed over unique items, and the solution is
        finite for any random factors."""
        params = FactorParams.init(4, 12, 3, seed=seed, scale=0.5)
        result = fold_in_user_ridge(params, [0, 3, 7])
        assert np.all(np.isfinite(result.user_vector))
        scores = result.predict()
        assert scores.shape == (12,)
        assert np.all(np.isfinite(scores))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_recommend_excludes_requested_items(self, seed):
        params = FactorParams.init(4, 12, 3, seed=seed, scale=0.5)
        history = np.array([1, 5, 9])
        result = fold_in_user_ridge(params, history)
        recommendations = result.recommend(5, exclude=history)
        assert not set(recommendations.tolist()) & set(history.tolist())
