"""Ingest crash discipline: kill at every site, resume bitwise-identical.

The ingester's contract is the streaming extension of the PR 2
kill-and-resume invariant: a crash at *any* persistence site, on any
batch, followed by :meth:`StreamIngestor.resume`, must reproduce
factors bitwise-identical to a run that never crashed — and redelivered
WAL records must fold in exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_profile_dataset, train_test_split
from repro.mf.sgd import SGDConfig
from repro.models import BPR
from repro.resilience.chaos import KillSwitch, SimulatedKill
from repro.streaming import (
    IngestConfig,
    StreamIngestor,
    WalConfig,
    WalRecord,
    WriteAheadLog,
    append_all,
    synthesize_records,
)
from repro.utils.exceptions import ConfigError, NotFittedError

KILL_SITES = (
    "ingest.before_checkpoint",
    "ingest.after_checkpoint",
    "ingest.after_interactions",
    "ingest.after_offset",
)


@pytest.fixture(scope="module")
def split():
    dataset = make_profile_dataset("ML100K", scale=0.15, seed=3)
    return train_test_split(dataset, seed=3)


def fresh_model(split):
    return BPR(n_factors=8, sgd=SGDConfig(n_epochs=1), seed=0).fit(
        split.train, split.validation
    )


def make_stream(split, n=60, seed=11):
    return synthesize_records(
        n, n_users=split.train.n_users, n_items=split.train.n_items, seed=seed
    )


def make_wal(path, records):
    wal = WriteAheadLog(path, WalConfig(fsync="batch"))
    append_all(wal, records)
    return wal


CONFIG = IngestConfig(batch_records=20)


class TestIngestBasics:
    def test_requires_fitted_model(self, tmp_path, split):
        with WriteAheadLog(tmp_path / "wal") as wal:
            with pytest.raises(NotFittedError):
                StreamIngestor(wal, BPR(), tmp_path / "state")

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            IngestConfig(batch_records=0)
        with pytest.raises(ConfigError):
            IngestConfig(epochs_per_batch=-1)
        with pytest.raises(ConfigError):
            IngestConfig(keep_states=1)
        with pytest.raises(ConfigError):
            IngestConfig(max_user_growth=-1)

    def test_consumes_stream_in_batches(self, tmp_path, split):
        records = make_stream(split)
        with make_wal(tmp_path / "wal", records) as wal:
            ingestor = StreamIngestor(wal, fresh_model(split), tmp_path / "s", config=CONFIG)
            before = ingestor.factors_checksum()
            reports = ingestor.run()
            assert [r.batch_index for r in reports] == [0, 1, 2]
            assert sum(r.records for r in reports) == len(records)
            assert ingestor.records_total_ == len(records)
            assert ingestor.position == reports[-1].position
            assert ingestor.factors_checksum() != before  # epochs actually ran
            assert ingestor.run() == []  # nothing left past the offset

    def test_duplicate_redelivery_is_noop(self, tmp_path, split):
        records = make_stream(split)
        with make_wal(tmp_path / "wal", records) as wal:
            ingestor = StreamIngestor(wal, fresh_model(split), tmp_path / "s", config=CONFIG)
            ingestor.run()
            crc = ingestor.factors_checksum()
            assert append_all(wal, records) == 0  # all dedup to durable no-ops
            assert ingestor.run() == []
            assert ingestor.factors_checksum() == crc

    def test_new_users_grow_and_fold_in(self, tmp_path, split):
        n_users = split.train.n_users
        n_items = split.train.n_items
        records = [
            WalRecord(key="warm", user=0, items=(0, 1), ts=5.0),
            WalRecord(key="new-with-items", user=n_users + 1, items=(2, 3), ts=6.0),
            WalRecord(key="new-out-of-catalog", user=n_users + 2, items=(n_items + 7,)),
        ]
        with make_wal(tmp_path / "wal", records) as wal:
            ingestor = StreamIngestor(
                wal,
                fresh_model(split),
                tmp_path / "s",
                config=IngestConfig(batch_records=10, epochs_per_batch=0),
            )
            (report,) = ingestor.run()
        assert report.new_users == 3  # id gap user n_users counts too
        assert report.folded_users == 1
        assert report.skipped_items == 1
        assert ingestor.train.n_users == n_users + 3
        factors = ingestor.model.params_.user_factors
        assert np.any(factors[n_users + 1] != 0.0)  # ridge fold-in vector
        assert np.all(factors[n_users + 2] == 0.0)  # item-less arrival
        assert ingestor.item_last_seen_[0] == 5.0
        assert ingestor.item_last_seen_[2] == 6.0

    def test_over_cap_user_records_are_skipped_not_allocated(self, tmp_path, split):
        # A WAL record with an absurd user id (the log is replayed
        # verbatim, so one such durable record is permanent) must be
        # skipped and counted — never allowed to size the factor matrix.
        n_users = split.train.n_users
        records = [
            WalRecord(key="ok", user=0, items=(0,), ts=1.0),
            WalRecord(key="grows", user=n_users + 3, items=(1,), ts=2.0),
            WalRecord(key="absurd", user=n_users + 10**9, items=(2,), ts=3.0),
        ]
        with make_wal(tmp_path / "wal", records) as wal:
            ingestor = StreamIngestor(
                wal,
                fresh_model(split),
                tmp_path / "s",
                config=IngestConfig(
                    batch_records=10, epochs_per_batch=0, max_user_growth=100
                ),
            )
            (report,) = ingestor.run()
        assert report.skipped_users == 1
        assert report.new_users == 4  # the in-cap arrival still grows
        assert ingestor.skipped_users_total_ == 1
        assert ingestor.train.n_users == n_users + 4
        # The skipped record contributes nothing — no pair, no recency.
        assert 2 not in ingestor.item_last_seen_
        # Resume from the committed state keeps the running count.
        with make_wal(tmp_path / "wal", []) as wal:
            resumed = StreamIngestor.resume(
                wal,
                fresh_model(split),
                tmp_path / "s",
                config=IngestConfig(
                    batch_records=10, epochs_per_batch=0, max_user_growth=100
                ),
            )
            assert resumed.skipped_users_total_ == 1

    def test_item_last_seen_keeps_maximum_ts(self, tmp_path, split):
        records = [
            WalRecord(key="a", user=0, items=(4,), ts=100.0),
            WalRecord(key="b", user=1, items=(4,), ts=40.0),
        ]
        with make_wal(tmp_path / "wal", records) as wal:
            ingestor = StreamIngestor(
                wal,
                fresh_model(split),
                tmp_path / "s",
                config=IngestConfig(batch_records=10, epochs_per_batch=0),
            )
            ingestor.run()
        assert ingestor.item_last_seen_[4] == 100.0


class TestResume:
    def test_resume_without_state_is_a_fresh_start(self, tmp_path, split):
        records = make_stream(split)
        with make_wal(tmp_path / "wal", records) as wal:
            fresh = StreamIngestor(wal, fresh_model(split), tmp_path / "a", config=CONFIG)
            fresh.run()
        with make_wal(tmp_path / "wal2", records) as wal:
            resumed = StreamIngestor.resume(
                wal, fresh_model(split), tmp_path / "b", config=CONFIG
            )
            resumed.run()
        assert resumed.factors_checksum() == fresh.factors_checksum()

    def test_resume_after_clean_stop_continues_exactly(self, tmp_path, split):
        records = make_stream(split)
        reference_wal = make_wal(tmp_path / "ref-wal", records)
        with reference_wal as wal:
            reference = StreamIngestor(wal, fresh_model(split), tmp_path / "ref", config=CONFIG)
            reference.run()

        with make_wal(tmp_path / "wal", records) as wal:
            first = StreamIngestor(wal, fresh_model(split), tmp_path / "s", config=CONFIG)
            first.run(max_batches=1)
        with WriteAheadLog(tmp_path / "wal", WalConfig(fsync="batch")) as wal:
            second = StreamIngestor.resume(
                wal, fresh_model(split), tmp_path / "s", config=CONFIG
            )
            reports = second.run()
        assert [r.batch_index for r in reports] == [1, 2]
        assert second.records_total_ == len(records)
        assert second.factors_checksum() == reference.factors_checksum()

    @pytest.mark.parametrize("site", KILL_SITES)
    @pytest.mark.parametrize("batch", [1, 2])
    def test_kill_anywhere_resume_is_bitwise_identical(
        self, tmp_path, split, site, batch
    ):
        records = make_stream(split)
        with make_wal(tmp_path / "ref-wal", records) as wal:
            reference = StreamIngestor(wal, fresh_model(split), tmp_path / "ref", config=CONFIG)
            reference.run()

        model = fresh_model(split)
        switch = KillSwitch().arm(site, at_tick=batch + 1)
        with make_wal(tmp_path / "wal", records) as wal:
            crashed = StreamIngestor(
                wal, model, tmp_path / "s", config=CONFIG, kill_switch=switch
            )
            with pytest.raises(SimulatedKill):
                crashed.run()
        with WriteAheadLog(tmp_path / "wal", WalConfig(fsync="batch")) as wal:
            resumed = StreamIngestor.resume(wal, model, tmp_path / "s", config=CONFIG)
            resumed.run()
            assert resumed.factors_checksum() == reference.factors_checksum()
            assert resumed.records_total_ == reference.records_total_
            assert resumed.position == reference.position
            assert resumed.train.n_users == reference.train.n_users
            assert resumed.item_last_seen_ == reference.item_last_seen_

    def test_orphaned_state_from_crash_is_replayed_identically(self, tmp_path, split):
        # A crash after the interactions write but before the offset
        # leaves an orphaned (checkpoint, interactions) pair for batch 1;
        # resume must ignore it and rewrite it bit-for-bit.
        records = make_stream(split)
        model = fresh_model(split)
        switch = KillSwitch().arm("ingest.after_interactions", at_tick=2)
        with make_wal(tmp_path / "wal", records) as wal:
            crashed = StreamIngestor(
                wal, model, tmp_path / "s", config=CONFIG, kill_switch=switch
            )
            with pytest.raises(SimulatedKill):
                crashed.run()
        orphan = (tmp_path / "s" / "ckpt_epoch_00001.npz").read_bytes()
        with WriteAheadLog(tmp_path / "wal", WalConfig(fsync="batch")) as wal:
            resumed = StreamIngestor.resume(wal, model, tmp_path / "s", config=CONFIG)
            reports = resumed.run()
        assert reports[0].batch_index == 1  # replays the uncommitted batch
        assert (tmp_path / "s" / "ckpt_epoch_00001.npz").read_bytes() == orphan
