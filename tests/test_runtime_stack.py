"""End-to-end drill of the self-healing runtime stack.

One :class:`RuntimeStack` (real HTTP edge on an ephemeral port, real
WAL, real scrubber) lives through the whole failure menu in a single
lifecycle test: component kills with supervised restarts, bit rot with
mirrored repair, ordered drain, and a snapshot → wipe → restore
round-trip that must land on bitwise-identical factors.  A second,
smaller stack exercises the quarantine → degraded-service path.
"""

from __future__ import annotations

import http.client
import json
import shutil
import time

import numpy as np

from repro.data.interactions import InteractionMatrix
from repro.edge import EdgeConfig
from repro.mf.sgd import SGDConfig
from repro.models import BPR
from repro.resilience.chaos import ProcessFaultInjector, flip_bits
from repro.runtime import (
    QUARANTINED,
    RUNNING,
    RuntimeStack,
    StackConfig,
    SupervisorConfig,
)
from repro.serving import RecommendationService, ServiceConfig, ThreadedExecutor
from repro.streaming import StreamIngestor, WriteAheadLog
from repro.streaming.ingest import IngestConfig, synthesize_records

#: 30x40 synthetic matrix: sparse enough that synthesized feedback still
#: finds unseen items (the 4x6 tiny matrix is too dense for that).
N_USERS, N_ITEMS = 30, 40
RNG = np.random.default_rng(7)
PAIRS = sorted(
    {
        (int(u), int(i))
        for u, i in zip(RNG.integers(0, N_USERS, 120), RNG.integers(0, N_ITEMS, 120))
    }
)


def http_json(host, port, method, path, payload=None, *, timeout=10.0):
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body is not None else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def fresh_model():
    matrix = InteractionMatrix.from_pairs(PAIRS, n_users=N_USERS, n_items=N_ITEMS)
    return matrix, BPR(n_factors=4, sgd=SGDConfig(n_epochs=1), seed=0).fit(matrix)


def build_stack(data_dir, faults, **supervisor_overrides):
    matrix, model = fresh_model()
    _, serve_model = fresh_model()
    service = RecommendationService.build(
        serve_model,
        matrix,
        config=ServiceConfig(default_deadline_ms=250.0),
        executor=ThreadedExecutor(max_workers=2),
    )
    settings = dict(backoff_base_s=0.05, backoff_max_s=0.2)
    settings.update(supervisor_overrides)
    return RuntimeStack(
        service,
        model,
        matrix,
        None,
        data_dir,
        edge_config=EdgeConfig(),
        ingest_config=IngestConfig(batch_records=8),
        supervisor_config=SupervisorConfig(**settings),
        stack_config=StackConfig(),
        faults=faults,
    )


def poll_until(stack, predicate, *, timeout=15.0, what="condition"):
    deadline = time.monotonic() + timeout  # repro: allow(REP002) — live-stack wait
    while time.monotonic() < deadline:  # repro: allow(REP002) — live-stack wait
        stack.poll()
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}; status={stack.status()}")


def post_feedback(host, port, records):
    for record in records:
        status, body = http_json(
            host,
            port,
            "POST",
            "/v1/feedback",
            {
                "user": record.user,
                "items": list(record.items),
                "key": record.key,
                "ts": record.ts,
            },
        )
        assert status == 200, (status, body)


def test_self_healing_lifecycle(tmp_path):
    faults = ProcessFaultInjector()
    data_dir = tmp_path / "data"
    stack = build_stack(data_dir, faults)
    host, port = stack.start()
    try:
        status, body = http_json(host, port, "GET", "/v1/ready")
        assert status == 200 and body["status"] == "ready"

        # Feedback flows edge -> WAL -> ingest batches.
        records = synthesize_records(20, n_users=N_USERS, n_items=N_ITEMS, seed=1)
        post_feedback(host, port, records[:10])
        poll_until(stack, lambda: stack.batches_total() > 0, what="first batch")

        # SIGKILL-equivalent on the ingestor: supervised restart.
        faults.kill("ingest")
        poll_until(
            stack,
            lambda: (
                stack.supervisor.component("ingest").restarts > 0
                and stack.supervisor.states()["ingest"] == RUNNING
            ),
            what="ingest restart",
        )

        # Kill the edge: a fresh incarnation rebinds the SAME port.
        faults.kill("edge")
        poll_until(
            stack,
            lambda: (
                stack.supervisor.component("edge").restarts > 0
                and stack.supervisor.states()["edge"] == RUNNING
            ),
            what="edge restart",
        )
        deadline = time.monotonic() + 10.0  # repro: allow(REP002) — live-socket wait
        while True:
            try:
                status, body = http_json(host, port, "GET", "/v1/health")
                break
            except OSError:
                assert time.monotonic() < deadline, "edge never came back"  # repro: allow(REP002) — live-socket wait
                time.sleep(0.05)
        assert status == 200

        # Bit rot in a checkpoint blob: the scrubber repairs from the
        # mirror (wait for a baseline pass before maiming it).
        poll_until(
            stack,
            lambda: (data_dir / "mirror" / "state").is_dir()
            and any((data_dir / "mirror" / "state").glob("*.npz")),
            what="scrub baseline",
        )
        blobs = sorted((data_dir / "state").glob("*.npz"))
        mirrored = [
            blob
            for blob in blobs
            if (data_dir / "mirror" / "state" / blob.name).exists()
        ]
        assert mirrored, f"no mirrored checkpoint yet among {blobs}"
        assert flip_bits(mirrored[0], [100]) == 1
        poll_until(
            stack,
            lambda: stack.scrub_totals().repaired_primary > 0,
            what="scrub repair",
        )

        # More traffic, then let the ingestor catch up fully.
        post_feedback(host, port, records[10:])
        poll_until(stack, stack.caught_up, what="ingest catch-up")
    finally:
        report = stack.drain()
    assert report["stragglers"] == []
    # Drain walks reverse start order, edge last: in-flight work settles
    # before the listener goes away.
    assert report["order"] == ["scrub", "reload", "retrain", "ingest", "edge"]

    checksum = stack.factors_checksum()

    # Snapshot, wipe the live directories, restore, replay: the rebuilt
    # serving state must be bitwise identical.
    manifest = stack.snapshot(tag="drill")
    assert manifest.snapshot_id == "drill-000000"
    shutil.rmtree(data_dir / "wal")
    shutil.rmtree(data_dir / "state")
    restore = stack.restore(manifest.snapshot_id, wipe=True)
    assert restore.ok, restore.problems

    _, replay_model = fresh_model()
    with WriteAheadLog(data_dir / "wal") as wal:
        ingestor = StreamIngestor.resume(
            wal, replay_model, data_dir / "state", config=IngestConfig(batch_records=8)
        )
        ingestor.run()
        assert ingestor.factors_checksum() == checksum
    stack.close()


def test_crash_loop_quarantines_and_degrades_the_service(tmp_path):
    faults = ProcessFaultInjector()
    stack = build_stack(
        tmp_path / "data", faults, max_restarts=1, crash_window_s=30.0
    )
    host, port = stack.start()
    try:
        assert not stack.service.degraded_mode()
        faults.kill("retrain", times=10)  # every incarnation dies
        poll_until(
            stack,
            lambda: stack.supervisor.states()["retrain"] == QUARANTINED,
            what="retrain quarantine",
        )
        # Quarantine of a fallback-path component degrades the serving
        # tier instead of killing the process...
        assert stack.service.degraded_mode()
        # ...and the stack stays alive and routable: retrain is not a
        # critical component, so readiness holds while degraded.
        status, body = http_json(host, port, "GET", "/v1/ready")
        assert status == 200
        assert body["components"]["retrain"] == QUARANTINED
        status, _ = http_json(host, port, "GET", "/v1/health")
        assert status == 200
    finally:
        stack.drain()
        stack.close()
    assert stack.supervisor.states()["retrain"] == QUARANTINED
