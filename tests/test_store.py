"""The sharded mmap factor store: round-trips, quarantine, dtype policy.

The properties the scale ladder rests on:

* a store written under the ``float64`` protocol policy reads back
  **bitwise** equal to the in-memory factors it came from — row gathers
  and full score matrices alike, across shard boundaries;
* corruption of one user shard quarantines exactly that shard
  (:class:`ShardError` carrying the index) while every other shard and
  the item side keep serving; corrupt item files are fatal;
* the dtype policy is explicit: float32 stores stay float32 end to end
  (no silent upcast through the generic scoring adapters), and only the
  two policy dtypes are accepted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.interactions import InteractionMatrix
from repro.metrics import scoring
from repro.mf.params import FactorParams
from repro.store import (
    PROTOCOL_DTYPE,
    SERVING_DTYPE,
    FactorStoreWriter,
    ShardedFactorStore,
    StoreBackedModel,
    resolve_dtype,
    resolve_scoring_dtype,
    write_factor_store,
)
from repro.store.shards import MANIFEST_NAME, shard_file_name
from repro.utils.exceptions import ConfigError, ServingError, ShardError, StoreError


def make_params(n_users=50, n_items=30, d=6, seed=0) -> FactorParams:
    rng = np.random.default_rng(seed)
    return FactorParams(
        user_factors=rng.normal(size=(n_users, d)),
        item_factors=rng.normal(size=(n_items, d)),
        item_bias=rng.normal(size=n_items),
    )


@pytest.fixture
def params() -> FactorParams:
    return make_params()


def open_store(tmp_path, params, *, dtype="float64", shard_size=16):
    write_factor_store(tmp_path, params, dtype=dtype, shard_size=shard_size)
    return ShardedFactorStore.open(tmp_path)


class TestRoundTrip:
    def test_float64_rows_bitwise_across_shard_boundaries(self, tmp_path, params):
        store = open_store(tmp_path, params, shard_size=16)
        # 50 users / shard_size 16 -> shards of 16/16/16/2; pick users
        # straddling every boundary, in scrambled order.
        users = np.array([0, 15, 16, 31, 32, 47, 48, 49, 5, 33], dtype=np.int64)
        rows = store.user_rows(users)
        assert rows.dtype == np.float64
        assert np.array_equal(rows, params.user_factors[users])

    def test_float64_predict_batch_bitwise_equals_dense(self, tmp_path, params):
        store = open_store(tmp_path, params)
        users = np.arange(store.n_users, dtype=np.int64)
        dense = scoring.linear_scores(
            params.user_factors, params.item_factors, params.item_bias
        )
        assert np.array_equal(store.predict_batch(users), dense)

    def test_as_params_round_trips(self, tmp_path, params):
        store = open_store(tmp_path, params)
        back = store.as_params()
        assert np.array_equal(back.user_factors, params.user_factors)
        assert np.array_equal(back.item_factors, params.item_factors)
        assert np.array_equal(back.item_bias, params.item_bias)

    def test_float32_store_stays_float32(self, tmp_path, params):
        store = open_store(tmp_path, params, dtype="float32")
        rows = store.user_rows([0, 20, 49])
        scores = store.predict_batch([0, 20, 49])
        assert rows.dtype == np.float32
        assert scores.dtype == np.float32
        assert np.array_equal(
            rows, params.user_factors[[0, 20, 49]].astype(np.float32)
        )

    def test_streaming_writer_equals_one_shot_writer(self, tmp_path, params):
        # Rows fed in ragged chunks must land identically to the bulk path.
        writer = FactorStoreWriter(
            tmp_path / "streamed", params.n_factors, dtype="float64", shard_size=16
        )
        cursor = 0
        for chunk in (7, 1, 25, 17):
            writer.add_users(params.user_factors[cursor : cursor + chunk])
            cursor += chunk
        writer.set_items(params.item_factors, params.item_bias)
        writer.finalize()
        streamed = ShardedFactorStore.open(tmp_path / "streamed")
        assert streamed.n_users == params.n_users
        assert np.array_equal(
            streamed.user_rows(np.arange(params.n_users)), params.user_factors
        )

    def test_empty_gather(self, tmp_path, params):
        store = open_store(tmp_path, params)
        assert store.user_rows([]).shape == (0, params.n_factors)


class TestIntegrity:
    def corrupt(self, path):
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_corrupt_shard_quarantined_others_serve(self, tmp_path, params):
        store = open_store(tmp_path, params, shard_size=16)
        self.corrupt(tmp_path / shard_file_name(1))
        assert store.verify_shards() == {1: "sha256 mismatch (bit rot or torn write)"}
        with pytest.raises(ShardError) as err:
            store.user_rows([20])  # shard 1 owns users 16..31
        assert err.value.shard == 1
        # Every other shard still serves, bitwise.
        users = np.array([0, 15, 32, 49], dtype=np.int64)
        assert np.array_equal(store.user_rows(users), params.user_factors[users])

    def test_repaired_shard_released_on_reverify(self, tmp_path, params):
        store = open_store(tmp_path, params, shard_size=16)
        original = (tmp_path / shard_file_name(1)).read_bytes()
        self.corrupt(tmp_path / shard_file_name(1))
        store.verify_shards()
        assert 1 in store.quarantined_
        (tmp_path / shard_file_name(1)).write_bytes(original)
        assert store.verify_shards() == {}
        assert np.array_equal(store.user_rows([20]), params.user_factors[[20]])

    def test_missing_shard_quarantined(self, tmp_path, params):
        store = open_store(tmp_path, params, shard_size=16)
        (tmp_path / shard_file_name(2)).unlink()
        assert store.verify_shards() == {2: "shard file missing"}

    def test_corrupt_item_file_is_fatal(self, tmp_path, params):
        write_factor_store(tmp_path, params, dtype="float64", shard_size=16)
        self.corrupt(tmp_path / "item_factors.npy")
        with pytest.raises(StoreError):
            ShardedFactorStore.open(tmp_path)

    def test_missing_manifest_rejected(self, tmp_path, params):
        write_factor_store(tmp_path, params, dtype="float64", shard_size=16)
        (tmp_path / MANIFEST_NAME).unlink()
        with pytest.raises(StoreError):
            ShardedFactorStore.open(tmp_path)

    def test_out_of_range_user_raises(self, tmp_path, params):
        store = open_store(tmp_path, params)
        with pytest.raises(ShardError):
            store.user_rows([params.n_users])


class TestDtypePolicy:
    def test_only_policy_dtypes_accepted(self):
        assert resolve_dtype(SERVING_DTYPE) == np.float32
        assert resolve_dtype(PROTOCOL_DTYPE) == np.float64
        with pytest.raises(ConfigError):
            resolve_dtype("float16")

    def test_resolve_scoring_dtype_defaults_to_protocol(self):
        class Plain:
            pass

        assert resolve_scoring_dtype(Plain()) == np.float64

    def test_stacking_adapter_honors_model_dtype(self):
        # The generic per-user stacking path used to upcast every model
        # to float64 unconditionally; models now advertise their policy.
        class Float32Model:
            scoring_dtype = np.float32

            def predict_user(self, user):
                return np.ones(4, dtype=np.float32) * user

        scorer = scoring.as_batch_scorer(Float32Model())
        scores = scorer(np.array([1, 2], dtype=np.int64))
        assert scores.dtype == np.float32
        assert np.array_equal(scores, np.array([[1.0] * 4, [2.0] * 4], np.float32))


class TestStoreBackedModel:
    def make(self, tmp_path, params, *, dtype="float64"):
        rng = np.random.default_rng(3)
        pairs = sorted(
            {(u, int(rng.integers(params.n_items))) for u in range(params.n_users)}
        )
        train = InteractionMatrix.from_pairs(
            pairs, n_users=params.n_users, n_items=params.n_items
        )
        store = open_store(tmp_path, params, dtype=dtype)
        return StoreBackedModel(store, train, version="t"), train

    def test_predict_matches_dense(self, tmp_path, params):
        model, _ = self.make(tmp_path, params)
        dense = scoring.linear_scores(
            params.user_factors[[4, 40]], params.item_factors, params.item_bias
        )
        assert np.array_equal(model.predict_batch([4, 40]), dense)
        assert np.array_equal(model.predict_user(4), dense[0])

    def test_shard_topology_exposed(self, tmp_path, params):
        model, _ = self.make(tmp_path, params)
        assert model.n_shards == 4
        assert model.shard_of(0) == 0
        assert model.shard_of(17) == 1
        assert model.shard_of(params.n_users + 5) is None

    def test_serve_only(self, tmp_path, params):
        model, train = self.make(tmp_path, params)
        with pytest.raises(ServingError):
            model.fit(train)

    def test_params_view_is_item_side_only(self, tmp_path, params):
        model, _ = self.make(tmp_path, params)
        assert model.params_.user_factors.shape == (0, params.n_factors)
        assert np.array_equal(model.params_.item_factors, params.item_factors)

    def test_scoring_dtype_follows_store(self, tmp_path, params):
        model, _ = self.make(tmp_path, params, dtype="float32")
        assert model.scoring_dtype == np.float32
