"""Tests of the analysis subpackage (significance, stats, convergence)."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    area_under_learning_curve,
    epochs_to_fraction_of_final,
    relative_speedup,
)
from repro.analysis.significance import compare_models, paired_comparison
from repro.analysis.stats import (
    dataset_report,
    gini_coefficient,
    popularity_skew,
    user_activity_quantiles,
)
from repro.data.interactions import InteractionMatrix
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.utils.exceptions import ConfigError, DataError


class TestSignificance:
    def test_clear_difference_detected(self, rng):
        a = rng.normal(0.5, 0.05, size=200)
        b = rng.normal(0.3, 0.05, size=200)
        result = paired_comparison(a, b, metric="ndcg@5")
        assert result.mean_difference > 0.15
        assert result.significant(0.01)
        assert result.wilcoxon_pvalue < 0.01
        assert "ndcg@5" in result.summary()

    def test_identical_arrays_not_significant(self):
        values = np.full(50, 0.4)
        result = paired_comparison(values, values)
        assert not result.significant()
        assert result.t_pvalue == 1.0
        assert np.isnan(result.wilcoxon_pvalue)

    def test_noise_not_significant(self, rng):
        a = rng.normal(0.5, 0.1, size=40)
        b = a + rng.normal(0.0, 1e-3, size=40)
        result = paired_comparison(a, b)
        assert abs(result.mean_difference) < 0.01

    def test_shape_validation(self):
        with pytest.raises(DataError):
            paired_comparison(np.zeros(3), np.zeros(4))
        with pytest.raises(DataError):
            paired_comparison(np.zeros(1), np.zeros(1))

    def test_compare_models_end_to_end(self, learnable_split):
        from repro.models.poprank import PopRank

        class Oracle:
            def predict_user(self, user):
                scores = np.zeros(learnable_split.n_items)
                scores[learnable_split.test.positives(user)] = 1.0
                return scores

        pop = PopRank().fit(learnable_split.train)
        comparisons = compare_models(Oracle(), pop, learnable_split, metrics=("ndcg@5", "map"))
        assert comparisons["ndcg@5"].mean_difference > 0
        assert comparisons["ndcg@5"].significant(0.01)

    def test_compare_models_unknown_metric(self, learnable_split):
        from repro.models.poprank import PopRank

        pop = PopRank().fit(learnable_split.train)
        with pytest.raises(ConfigError):
            compare_models(pop, pop, learnable_split, metrics=("made-up",))


class TestDatasetStats:
    def test_gini_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_near_one(self):
        counts = np.zeros(1000)
        counts[0] = 500
        assert gini_coefficient(counts) > 0.99

    def test_gini_rejects_bad_input(self):
        with pytest.raises(DataError):
            gini_coefficient(np.array([]))
        with pytest.raises(DataError):
            gini_coefficient(np.array([-1, 2]))

    def test_gini_zero_counts(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_popularity_skew_long_tail(self):
        config = SyntheticConfig(
            n_users=300, n_items=200, density=0.05,
            popularity_exponent=1.2, signal=0.0, popularity_weight=3.0,
        )
        dataset = generate_synthetic(config, seed=0)
        assert popularity_skew(dataset.interactions) > 0.25

    def test_popularity_skew_empty(self):
        assert popularity_skew(InteractionMatrix.empty(3, 5)) == 0.0

    def test_activity_quantiles_sorted(self, tiny_matrix):
        quantiles = user_activity_quantiles(tiny_matrix, (0.25, 0.75))
        assert quantiles[0.25] <= quantiles[0.75]

    def test_dataset_report_keys(self, tiny_matrix):
        report = dataset_report(tiny_matrix)
        assert report["n_users"] == 4
        assert report["cold_items"] == 1  # item 4 is never observed
        assert 0.0 <= report["item_gini"] <= 1.0


class TestConvergence:
    def test_area_is_mean(self):
        assert area_under_learning_curve([0.1, 0.2, 0.3]) == pytest.approx(0.2)

    def test_epochs_to_fraction(self):
        trace = [0.0, 0.05, 0.2, 0.25, 0.26]
        assert epochs_to_fraction_of_final(trace, 0.9) == 3  # 0.9 * 0.26 = 0.234

    def test_epochs_to_fraction_never_reached(self):
        # Final value is the max, so fraction=1.0 is reached at the end.
        assert epochs_to_fraction_of_final([0.1, 0.3], 1.0) == 1
        # A collapsing trace never reaches 100% of a value above its final.
        assert epochs_to_fraction_of_final([0.0, 0.0, 0.0], 0.5) == 0

    def test_relative_speedup(self):
        fast = [0.0, 0.25, 0.26, 0.26]
        slow = [0.0, 0.05, 0.15, 0.26]
        speedup = relative_speedup(fast, slow, fraction=0.9)
        assert speedup == pytest.approx(4 / 2)

    def test_relative_speedup_unreachable(self):
        # Negative-valued traces can have a target above every point.
        assert relative_speedup([-1.0, -1.0], [-1.0, -1.0], fraction=0.9) is None

    def test_empty_trace_rejected(self):
        with pytest.raises(DataError):
            area_under_learning_curve([])
