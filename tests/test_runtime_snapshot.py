"""Snapshot bundles: create, verify, restore, and crash-marker hygiene."""

from __future__ import annotations

import json

import pytest

from repro.runtime import (
    create_snapshot,
    list_snapshots,
    load_manifest,
    restore_marker_present,
    restore_snapshot,
    verify_snapshot,
)
from repro.runtime.snapshot import MANIFEST_NAME, RESTORE_MARKER
from repro.utils.exceptions import DataError


@pytest.fixture
def layout(tmp_path):
    wal = tmp_path / "wal"
    state = tmp_path / "state"
    wal.mkdir()
    state.mkdir()
    (wal / "segment_0.wal").write_bytes(b"wal bytes")
    (state / "ckpt.npz").write_bytes(b"checkpoint bytes")
    (state / "offset.json").write_text(json.dumps({"offset": 7}))
    return {
        "root": tmp_path / "snapshots",
        "sources": {"wal": wal, "state": state},
    }


def file_contents(directory):
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.iterdir())
        if path.is_file()
    }


class TestCreate:
    def test_ids_are_sequential_per_tag(self, layout):
        first = create_snapshot(layout["root"], layout["sources"], tag="drill")
        second = create_snapshot(layout["root"], layout["sources"], tag="drill")
        assert first.snapshot_id == "drill-000000"
        assert second.snapshot_id == "drill-000001"
        assert list_snapshots(layout["root"]) == ["drill-000000", "drill-000001"]

    def test_manifest_records_every_file_with_hashes(self, layout):
        manifest = create_snapshot(layout["root"], layout["sources"])
        assert sorted(manifest.files) == [
            "state/ckpt.npz", "state/offset.json", "wal/segment_0.wal",
        ]
        for entry in manifest.files.values():
            assert set(entry) == {"sha256", "size"}
        reloaded = load_manifest(layout["root"], manifest.snapshot_id)
        assert reloaded.files == manifest.files

    def test_empty_sources_rejected(self, layout):
        with pytest.raises(DataError):
            create_snapshot(layout["root"], {})

    def test_restore_marker_is_never_bundled(self, layout):
        marker = layout["sources"]["state"] / RESTORE_MARKER
        marker.write_bytes(b"")
        manifest = create_snapshot(layout["root"], layout["sources"])
        assert not any(RESTORE_MARKER in name for name in manifest.files)

    def test_bundle_without_manifest_is_invisible(self, layout):
        manifest = create_snapshot(layout["root"], layout["sources"])
        bundle = layout["root"] / manifest.snapshot_id
        (bundle / MANIFEST_NAME).unlink()  # crash before the final write
        assert list_snapshots(layout["root"]) == []
        # A rerun does not collide with the orphaned bundle's files.
        again = create_snapshot(layout["root"], layout["sources"])
        assert verify_snapshot(layout["root"], again.snapshot_id) == []


class TestVerify:
    def test_clean_bundle_verifies(self, layout):
        manifest = create_snapshot(layout["root"], layout["sources"])
        assert verify_snapshot(layout["root"], manifest.snapshot_id) == []

    def test_rot_inside_the_bundle_is_reported(self, layout):
        manifest = create_snapshot(layout["root"], layout["sources"])
        bundle = layout["root"] / manifest.snapshot_id
        (bundle / "state" / "ckpt.npz").write_bytes(b"rotted checkpoint!!!!")
        problems = verify_snapshot(layout["root"], manifest.snapshot_id)
        assert problems and "state/ckpt.npz" in problems[0]


class TestRestore:
    def test_wipe_restore_is_bitwise_identical(self, layout):
        before = {
            name: file_contents(path) for name, path in layout["sources"].items()
        }
        manifest = create_snapshot(layout["root"], layout["sources"])
        state = layout["sources"]["state"]
        (state / "ckpt.npz").write_bytes(b"post-snapshot divergence")
        (state / "stray.tmp").write_bytes(b"not in the bundle")

        report = restore_snapshot(
            layout["root"], manifest.snapshot_id, layout["sources"], wipe=True
        )
        assert report.ok
        assert report.files_restored == 3
        assert report.files_removed >= 2  # diverged ckpt + stray
        for name, path in layout["sources"].items():
            assert file_contents(path) == before[name]
        assert not restore_marker_present(state)

    def test_overlay_restore_keeps_extra_files(self, layout):
        manifest = create_snapshot(layout["root"], layout["sources"])
        state = layout["sources"]["state"]
        (state / "extra.json").write_text("{}")
        report = restore_snapshot(
            layout["root"], manifest.snapshot_id, layout["sources"], wipe=False
        )
        assert report.ok
        assert (state / "extra.json").exists()

    def test_single_target_restore(self, layout):
        manifest = create_snapshot(layout["root"], layout["sources"])
        state = layout["sources"]["state"]
        original = file_contents(state)
        for path in state.iterdir():
            path.unlink()
        report = restore_snapshot(
            layout["root"], manifest.snapshot_id, {"state": state}, wipe=True
        )
        assert report.ok
        assert file_contents(state) == original

    def test_rotted_bundle_is_rejected_before_any_write(self, layout):
        manifest = create_snapshot(layout["root"], layout["sources"])
        bundle = layout["root"] / manifest.snapshot_id
        (bundle / "wal" / "segment_0.wal").write_bytes(b"bundle rot")
        state = layout["sources"]["state"]
        untouched = file_contents(state)
        report = restore_snapshot(
            layout["root"], manifest.snapshot_id, layout["sources"], wipe=True
        )
        assert not report.ok
        assert any("failed verification" in problem for problem in report.problems)
        assert report.files_restored == 0
        assert file_contents(state) == untouched  # verify-first: no wipe happened

    def test_unknown_target_name_is_rejected(self, layout, tmp_path):
        manifest = create_snapshot(layout["root"], layout["sources"])
        report = restore_snapshot(
            layout["root"], manifest.snapshot_id, {"bogus": tmp_path / "bogus"}
        )
        assert not report.ok

    def test_restore_is_idempotent(self, layout):
        manifest = create_snapshot(layout["root"], layout["sources"])
        first = restore_snapshot(
            layout["root"], manifest.snapshot_id, layout["sources"], wipe=True
        )
        second = restore_snapshot(
            layout["root"], manifest.snapshot_id, layout["sources"], wipe=True
        )
        assert first.ok and second.ok
        assert second.files_restored == first.files_restored
