"""Tests of the CLAPF core model and its CLAPF-NDCG extension."""

import numpy as np
import pytest

from repro.core.clapf import CLAPF, clapf_map, clapf_mrr, clapf_plus_map, clapf_plus_mrr
from repro.core.extensions import CLAPFNDCG
from repro.metrics.evaluator import evaluate_model
from repro.mf.sgd import RegularizationConfig, SGDConfig
from repro.models.bpr import BPR
from repro.models.poprank import PopRank
from repro.sampling.base import TupleBatch
from repro.sampling.dss import DoubleSampler
from repro.utils.exceptions import ConfigError

FAST_SGD = SGDConfig(n_epochs=25, learning_rate=0.08)
# The fused objective splits each update across two pairs, so clearing
# the popularity baseline takes a longer schedule than plain BPR.
LONG_SGD = SGDConfig(n_epochs=60, learning_rate=0.08)


class TestConstruction:
    def test_invalid_metric(self):
        with pytest.raises(ConfigError):
            CLAPF("auc")

    def test_invalid_tradeoff(self):
        with pytest.raises(ConfigError):
            CLAPF("map", tradeoff=-0.1)

    def test_names(self):
        assert clapf_map().name == "CLAPF-MAP"
        assert clapf_mrr().name == "CLAPF-MRR"
        assert clapf_plus_map().name == "CLAPF+-MAP"
        assert clapf_plus_mrr().name == "CLAPF+-MRR"

    def test_plus_variants_use_dss(self):
        assert isinstance(clapf_plus_map().sampler, DoubleSampler)
        assert clapf_plus_map().sampler.mode == "map"
        assert clapf_plus_mrr().sampler.mode == "mrr"


class TestTupleTerms:
    def test_map_coefficients_order(self):
        model = CLAPF("map", tradeoff=0.4)
        batch = TupleBatch(
            users=np.array([0]), pos_i=np.array([1]), pos_k=np.array([2]), neg_j=np.array([3])
        )
        items, coefficients = model._tuple_terms(batch)
        assert items[0].tolist() == [1, 2, 3]  # i, k, j
        assert coefficients.tolist() == pytest.approx([1 - 0.8, 0.4, -0.6])

    def test_mrr_coefficients_order(self):
        model = CLAPF("mrr", tradeoff=0.2)
        batch = TupleBatch(
            users=np.array([0]), pos_i=np.array([1]), pos_k=np.array([2]), neg_j=np.array([3])
        )
        items, coefficients = model._tuple_terms(batch)
        assert items[0].tolist() == [1, 2, 3]
        assert coefficients.tolist() == pytest.approx([1.0, -0.2, -0.8])


class TestLambdaZeroReduction:
    def test_lambda_zero_equals_bpr_exactly(self, learnable_split):
        """Section 6.4.2: 'when lambda = 0, CLAPF reduces to BPR'.

        With zero regularization the parameter trajectories coincide
        exactly (the k item's coefficient is 0, so it gets no update).
        """
        no_reg = RegularizationConfig.uniform(0.0)
        sgd = SGDConfig(n_epochs=3, learning_rate=0.05)
        clapf = CLAPF("map", tradeoff=0.0, sgd=sgd, reg=no_reg, seed=3)
        bpr = BPR(sgd=sgd, reg=no_reg, seed=3)
        clapf.fit(learnable_split.train)
        bpr.fit(learnable_split.train)
        assert np.allclose(clapf.params_.user_factors, bpr.params_.user_factors)
        assert np.allclose(clapf.params_.item_factors, bpr.params_.item_factors)
        assert np.allclose(clapf.params_.item_bias, bpr.params_.item_bias)

    def test_mrr_lambda_zero_also_reduces(self, learnable_split):
        no_reg = RegularizationConfig.uniform(0.0)
        sgd = SGDConfig(n_epochs=2, learning_rate=0.05)
        clapf = CLAPF("mrr", tradeoff=0.0, sgd=sgd, reg=no_reg, seed=3)
        bpr = BPR(sgd=sgd, reg=no_reg, seed=3)
        clapf.fit(learnable_split.train)
        bpr.fit(learnable_split.train)
        assert np.allclose(clapf.params_.user_factors, bpr.params_.user_factors)


class TestTraining:
    @pytest.mark.parametrize("metric", ["map", "mrr"])
    def test_loss_decreases(self, metric, learnable_split):
        model = CLAPF(metric, tradeoff=0.3, sgd=FAST_SGD, seed=0)
        model.fit(learnable_split.train)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_beats_popularity(self, learnable_split):
        model = clapf_map(0.4, sgd=LONG_SGD, seed=0).fit(learnable_split.train)
        pop = PopRank().fit(learnable_split.train)
        model_result = evaluate_model(model, learnable_split)
        pop_result = evaluate_model(pop, learnable_split)
        assert model_result["auc"] > pop_result["auc"]
        assert model_result["ndcg@5"] > pop_result["ndcg@5"]

    def test_dss_variant_trains(self, learnable_split):
        model = clapf_plus_map(0.4, sgd=FAST_SGD, seed=0).fit(learnable_split.train)
        assert evaluate_model(model, learnable_split)["auc"] > 0.5

    def test_epoch_callback_invoked(self, learnable_split):
        epochs = []
        model = CLAPF(
            "map",
            sgd=SGDConfig(n_epochs=4),
            seed=0,
            epoch_callback=lambda m, e: epochs.append(e),
        )
        model.fit(learnable_split.train)
        assert epochs == [0, 1, 2, 3]

    def test_deterministic_given_seed(self, learnable_split):
        sgd = SGDConfig(n_epochs=3)
        a = CLAPF("map", sgd=sgd, seed=11).fit(learnable_split.train)
        b = CLAPF("map", sgd=sgd, seed=11).fit(learnable_split.train)
        assert np.array_equal(a.params_.user_factors, b.params_.user_factors)

    def test_recommend_returns_unobserved_topk(self, learnable_split):
        model = clapf_map(0.4, sgd=SGDConfig(n_epochs=3), seed=0).fit(learnable_split.train)
        recs = model.recommend(0, k=10)
        assert len(recs) == 10
        for item in recs:
            assert not learnable_split.train.contains(0, int(item))


class TestCLAPFNDCG:
    def test_invalid_tradeoff(self):
        with pytest.raises(ConfigError):
            CLAPFNDCG(tradeoff=2.0)

    def test_name(self):
        assert CLAPFNDCG().name == "CLAPF-NDCG"
        assert CLAPFNDCG(sampler=DoubleSampler("map")).name == "CLAPF+-NDCG"

    def test_coefficients_weighted_by_discount_gap(self, learnable_split):
        model = CLAPFNDCG(tradeoff=0.5, n_factors=4, seed=0)
        model.fit(learnable_split.train)
        batch = model.sampler.sample(64, np.random.default_rng(0))
        items, coefficients = model._tuple_terms(batch)
        assert coefficients.shape == (64, 3)
        # Pairwise part is constant, listwise weight varies per tuple.
        assert np.allclose(coefficients[:, 2], -0.5)
        assert coefficients[:, 1].std() > 0

    def test_beats_popularity(self, learnable_split):
        model = CLAPFNDCG(tradeoff=0.4, sgd=LONG_SGD, seed=0).fit(learnable_split.train)
        pop = PopRank().fit(learnable_split.train)
        assert (
            evaluate_model(model, learnable_split)["auc"]
            > evaluate_model(pop, learnable_split)["auc"]
        )

    def test_lambda_zero_is_bpr_margin(self):
        model = CLAPFNDCG(tradeoff=0.0, n_factors=3, seed=0)
        from repro.data.interactions import InteractionMatrix

        train = InteractionMatrix.from_pairs([(0, 0), (0, 1), (1, 2)], 2, 4)
        model.fit(train)
        batch = TupleBatch(
            users=np.array([0]), pos_i=np.array([0]), pos_k=np.array([1]), neg_j=np.array([3])
        )
        _, coefficients = model._tuple_terms(batch)
        assert coefficients[0].tolist() == pytest.approx([1.0, 0.0, -1.0])
