"""Tests of the online simulation loop."""

import numpy as np
import pytest

from repro.data.interactions import InteractionMatrix
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.models.bpr import BPR
from repro.models.poprank import PopRank
from repro.mf.sgd import SGDConfig
from repro.simulation.feedback import FeedbackSimulator
from repro.simulation.loop import OnlineLoop
from repro.utils.exceptions import ConfigError, DataError


@pytest.fixture(scope="module")
def world():
    config = SyntheticConfig(
        n_users=80, n_items=150, density=0.05, latent_dim=3,
        signal=10.0, popularity_weight=0.3,
    )
    dataset, truth = generate_synthetic(config, seed=6, return_ground_truth=True)
    return dataset, truth


class TestFeedbackSimulator:
    def test_probabilities_in_unit_interval(self, world):
        _, truth = world
        simulator = FeedbackSimulator(truth, seed=0)
        probabilities = simulator.acceptance_probabilities(0, np.arange(10))
        assert np.all((0 <= probabilities) & (probabilities <= 1))

    def test_high_affinity_items_accepted_more(self, world):
        _, truth = world
        simulator = FeedbackSimulator(truth, seed=0)
        affinity = truth.affinity(0)
        best = np.argsort(-affinity)[:5]
        worst = np.argsort(affinity)[:5]
        assert (
            simulator.acceptance_probabilities(0, best).mean()
            > simulator.acceptance_probabilities(0, worst).mean()
        )

    def test_oracle_slate_is_top_affinity(self, world):
        _, truth = world
        simulator = FeedbackSimulator(truth, seed=0)
        slate = simulator.oracle_slate(3, 5)
        affinity = truth.affinity(3)
        assert set(slate.tolist()) == set(np.argsort(-affinity)[:5].tolist())

    def test_oracle_slate_respects_exclusions(self, world):
        _, truth = world
        simulator = FeedbackSimulator(truth, seed=0)
        excluded = simulator.oracle_slate(3, 3)
        slate = simulator.oracle_slate(3, 3, exclude=excluded)
        assert not set(slate.tolist()) & set(excluded.tolist())

    def test_invalid_quantile(self, world):
        _, truth = world
        with pytest.raises(DataError):
            FeedbackSimulator(truth, acceptance_quantile=1.0)

    def test_respond_reproducible(self, world):
        _, truth = world
        a = FeedbackSimulator(truth, seed=4).respond(0, np.arange(20))
        b = FeedbackSimulator(truth, seed=4).respond(0, np.arange(20))
        assert np.array_equal(a, b)


class TestOnlineLoop:
    def test_interactions_grow_monotonically(self, world):
        dataset, truth = world
        loop = OnlineLoop(
            lambda: BPR(n_factors=4, sgd=SGDConfig(n_epochs=5), seed=0),
            FeedbackSimulator(truth, seed=0),
            slate_size=3,
            seed=0,
        )
        result = loop.run(dataset.interactions, n_rounds=3)
        sizes = [entry.cumulative_interactions for entry in result.rounds]
        assert sizes == sorted(sizes)
        assert result.final_interactions.n_interactions >= dataset.n_interactions

    def test_never_reshows_consumed_items(self, world):
        dataset, truth = world
        accepted_twice = []

        class TrackingSimulator(FeedbackSimulator):
            def respond(self, user, items):
                for item in items:
                    if dataset.interactions.contains(int(user), int(item)):
                        accepted_twice.append((user, item))
                return super().respond(user, items)

        loop = OnlineLoop(
            lambda: PopRank(),
            TrackingSimulator(truth, seed=0),
            slate_size=3,
            seed=0,
        )
        loop.run(dataset.interactions, n_rounds=2)
        assert accepted_twice == []

    def test_better_model_earns_more_acceptances(self, world):
        dataset, truth = world
        simulator_args = dict(sharpness=8.0, acceptance_quantile=0.9)

        def run(factory):
            loop = OnlineLoop(
                factory,
                FeedbackSimulator(truth, seed=1, **simulator_args),
                slate_size=5,
                seed=1,
            )
            return loop.run(dataset.interactions, n_rounds=3).total_accepted()

        trained = run(lambda: BPR(n_factors=4, sgd=SGDConfig(n_epochs=40, learning_rate=0.08), seed=0))
        popularity = run(lambda: PopRank())
        assert trained > popularity

    def test_retrain_every_controls_refits(self, world):
        dataset, truth = world
        loop = OnlineLoop(
            lambda: PopRank(),
            FeedbackSimulator(truth, seed=0),
            slate_size=2,
            retrain_every=2,
            seed=0,
        )
        result = loop.run(dataset.interactions, n_rounds=4)
        assert [entry.retrained for entry in result.rounds] == [True, False, True, False]

    def test_oracle_rate_upper_bounds_policy(self, world):
        dataset, truth = world
        loop = OnlineLoop(
            lambda: PopRank(),
            FeedbackSimulator(truth, seed=0),
            slate_size=5,
            seed=0,
        )
        result = loop.run(dataset.interactions, n_rounds=2, measure_oracle=True)
        assert result.oracle_acceptance_rate >= max(result.acceptance_curve()) - 0.05

    def test_invalid_configuration(self, world):
        _, truth = world
        simulator = FeedbackSimulator(truth, seed=0)
        with pytest.raises(ConfigError):
            OnlineLoop(lambda: PopRank(), simulator, slate_size=0)
        with pytest.raises(ConfigError):
            OnlineLoop(lambda: PopRank(), simulator, retrain_every=0)
        loop = OnlineLoop(lambda: PopRank(), simulator)
        with pytest.raises(ConfigError):
            loop.run(InteractionMatrix.empty(2, 2), n_rounds=0)

    def test_users_per_round_subsamples(self, world):
        dataset, truth = world
        loop = OnlineLoop(
            lambda: PopRank(),
            FeedbackSimulator(truth, seed=0),
            slate_size=2,
            users_per_round=10,
            seed=0,
        )
        result = loop.run(dataset.interactions, n_rounds=1)
        assert result.rounds[0].shown <= 10 * 2
