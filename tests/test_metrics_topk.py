"""Unit and property tests for the top-k metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.topk import (
    f1_at_k,
    hits_at_k,
    ndcg_at_k,
    one_call_at_k,
    precision_at_k,
    recall_at_k,
    top_k_items,
)
from repro.utils.exceptions import ConfigError

RECOMMENDED = np.array([7, 3, 9, 1, 5])


class TestKnownValues:
    def test_precision(self):
        assert precision_at_k(RECOMMENDED, {7, 9}, 5) == pytest.approx(0.4)
        assert precision_at_k(RECOMMENDED, {7, 9}, 1) == pytest.approx(1.0)
        assert precision_at_k(RECOMMENDED, {2}, 5) == 0.0

    def test_recall(self):
        assert recall_at_k(RECOMMENDED, {7, 9, 2, 4}, 5) == pytest.approx(0.5)
        assert recall_at_k(RECOMMENDED, set(), 5) == 0.0

    def test_f1_harmonic_mean(self):
        precision = precision_at_k(RECOMMENDED, {7, 9}, 5)
        recall = recall_at_k(RECOMMENDED, {7, 9}, 5)
        expected = 2 * precision * recall / (precision + recall)
        assert f1_at_k(RECOMMENDED, {7, 9}, 5) == pytest.approx(expected)

    def test_f1_zero_when_no_hits(self):
        assert f1_at_k(RECOMMENDED, {2}, 5) == 0.0

    def test_one_call(self):
        assert one_call_at_k(RECOMMENDED, {5}, 5) == 1.0
        assert one_call_at_k(RECOMMENDED, {5}, 3) == 0.0

    def test_hits(self):
        assert hits_at_k(RECOMMENDED, {7, 9, 5}, 3) == 2

    def test_ndcg_perfect_ranking_is_one(self):
        assert ndcg_at_k(np.array([1, 2, 3]), {1, 2, 3}, 3) == pytest.approx(1.0)

    def test_ndcg_single_hit_positions(self):
        # hit at position p contributes 1/log2(p+1), ideal = 1.
        assert ndcg_at_k(np.array([9, 1]), {1}, 2) == pytest.approx(1 / np.log2(3))
        assert ndcg_at_k(np.array([1, 9]), {1}, 2) == pytest.approx(1.0)

    def test_ndcg_no_relevant(self):
        assert ndcg_at_k(RECOMMENDED, set(), 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            precision_at_k(RECOMMENDED, {1}, 0)


class TestTopKItems:
    def test_orders_by_score(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert top_k_items(scores, 3).tolist() == [1, 3, 2]

    def test_exclusion(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert top_k_items(scores, 2, exclude=np.array([1])).tolist() == [3, 2]

    def test_k_larger_than_items(self):
        scores = np.array([0.3, 0.1])
        assert top_k_items(scores, 10).tolist() == [0, 1]

    def test_does_not_mutate_scores(self):
        scores = np.array([0.1, 0.9])
        top_k_items(scores, 1, exclude=np.array([1]))
        assert scores[1] == 0.9


@st.composite
def ranking_case(draw):
    n_items = draw(st.integers(min_value=2, max_value=30))
    scores = draw(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=n_items, max_size=n_items,
        )
    )
    relevant = draw(st.sets(st.integers(0, n_items - 1), max_size=n_items))
    k = draw(st.integers(min_value=1, max_value=n_items))
    return np.array(scores), relevant, k


class TestProperties:
    @given(case=ranking_case())
    @settings(max_examples=80, deadline=None)
    def test_metrics_bounded(self, case):
        scores, relevant, k = case
        recommended = top_k_items(scores, k)
        for metric in (precision_at_k, recall_at_k, f1_at_k, one_call_at_k, ndcg_at_k):
            value = metric(recommended, relevant, k)
            assert 0.0 <= value <= 1.0

    @given(case=ranking_case())
    @settings(max_examples=80, deadline=None)
    def test_f1_between_min_and_max(self, case):
        """The harmonic mean lies between min and max of its arguments."""
        scores, relevant, k = case
        recommended = top_k_items(scores, k)
        precision = precision_at_k(recommended, relevant, k)
        recall = recall_at_k(recommended, relevant, k)
        f1 = f1_at_k(recommended, relevant, k)
        if f1 == 0.0:
            assert precision == 0.0 or recall == 0.0
        else:
            assert min(precision, recall) - 1e-12 <= f1 <= max(precision, recall) + 1e-12

    @given(case=ranking_case())
    @settings(max_examples=60, deadline=None)
    def test_recall_monotone_in_k(self, case):
        scores, relevant, _ = case
        recommended = top_k_items(scores, len(scores))
        recalls = [recall_at_k(recommended, relevant, k) for k in range(1, len(scores) + 1)]
        assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:]))

    @given(case=ranking_case())
    @settings(max_examples=60, deadline=None)
    def test_all_items_recommended_gives_full_recall(self, case):
        scores, relevant, _ = case
        if not relevant:
            return
        recommended = top_k_items(scores, len(scores))
        assert recall_at_k(recommended, relevant, len(scores)) == pytest.approx(1.0)


class TestTopKBoundaries:
    """Regression tests for the k-boundary discipline.

    ``k >= n_items`` used to fall through to a raw argpartition whose
    survivor order is unspecified for tied scores; the boundary now
    takes one stable full sort, so ties break by item id identically on
    every path (``top_k_items``, ``topk_from_matrix``, the rerank
    path).  ``k == 0`` / empty catalogs return empty rankings instead
    of partitioning past the end.
    """

    def test_matrix_k_zero_returns_empty(self):
        from repro.metrics.scoring import topk_from_matrix

        scores = np.random.default_rng(0).normal(size=(3, 5))
        top = topk_from_matrix(scores, 0)
        assert top.shape == (3, 0)
        assert top.dtype == np.int64

    def test_matrix_empty_catalog(self):
        from repro.metrics.scoring import topk_from_matrix

        top = topk_from_matrix(np.zeros((2, 0)), 4)
        assert top.shape == (2, 0)

    def test_matrix_negative_k_rejected(self):
        from repro.metrics.scoring import topk_from_matrix

        with pytest.raises(ConfigError):
            topk_from_matrix(np.zeros((1, 3)), -1)

    def test_matrix_k_clamped_to_catalog(self):
        from repro.metrics.scoring import topk_from_matrix

        scores = np.random.default_rng(1).normal(size=(4, 6))
        assert np.array_equal(
            topk_from_matrix(scores, 6), topk_from_matrix(scores, 99)
        )

    def test_matrix_ties_break_by_item_id_at_full_k(self):
        from repro.metrics.scoring import topk_from_matrix

        scores = np.array([[1.0, 1.0, 1.0, 1.0]])
        assert topk_from_matrix(scores, 4)[0].tolist() == [0, 1, 2, 3]
        # ...and the boundary agrees with the partition path below it.
        assert topk_from_matrix(scores, 3)[0].tolist() == [0, 1, 2]

    def test_top_k_items_ties_match_matrix_kernel(self):
        from repro.metrics.scoring import topk_from_matrix

        scores = np.array([2.0, 2.0, -np.inf, 2.0, 1.0])
        assert np.array_equal(
            top_k_items(scores, len(scores)),
            topk_from_matrix(scores[None, :], len(scores))[0],
        )

    def test_deterministic_across_calls(self):
        from repro.metrics.scoring import topk_from_matrix

        scores = np.random.default_rng(2).normal(size=(5, 8))
        scores[:, 3] = scores[:, 5]  # inject ties
        first = topk_from_matrix(scores, 8)
        for _ in range(3):
            assert np.array_equal(topk_from_matrix(scores, 8), first)
