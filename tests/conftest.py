"""Shared fixtures: small deterministic datasets and splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ImplicitDataset
from repro.data.interactions import InteractionMatrix
from repro.data.split import train_test_split
from repro.data.synthetic import SyntheticConfig, generate_synthetic


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_matrix() -> InteractionMatrix:
    """4 users x 6 items with a hand-checked pattern.

    user 0: items 0, 1, 2
    user 1: items 2, 3
    user 2: item 5
    user 3: (no interactions)
    """
    pairs = [(0, 0), (0, 1), (0, 2), (1, 2), (1, 3), (2, 5)]
    return InteractionMatrix.from_pairs(pairs, n_users=4, n_items=6)


@pytest.fixture(scope="session")
def learnable_dataset() -> ImplicitDataset:
    """A small dataset with strong latent structure (MF can learn it)."""
    config = SyntheticConfig(
        n_users=120,
        n_items=160,
        density=0.06,
        latent_dim=4,
        signal=10.0,
        popularity_weight=0.5,
        popularity_exponent=0.6,
    )
    return generate_synthetic(config, seed=7, name="learnable")


@pytest.fixture(scope="session")
def learnable_split(learnable_dataset):
    return train_test_split(learnable_dataset, seed=7)


@pytest.fixture(scope="session")
def medium_split():
    """A slightly larger split for integration/ordering tests."""
    config = SyntheticConfig(
        n_users=250,
        n_items=300,
        density=0.05,
        latent_dim=5,
        signal=9.0,
        popularity_weight=0.7,
    )
    dataset = generate_synthetic(config, seed=11, name="medium")
    return train_test_split(dataset, seed=11)
