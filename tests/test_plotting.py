"""Tests of the terminal plotting utilities."""

import pytest

from repro.utils.exceptions import DataError
from repro.utils.plotting import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_input_monotone_glyphs(self):
        glyphs = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert list(glyphs) == sorted(glyphs, key=" ▁▂▃▄▅▆▇█".index)

    def test_constant_series_renders(self):
        assert len(sparkline([5, 5, 5])) == 3

    def test_explicit_bounds_clip(self):
        out = sparkline([10.0], low=0.0, high=1.0)
        assert out == "█"

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            sparkline([])


class TestLineChart:
    def test_contains_legend_and_axis_labels(self):
        chart = line_chart(
            {"BPR": [0.1, 0.2, 0.3], "CLAPF": [0.15, 0.25, 0.35]},
            title="demo",
            x_labels=["ep1", "ep3"],
        )
        assert "demo" in chart
        assert "o BPR" in chart and "x CLAPF" in chart
        assert "ep1" in chart and "ep3" in chart

    def test_height_and_width_respected(self):
        chart = line_chart({"a": [0, 1]}, width=20, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert len(rows) == 5
        assert all(len(row.split("|")[1]) == 20 for row in rows)

    def test_single_point_series(self):
        assert "|" in line_chart({"a": [0.5]})

    def test_empty_series_rejected(self):
        with pytest.raises(DataError):
            line_chart({})
        with pytest.raises(DataError):
            line_chart({"a": []})

    def test_extremes_plotted_top_and_bottom(self):
        chart = line_chart({"a": [0.0, 1.0]}, width=10, height=4)
        rows = [line.split("|")[1] for line in chart.splitlines() if "|" in line]
        assert "o" in rows[0]  # max in top row
        assert "o" in rows[-1]  # min in bottom row


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        rows = chart.splitlines()
        assert rows[0].count("█") == 5
        assert rows[1].count("█") == 10

    def test_title_and_values_rendered(self):
        chart = bar_chart(["x"], [0.5], title="scores")
        assert chart.splitlines()[0] == "scores"
        assert "0.500" in chart

    def test_validation(self):
        with pytest.raises(DataError):
            bar_chart(["a"], [1, 2])
        with pytest.raises(DataError):
            bar_chart([], [])
        with pytest.raises(DataError):
            bar_chart(["a"], [-1])
