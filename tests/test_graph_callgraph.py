"""Unit tests for the whole-program graph layer (summary + project).

Covers the resolution machinery the REP007–REP011 rules stand on:
module naming, import absolutization, alias-resolved dotted calls,
``self.`` dispatch (including base classes), ``self.<attr>`` receiver
typing from annotations and constructor assignments, re-export chains
through package ``__init__``s, nested defs, the import graph (lazy
edges, chains, cycles), and the JSON/DOT export round-trip.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis.graph import (
    GRAPH_SCHEMA_VERSION,
    ProjectGraph,
    build_project,
    graph_from_json,
    graph_to_dot,
    graph_to_json,
    module_name_for,
    render_graph_json,
    summarize_module,
)


def project_from(sources: dict[str, str]) -> ProjectGraph:
    """Build a ProjectGraph from {relpath: source} fixture strings."""
    summaries = []
    for relpath in sorted(sources):
        tree = ast.parse(textwrap.dedent(sources[relpath]))
        aliases: dict[str, str] = {}
        # Reuse the engine's alias semantics without importing it: the
        # summary only needs head-name -> dotted-target mappings.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    aliases[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name != "*":
                        aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        summaries.append(summarize_module(tree, relpath=relpath, aliases=aliases))
    return build_project(summaries)


def edge_targets(project: ProjectGraph, fqid: str) -> set[str]:
    return {callee for callee, _site in project.callees(fqid)}


class TestModuleNaming:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/edge/http.py") == "repro.edge.http"

    def test_init_maps_to_package(self):
        assert module_name_for("src/repro/edge/__init__.py") == "repro.edge"

    def test_non_src_tree(self):
        assert module_name_for("benchmarks/bench_scale.py") == "benchmarks.bench_scale"


class TestDottedResolution:
    def test_plain_function_call_across_modules(self):
        project = project_from(
            {
                "src/pkg/a.py": """
                    from pkg.b import helper
                    def caller():
                        return helper()
                """,
                "src/pkg/b.py": """
                    def helper():
                        return 1
                """,
            }
        )
        assert edge_targets(project, "pkg.a:caller") == {"pkg.b:helper"}

    def test_module_alias_call(self):
        project = project_from(
            {
                "src/pkg/a.py": """
                    import pkg.b as bee
                    def caller():
                        return bee.helper()
                """,
                "src/pkg/b.py": """
                    def helper():
                        return 1
                """,
            }
        )
        assert edge_targets(project, "pkg.a:caller") == {"pkg.b:helper"}

    def test_local_call_qualifies_to_own_module(self):
        project = project_from(
            {
                "src/pkg/a.py": """
                    def helper():
                        return 1
                    def caller():
                        return helper()
                """,
            }
        )
        assert edge_targets(project, "pkg.a:caller") == {"pkg.a:helper"}

    def test_constructor_call_edges_to_init(self):
        project = project_from(
            {
                "src/pkg/a.py": """
                    from pkg.b import Widget
                    def caller():
                        return Widget()
                """,
                "src/pkg/b.py": """
                    class Widget:
                        def __init__(self):
                            self.x = 1
                """,
            }
        )
        assert edge_targets(project, "pkg.a:caller") == {"pkg.b:Widget.__init__"}

    def test_reexport_chain_through_package_init(self):
        project = project_from(
            {
                "src/pkg/__init__.py": """
                    from pkg.impl import helper
                """,
                "src/pkg/impl.py": """
                    def helper():
                        return 1
                """,
                "src/other.py": """
                    import pkg
                    def caller():
                        return pkg.helper()
                """,
            }
        )
        assert edge_targets(project, "other:caller") == {"pkg.impl:helper"}

    def test_unresolvable_external_call_has_no_edge(self):
        project = project_from(
            {
                "src/pkg/a.py": """
                    import numpy as np
                    def caller():
                        return np.zeros(3)
                """,
            }
        )
        assert edge_targets(project, "pkg.a:caller") == set()


class TestSelfDispatch:
    def test_self_method_call(self):
        project = project_from(
            {
                "src/pkg/a.py": """
                    class Service:
                        def outer(self):
                            return self.inner()
                        def inner(self):
                            return 1
                """,
            }
        )
        assert edge_targets(project, "pkg.a:Service.outer") == {"pkg.a:Service.inner"}

    def test_self_dispatch_walks_base_classes(self):
        project = project_from(
            {
                "src/pkg/base.py": """
                    class Base:
                        def shared(self):
                            return 1
                """,
                "src/pkg/child.py": """
                    from pkg.base import Base
                    class Child(Base):
                        def caller(self):
                            return self.shared()
                """,
            }
        )
        assert edge_targets(project, "pkg.child:Child.caller") == {"pkg.base:Base.shared"}

    def test_selfattr_typed_by_init_annotation(self):
        project = project_from(
            {
                "src/pkg/svc.py": """
                    class Service:
                        def recommend(self):
                            return 1
                """,
                "src/pkg/edge.py": """
                    from pkg.svc import Service
                    class Handler:
                        def __init__(self, service: Service):
                            self.service = service
                        def handle(self):
                            return self.service.recommend()
                """,
            }
        )
        assert edge_targets(project, "pkg.edge:Handler.handle") == {
            "pkg.svc:Service.recommend"
        }

    def test_selfattr_typed_by_constructor_assignment(self):
        project = project_from(
            {
                "src/pkg/svc.py": """
                    class Service:
                        def recommend(self):
                            return 1
                """,
                "src/pkg/edge.py": """
                    from pkg.svc import Service
                    class Handler:
                        def __init__(self):
                            self.service = Service()
                        def handle(self):
                            return self.service.recommend()
                """,
            }
        )
        assert "pkg.svc:Service.recommend" in edge_targets(project, "pkg.edge:Handler.handle")

    def test_local_var_typed_by_construction(self):
        project = project_from(
            {
                "src/pkg/svc.py": """
                    class Service:
                        def recommend(self):
                            return 1
                """,
                "src/pkg/use.py": """
                    from pkg.svc import Service
                    def caller():
                        service = Service()
                        return service.recommend()
                """,
            }
        )
        assert "pkg.svc:Service.recommend" in edge_targets(project, "pkg.use:caller")


class TestDeferredBodies:
    def test_lambda_body_draws_no_edges(self):
        project = project_from(
            {
                "src/pkg/a.py": """
                    import time
                    def blocking():
                        time.sleep(1)
                    def caller(pool):
                        return pool.submit(lambda: blocking())
                """,
            }
        )
        assert "pkg.a:blocking" not in edge_targets(project, "pkg.a:caller")

    def test_nested_def_called_gets_edge(self):
        project = project_from(
            {
                "src/pkg/a.py": """
                    def outer():
                        def inner():
                            return 1
                        return inner()
                """,
            }
        )
        assert edge_targets(project, "pkg.a:outer") == {"pkg.a:outer.<locals>.inner"}
        assert "pkg.a:outer.<locals>.inner" in project.functions


class TestImportGraph:
    def test_relative_import_absolutized(self):
        project = project_from(
            {
                "src/pkg/__init__.py": "",
                "src/pkg/a.py": "",
                "src/pkg/b.py": "",
            }
        )
        tree = ast.parse("from .a import helper\n")
        summary = summarize_module(tree, relpath="src/pkg/b.py")
        assert summary.imports[0].target == "pkg.a"

    def test_lazy_import_flagged(self):
        project = project_from(
            {
                "src/pkg/a.py": """
                    def caller():
                        from pkg.b import helper
                        return helper()
                """,
                "src/pkg/b.py": """
                    def helper():
                        return 1
                """,
            }
        )
        links = [link for link in project.import_links if link.src == "pkg.a"]
        assert links and all(link.lazy for link in links)

    def test_import_chain_shortest_path(self):
        project = project_from(
            {
                "src/a.py": "import b\n",
                "src/b.py": "import c\n",
                "src/c.py": "",
            }
        )
        chain = project.import_chain("a", lambda module: module == "c")
        assert chain is not None
        assert [(link.src, link.dst) for link in chain] == [("a", "b"), ("b", "c")]

    def test_import_cycles_top_level_only(self):
        project = project_from(
            {
                "src/a.py": "import b\n",
                "src/b.py": "import a\n",
                "src/c.py": """
                    def lazy():
                        import d
                """,
                "src/d.py": """
                    def lazy():
                        import c
                """,
            }
        )
        assert project.import_cycles() == [["a", "b"]]
        assert ["c", "d"] in project.import_cycles(include_lazy=True)


class TestReachability:
    def test_chain_reconstruction(self):
        project = project_from(
            {
                "src/a.py": """
                    from b import mid
                    def root():
                        return mid()
                """,
                "src/b.py": """
                    from c import leaf
                    def mid():
                        return leaf()
                """,
                "src/c.py": """
                    def leaf():
                        return 1
                """,
            }
        )
        parents = project.reachable(["a:root"])
        assert set(parents) == {"a:root", "b:mid", "c:leaf"}
        assert project.call_chain(parents, "c:leaf") == ["a:root", "b:mid", "c:leaf"]


class TestExportRoundTrip:
    def fixture_project(self) -> ProjectGraph:
        return project_from(
            {
                "src/pkg/a.py": """
                    from pkg.b import helper
                    async def handler():
                        return helper()
                """,
                "src/pkg/b.py": """
                    def helper():
                        return 1
                """,
            }
        )

    def test_json_round_trips_through_loader(self):
        project = self.fixture_project()
        payload = graph_to_json(project)
        assert payload["schema_version"] == GRAPH_SCHEMA_VERSION
        loaded = graph_from_json(render_graph_json(project))
        assert loaded.to_payload() == payload
        assert "pkg.a" in loaded.module_names()
        assert ("pkg.a", "pkg.b") in loaded.import_pairs()
        assert ("pkg.a:handler", "pkg.b:helper") in loaded.call_pairs()

    def test_loader_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="schema_version"):
            graph_from_json({"schema_version": 999})

    def test_loader_rejects_malformed_rows(self):
        payload = graph_to_json(self.fixture_project())
        payload["calls"] = [{"src": "x"}]
        with pytest.raises(ValueError, match="calls"):
            graph_from_json(payload)

    def test_dot_exports(self):
        project = self.fixture_project()
        imports_dot = graph_to_dot(project, which="imports")
        calls_dot = graph_to_dot(project, which="calls")
        assert '"pkg.a" -> "pkg.b"' in imports_dot
        assert '"pkg.a:handler" -> "pkg.b:helper"' in calls_dot
        # async nodes are shaded in the call graph
        assert 'fillcolor="#cfe8ff"' in calls_dot
        with pytest.raises(ValueError):
            graph_to_dot(project, which="nope")
