"""Unit and property tests for the InteractionMatrix data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.interactions import InteractionMatrix
from repro.utils.exceptions import DataError


def pairs_strategy(max_users=8, max_items=10, max_pairs=40):
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=max_users - 1),
            st.integers(min_value=0, max_value=max_items - 1),
        ),
        max_size=max_pairs,
    )


class TestConstruction:
    def test_from_pairs_basic(self, tiny_matrix):
        assert tiny_matrix.n_users == 4
        assert tiny_matrix.n_items == 6
        assert tiny_matrix.n_interactions == 6

    def test_from_pairs_deduplicates(self):
        matrix = InteractionMatrix.from_pairs([(0, 1), (0, 1), (0, 1)], 1, 3)
        assert matrix.n_interactions == 1

    def test_from_pairs_empty(self):
        matrix = InteractionMatrix.from_pairs([], n_users=3, n_items=4)
        assert matrix.n_interactions == 0
        assert matrix.density == 0.0

    def test_from_pairs_infers_dimensions(self):
        matrix = InteractionMatrix.from_pairs([(2, 5)])
        assert (matrix.n_users, matrix.n_items) == (3, 6)

    def test_from_pairs_rejects_out_of_range(self):
        with pytest.raises(DataError):
            InteractionMatrix.from_pairs([(5, 0)], n_users=2, n_items=3)
        with pytest.raises(DataError):
            InteractionMatrix.from_pairs([(0, 9)], n_users=2, n_items=3)

    def test_from_pairs_rejects_negative(self):
        with pytest.raises(DataError):
            InteractionMatrix.from_pairs([(-1, 0)], n_users=2, n_items=2)

    def test_from_pairs_rejects_bad_shape(self):
        with pytest.raises(DataError):
            InteractionMatrix.from_pairs(np.zeros((3, 3)))

    def test_from_dense_roundtrip(self, tiny_matrix):
        rebuilt = InteractionMatrix.from_dense(tiny_matrix.to_dense())
        assert rebuilt == tiny_matrix

    def test_empty_constructor(self):
        matrix = InteractionMatrix.empty(3, 5)
        assert matrix.n_interactions == 0
        assert matrix.positives(0).size == 0

    def test_invalid_indptr_rejected(self):
        with pytest.raises(DataError):
            InteractionMatrix(2, 3, np.array([0, 2]), np.array([0, 1]))
        with pytest.raises(DataError):
            InteractionMatrix(2, 3, np.array([1, 1, 2]), np.array([0, 1]))
        with pytest.raises(DataError):
            InteractionMatrix(2, 3, np.array([0, 2, 1]), np.array([0]))


class TestAccessors:
    def test_positives_sorted_per_user(self, tiny_matrix):
        assert tiny_matrix.positives(0).tolist() == [0, 1, 2]
        assert tiny_matrix.positives(1).tolist() == [2, 3]
        assert tiny_matrix.positives(3).tolist() == []

    def test_n_positives(self, tiny_matrix):
        assert [tiny_matrix.n_positives(u) for u in range(4)] == [3, 2, 1, 0]

    def test_user_counts(self, tiny_matrix):
        assert tiny_matrix.user_counts().tolist() == [3, 2, 1, 0]

    def test_item_counts(self, tiny_matrix):
        assert tiny_matrix.item_counts().tolist() == [1, 1, 2, 1, 0, 1]

    def test_contains(self, tiny_matrix):
        assert tiny_matrix.contains(0, 1)
        assert not tiny_matrix.contains(0, 3)
        assert not tiny_matrix.contains(3, 0)

    def test_contains_batch_matches_scalar(self, tiny_matrix):
        items = np.arange(6)
        for user in range(4):
            expected = [tiny_matrix.contains(user, i) for i in items]
            assert tiny_matrix.contains_batch(user, items).tolist() == expected

    def test_pairs_roundtrip(self, tiny_matrix):
        rebuilt = InteractionMatrix.from_pairs(tiny_matrix.pairs(), 4, 6)
        assert rebuilt == tiny_matrix

    def test_iter_users_skips_empty(self, tiny_matrix):
        users = [user for user, _ in tiny_matrix.iter_users()]
        assert users == [0, 1, 2]

    def test_density(self, tiny_matrix):
        assert tiny_matrix.density == pytest.approx(6 / 24)

    def test_repr_mentions_shape(self, tiny_matrix):
        assert "n_users=4" in repr(tiny_matrix)

    def test_not_hashable(self, tiny_matrix):
        with pytest.raises(TypeError):
            hash(tiny_matrix)


class TestSetAlgebra:
    def test_union(self, tiny_matrix):
        other = InteractionMatrix.from_pairs([(3, 0), (0, 0)], 4, 6)
        union = tiny_matrix.union(other)
        assert union.n_interactions == 7
        assert union.contains(3, 0)

    def test_difference(self, tiny_matrix):
        other = InteractionMatrix.from_pairs([(0, 0), (1, 3)], 4, 6)
        diff = tiny_matrix.difference(other)
        assert diff.n_interactions == 4
        assert not diff.contains(0, 0)
        assert diff.contains(0, 1)

    def test_intersects(self, tiny_matrix):
        assert tiny_matrix.intersects(InteractionMatrix.from_pairs([(2, 5)], 4, 6))
        assert not tiny_matrix.intersects(InteractionMatrix.from_pairs([(2, 4)], 4, 6))

    def test_shape_mismatch_raises(self, tiny_matrix):
        other = InteractionMatrix.empty(4, 7)
        with pytest.raises(DataError):
            tiny_matrix.union(other)


class TestProperties:
    @given(pairs=pairs_strategy())
    @settings(max_examples=50, deadline=None)
    def test_from_pairs_matches_dense_semantics(self, pairs):
        matrix = InteractionMatrix.from_pairs(pairs, n_users=8, n_items=10)
        dense = np.zeros((8, 10), dtype=int)
        for user, item in pairs:
            dense[user, item] = 1
        assert np.array_equal(matrix.to_dense(), dense)
        assert matrix.n_interactions == dense.sum()

    @given(pairs=pairs_strategy())
    @settings(max_examples=50, deadline=None)
    def test_positives_are_sorted_unique(self, pairs):
        matrix = InteractionMatrix.from_pairs(pairs, n_users=8, n_items=10)
        for user in range(8):
            row = matrix.positives(user)
            assert np.all(np.diff(row) > 0)

    @given(pairs=pairs_strategy(), other_pairs=pairs_strategy())
    @settings(max_examples=30, deadline=None)
    def test_union_difference_identity(self, pairs, other_pairs):
        a = InteractionMatrix.from_pairs(pairs, 8, 10)
        b = InteractionMatrix.from_pairs(other_pairs, 8, 10)
        # (a ∪ b) \ b == a \ b
        assert a.union(b).difference(b) == a.difference(b)
