"""The observability layer: registry semantics, exporters, no-op identity.

The load-bearing guarantee is the last test class: training with the
default :class:`NullRegistry` must be *bitwise identical* to training
with a live :class:`MetricsRegistry` — instrumentation only observes,
it never draws RNG numbers or perturbs float arithmetic.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    as_registry,
    export_metrics,
    lint_prometheus,
    metric_records,
    prometheus_text,
    summary_table,
    write_jsonl,
)
from repro.utils.clock import FakeClock
from repro.utils.exceptions import ConfigError


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ConfigError):
            Counter("c").inc(-1.0)

    def test_threaded_increments_lose_nothing(self):
        """The monotonicity contract under contention: no lost updates."""
        counter = Counter("c")
        n_threads, n_incs = 8, 2500

        def work():
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_incs


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ConfigError):
            Histogram("h", buckets=())
        with pytest.raises(ConfigError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ConfigError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_le_semantics_value_on_bound_lands_in_that_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        histogram.observe(1.0)  # exactly on a bound -> that bucket (le)
        histogram.observe(1.5)
        histogram.observe(5.0)
        histogram.observe(7.0)  # past the last bound -> +Inf overflow
        assert histogram.bucket_counts == [1, 1, 1, 1]
        assert histogram.cumulative_counts() == [1, 2, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(14.5)

    def test_snapshot_min_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.25)
        histogram.observe(4.0)
        snap = histogram.snapshot()
        assert snap["min"] == 0.25
        assert snap["max"] == 4.0
        assert snap["buckets"] == {"1.0": 1, "+Inf": 1}

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
            min_size=1, max_size=40,
        )
    )
    def test_bucket_placement_matches_le_definition(self, values):
        """Property: each observation lands in the first bucket >= it."""
        histogram = Histogram("h")
        for value in values:
            histogram.observe(value)
        bounds = (*DEFAULT_BUCKETS, float("inf"))
        expected = [0] * len(bounds)
        for value in values:
            expected[next(i for i, b in enumerate(bounds) if value <= b)] += 1
        assert histogram.bucket_counts == expected
        # Cumulative counts are monotone and end at the total.
        cumulative = histogram.cumulative_counts()
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == len(values)
        assert histogram.sum == pytest.approx(sum(float(v) for v in values))


class TestRegistry:
    def test_same_name_and_labels_is_the_same_instrument(self):
        obs = MetricsRegistry()
        assert obs.counter("x", tier="a") is obs.counter("x", tier="a")
        assert obs.counter("x", tier="a") is not obs.counter("x", tier="b")
        # Distinct kinds never collide even on a shared name.
        assert obs.counter("y") is not obs.gauge("y")

    def test_label_order_does_not_matter(self):
        obs = MetricsRegistry()
        assert obs.counter("x", a="1", b="2") is obs.counter("x", b="2", a="1")

    def test_events_are_timestamped_by_the_injected_clock(self):
        clock = FakeClock()
        obs = MetricsRegistry(clock=clock)
        obs.event("first")
        clock.advance(2.5)
        obs.event("second", detail="x")
        first, second = obs.events()
        assert second["ts"] - first["ts"] == pytest.approx(2.5)
        assert second["detail"] == "x"

    def test_span_records_exact_fake_clock_duration(self):
        clock = FakeClock()
        obs = MetricsRegistry(clock=clock, trace=True)
        with obs.span("work", stage="fit"):
            clock.advance(0.125)
        histogram = obs.histogram("work_seconds", stage="fit")
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(0.125)
        (span_event,) = [e for e in obs.events() if e["event"] == "span"]
        assert span_event["seconds"] == pytest.approx(0.125)
        assert span_event["stage"] == "fit"

    def test_span_without_trace_logs_no_event(self):
        clock = FakeClock()
        obs = MetricsRegistry(clock=clock)
        with obs.span("work"):
            clock.advance(0.5)
        assert obs.events() == []
        assert obs.histogram("work_seconds").count == 1

    def test_as_registry(self):
        assert as_registry(None) is NULL_REGISTRY
        live = MetricsRegistry()
        assert as_registry(live) is live
        with pytest.raises(ConfigError):
            as_registry("not a registry")


class TestNullRegistry:
    def test_all_instruments_are_shared_noops(self):
        null = NullRegistry()
        instrument = null.counter("a", tier="x")
        assert instrument is null.gauge("b") is null.histogram("c")
        instrument.inc()
        instrument.set(5.0)
        instrument.observe(1.0)
        assert instrument.value == 0.0
        assert null.events() == []
        assert null.instruments() == []

    def test_span_is_a_transparent_context(self):
        with NULL_REGISTRY.span("anything"):
            pass
        assert NULL_REGISTRY.events() == []

    def test_trace_flag_is_ignored(self):
        null = NullRegistry(trace=True)
        with null.span("work"):
            pass
        assert null.events() == []


class TestExporters:
    @pytest.fixture
    def populated(self):
        clock = FakeClock()
        obs = MetricsRegistry(clock=clock, trace=True)
        obs.counter("requests_total", tier="personalized").inc(3)
        obs.gauge("loss").set(0.5)
        with obs.span("epoch", model="BPR"):
            clock.advance(0.01)
        obs.event("rollback", epoch=4)
        return obs

    def test_jsonl_roundtrip(self, populated, tmp_path):
        path = write_jsonl(populated, tmp_path / "metrics.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        events = [r for r in records if r["event"] not in ("metric",)]
        metrics = [r for r in records if r["event"] == "metric"]
        assert {e["event"] for e in events} == {"span", "rollback"}
        by_name = {(m["name"], tuple(sorted(m["labels"].items()))): m for m in metrics}
        assert by_name[("requests_total", (("tier", "personalized"),))]["value"] == 3
        assert by_name[("loss", ())]["type"] == "gauge"
        assert by_name[("epoch_seconds", (("model", "BPR"),))]["count"] == 1

    def test_prometheus_text_lints_clean(self, populated):
        text = prometheus_text(populated)
        assert lint_prometheus(text) == []
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{tier="personalized"} 3.0' in text
        assert 'epoch_seconds_count{model="BPR"} 1' in text
        assert 'le="+Inf"' in text

    def test_lint_catches_malformations(self):
        assert lint_prometheus("no_type_header 1\n")
        assert lint_prometheus("# TYPE x counter\nx +garbage\n")
        bad_buckets = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="+Inf"} 3\n'  # cumulative count decreased
        )
        assert any("non-cumulative" in p for p in lint_prometheus(bad_buckets))

    def test_export_metrics_writes_requested_formats(self, populated, tmp_path):
        base = tmp_path / "run"
        paths = export_metrics(populated, base, fmt="both")
        assert [p.name for p in paths] == ["run.jsonl", "run.prom"]
        assert all(p.exists() for p in paths)
        with pytest.raises(ConfigError):
            export_metrics(populated, base, fmt="xml")

    def test_summary_table_mentions_every_instrument(self, populated):
        table = summary_table(populated)
        for name in ("requests_total", "loss", "epoch_seconds"):
            assert name in table
        assert "(no metrics recorded)" in summary_table(MetricsRegistry())

    def test_metric_records_sorted_and_stable(self, populated):
        names = [r["name"] for r in metric_records(populated)]
        assert names == sorted(names)


class TestNoOpIdentity:
    """Instrumentation must never change what the models compute."""

    @pytest.fixture(scope="class")
    def split(self):
        from repro import make_profile_dataset, train_test_split

        dataset = make_profile_dataset("ML100K", scale=0.2, seed=3)
        return train_test_split(dataset, seed=3)

    def test_training_is_bitwise_identical_with_live_registry(self, split):
        from repro.core.clapf import CLAPF
        from repro.mf.sgd import SGDConfig

        def train(obs):
            model = CLAPF(n_factors=8, sgd=SGDConfig(n_epochs=3), seed=7, obs=obs)
            model.fit(split.train, split.validation)
            return model

        bare = train(None)  # NullRegistry default
        instrumented = train(MetricsRegistry(trace=True))
        np.testing.assert_array_equal(bare.params_.user_factors,
                                      instrumented.params_.user_factors)
        np.testing.assert_array_equal(bare.params_.item_factors,
                                      instrumented.params_.item_factors)
        np.testing.assert_array_equal(bare.loss_history_, instrumented.loss_history_)

    def test_evaluation_is_bitwise_identical_with_live_registry(self, split):
        from repro.metrics.evaluator import Evaluator
        from repro.mf.sgd import SGDConfig
        from repro.models import BPR

        model = BPR(n_factors=8, sgd=SGDConfig(n_epochs=2), seed=0).fit(
            split.train, split.validation
        )
        bare = Evaluator(split, ks=(5,), seed=0).evaluate(model)
        obs = MetricsRegistry()
        instrumented = Evaluator(split, ks=(5,), seed=0, obs=obs).evaluate(model)
        assert bare.metrics == instrumented.metrics
        assert obs.counter("eval_chunks_total").value > 0
