"""Fault-injection suite for the ``repro.resilience`` subsystem.

Proves the three headline guarantees:

(a) a training run killed mid-epoch and resumed from its latest
    checkpoint reproduces the uninterrupted run *bitwise* (parameters,
    RNG, sampler state all restored);
(b) an injected NaN triggers LR-backoff rollback and the run recovers
    (or aborts with a typed error under the abort policy);
(c) one crashing method in an experiment sweep never loses the other
    methods' results, and journaled sweeps resume past completed cells.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clapf import clapf_map
from repro.data.dataset import DatasetSplit
from repro.data.interactions import InteractionMatrix
from repro.experiments.grid import grid_search
from repro.experiments.runner import run_methods
from repro.mf.params import FactorParams
from repro.mf.sgd import SGDConfig
from repro.models.bpr import BPR
from repro.models.climf import CLiMF
from repro.models.gbpr import GBPR
from repro.models.poprank import PopRank
from repro.resilience import (
    CheckpointConfig,
    ExperimentJournal,
    FaultInjector,
    GuardConfig,
    InjectedFault,
    SimulatedKill,
    TrainingCheckpoint,
    TrainingGuard,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    retry_call,
    save_checkpoint,
)
from repro.sampling.uniform import UniformSampler
from repro.utils.exceptions import (
    CheckpointError,
    ConfigError,
    DivergenceError,
    ExperimentError,
    ReproError,
)


def make_train(n_users=30, n_items=40, n_pairs=120, seed=0) -> InteractionMatrix:
    rng = np.random.default_rng(seed)
    pairs = {(int(u), int(i)) for u, i in zip(
        rng.integers(0, n_users, size=n_pairs * 2), rng.integers(0, n_items, size=n_pairs * 2)
    )}
    return InteractionMatrix.from_pairs(sorted(pairs)[:n_pairs], n_users=n_users, n_items=n_items)


def sgd_config(n_epochs=6) -> SGDConfig:
    return SGDConfig(learning_rate=0.05, n_epochs=n_epochs, batch_size=16)


@pytest.fixture
def train_matrix() -> InteractionMatrix:
    return make_train()


# ----------------------------------------------------------------------
# Exception hierarchy
# ----------------------------------------------------------------------
class TestExceptions:
    def test_new_errors_under_repro_error(self):
        for exc in (DivergenceError("x"), CheckpointError("x"), ExperimentError("x")):
            assert isinstance(exc, ReproError)

    def test_experiment_error_carries_method_and_cause(self):
        cause = ValueError("boom")
        error = ExperimentError("cell died", method="BPR", cause=cause)
        assert error.method == "BPR"
        assert error.cause is cause
        assert error.__cause__ is cause

    def test_simulated_kill_not_an_exception(self):
        # Must escape `except Exception` recovery code, like a real kill.
        assert not issubclass(SimulatedKill, Exception)
        assert issubclass(SimulatedKill, BaseException)


# ----------------------------------------------------------------------
# Checkpoint persistence
# ----------------------------------------------------------------------
class TestCheckpointFiles:
    def _checkpoint(self, epoch=4) -> TrainingCheckpoint:
        rng = np.random.default_rng(1)
        return TrainingCheckpoint(
            epoch=epoch,
            params=FactorParams.init(5, 8, 3, seed=2),
            rng_state=rng.bit_generator.state,
            sampler_step=17,
            learning_rate=0.03,
            loss_history=[0.9, 0.7, 0.6, 0.55, 0.5],
            validation_history=[0.2],
            best_epoch=3,
            best_score=0.21,
            stale_evals=1,
            best_params=FactorParams.init(5, 8, 3, seed=9),
            extra={"model": "CLAPF-MAP"},
        )

    def test_roundtrip(self, tmp_path):
        original = self._checkpoint()
        path = save_checkpoint(tmp_path / "ckpt.npz", original)
        loaded = load_checkpoint(path)
        assert loaded.epoch == original.epoch
        assert loaded.sampler_step == 17
        assert loaded.learning_rate == pytest.approx(0.03)
        assert loaded.rng_state == original.rng_state
        assert loaded.loss_history == pytest.approx(original.loss_history)
        assert loaded.best_epoch == 3 and loaded.stale_evals == 1
        assert np.array_equal(loaded.params.user_factors, original.params.user_factors)
        assert np.array_equal(loaded.best_params.item_bias, original.best_params.item_bias)
        assert loaded.extra["model"] == "CLAPF-MAP"

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = save_checkpoint(tmp_path / "ckpt.npz", self._checkpoint())
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        arrays["user_factors"][0, 0] += 1.0  # flip bits, keep stored checksum
        with open(path, "wb") as handle:  # repro: allow(REP003) — torn-write fixture
            np.savez(handle, **arrays)  # repro: allow(REP003) — torn-write fixture
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_missing_and_foreign_files_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.npz")
        foreign = tmp_path / "foreign.npz"
        np.savez(foreign, something=np.zeros(3))  # repro: allow(REP003) — deliberately foreign npz
        with pytest.raises(CheckpointError, match="not a training checkpoint"):
            load_checkpoint(foreign)

    def test_latest_and_pruning(self, tmp_path):
        config = CheckpointConfig(tmp_path, every=1, keep=2)
        from repro.resilience import CheckpointManager

        manager = CheckpointManager(config)
        for epoch in range(5):
            manager.save(self._checkpoint(epoch=epoch))
        remaining = list_checkpoints(tmp_path)
        assert len(remaining) == 2
        assert latest_checkpoint(tmp_path) == remaining[-1]
        assert load_checkpoint(remaining[-1]).epoch == 4

    def test_config_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            CheckpointConfig(tmp_path, every=0)
        with pytest.raises(ConfigError):
            CheckpointConfig(tmp_path, keep=0)


# ----------------------------------------------------------------------
# (a) Kill-and-resume reproduces the uninterrupted run bitwise
# ----------------------------------------------------------------------
class TestKillAndResume:
    def _fit_uninterrupted(self, train, model_factory):
        model = model_factory()
        model.fit(train)
        return model

    @pytest.mark.parametrize("model_factory", [
        lambda **kw: clapf_map(seed=3, sgd=sgd_config(), **kw),
        lambda **kw: BPR(seed=3, sgd=sgd_config(), **kw),
        lambda **kw: GBPR(seed=3, sgd=sgd_config(), group_size=2, **kw),
    ], ids=["CLAPF-MAP", "BPR", "GBPR"])
    def test_resume_is_bitwise_identical(self, tmp_path, train_matrix, model_factory):
        reference = model_factory()
        reference.fit(train_matrix)

        steps = sgd_config().steps_per_epoch(train_matrix.n_interactions)
        killed = model_factory(
            checkpoint=CheckpointConfig(tmp_path, every=2, keep=None),
            fault_injector=FaultInjector(kill_at_step=4 * steps + 3),
        )
        with pytest.raises(SimulatedKill):
            killed.fit(train_matrix)
        assert latest_checkpoint(tmp_path) is not None
        assert load_checkpoint(latest_checkpoint(tmp_path)).epoch == 3

        resumed = model_factory()
        resumed.fit(train_matrix, resume_from=tmp_path)
        assert np.array_equal(resumed.params_.user_factors, reference.params_.user_factors)
        assert np.array_equal(resumed.params_.item_factors, reference.params_.item_factors)
        assert np.array_equal(resumed.params_.item_bias, reference.params_.item_bias)
        assert resumed.loss_history_ == pytest.approx(reference.loss_history_)

    def test_climf_resume_is_bitwise_identical(self, tmp_path, train_matrix):
        config = sgd_config(n_epochs=5)
        reference = CLiMF(n_factors=4, sgd=config, seed=11)
        reference.fit(train_matrix)

        killed = CLiMF(
            n_factors=4, sgd=config, seed=11,
            checkpoint=CheckpointConfig(tmp_path, every=1, keep=None),
            fault_injector=FaultInjector(kill_at_step=4),  # one tick per epoch
        )
        with pytest.raises(SimulatedKill):
            killed.fit(train_matrix)

        resumed = CLiMF(n_factors=4, sgd=config, seed=11)
        resumed.fit(train_matrix, resume_from=tmp_path)
        assert np.array_equal(resumed.params_.user_factors, reference.params_.user_factors)
        assert np.array_equal(resumed.params_.item_bias, reference.params_.item_bias)
        assert resumed.objective_history_ == pytest.approx(reference.objective_history_)

    def test_resume_restores_early_stopping_state(self, tmp_path, learnable_split):
        from repro.mf.sgd import EarlyStoppingConfig

        stopping = EarlyStoppingConfig(patience=3, eval_every=2, max_users=50)
        config = SGDConfig(learning_rate=0.05, n_epochs=8, batch_size=64)

        reference = clapf_map(seed=5, sgd=config, early_stopping=stopping)
        reference.fit(learnable_split.train, learnable_split.validation)

        steps = config.steps_per_epoch(learnable_split.train.n_interactions)
        killed = clapf_map(
            seed=5, sgd=config, early_stopping=stopping,
            checkpoint=CheckpointConfig(tmp_path, every=2, keep=None),
            fault_injector=FaultInjector(kill_at_step=5 * steps + 1),
        )
        with pytest.raises(SimulatedKill):
            killed.fit(learnable_split.train, learnable_split.validation)

        resumed = clapf_map(seed=5, sgd=config, early_stopping=stopping)
        resumed.fit(
            learnable_split.train, learnable_split.validation, resume_from=tmp_path
        )
        assert np.array_equal(resumed.params_.user_factors, reference.params_.user_factors)
        assert resumed.validation_history_ == pytest.approx(reference.validation_history_)
        assert resumed.best_epoch_ == reference.best_epoch_

    def test_shape_mismatch_rejected(self, tmp_path, train_matrix):
        model = clapf_map(
            seed=0, sgd=sgd_config(n_epochs=2),
            checkpoint=CheckpointConfig(tmp_path, every=1),
        )
        model.fit(train_matrix)
        other = make_train(n_users=10, n_items=12, n_pairs=30, seed=1)
        fresh = clapf_map(seed=0, sgd=sgd_config(n_epochs=2))
        with pytest.raises(CheckpointError, match="does not match"):
            fresh.fit(other, resume_from=tmp_path)

    def test_resume_from_empty_directory_rejected(self, tmp_path, train_matrix):
        model = clapf_map(seed=0, sgd=sgd_config(n_epochs=1))
        with pytest.raises(CheckpointError, match="no checkpoints"):
            model.fit(train_matrix, resume_from=tmp_path)


# ----------------------------------------------------------------------
# (b) Divergence guard: NaN detection, rollback, LR backoff, abort
# ----------------------------------------------------------------------
class TestDivergenceGuard:
    def test_injected_nan_triggers_rollback_and_recovers(self, train_matrix):
        steps = sgd_config().steps_per_epoch(train_matrix.n_interactions)
        guard = TrainingGuard(GuardConfig(
            policy="rollback", clip_norm=None, backoff_factor=0.5, max_backoffs=2
        ))
        model = clapf_map(
            seed=3, sgd=sgd_config(), guard=guard,
            fault_injector=FaultInjector(nan_at_step=2 * steps + 1),
        )
        model.fit(train_matrix)
        assert np.isfinite(model.params_.user_factors).all()
        assert np.isfinite(model.params_.item_factors).all()
        assert np.isfinite(model.params_.item_bias).all()
        assert guard.backoffs_ == 1
        assert "non-finite" in guard.divergences_[0]
        assert model.learning_rate_ == pytest.approx(0.05 * 0.5)
        assert len(model.loss_history_) == model.sgd.n_epochs

    def test_abort_policy_raises_typed_error(self, train_matrix):
        model = clapf_map(
            seed=3, sgd=sgd_config(), guard=GuardConfig(policy="abort", clip_norm=None),
            fault_injector=FaultInjector(nan_at_step=3),
        )
        with pytest.raises(DivergenceError) as excinfo:
            model.fit(train_matrix)
        assert excinfo.value.epoch == 0

    def test_backoff_budget_exhaustion_raises(self, train_matrix):
        # Poison the parameters again on every retry by re-arming the
        # injector from the epoch callback: recovery can never succeed.
        injector = FaultInjector(nan_at_step=1)

        def rearm(model, epoch):  # pragma: no cover - not reached
            pass

        model = clapf_map(
            seed=3, sgd=sgd_config(),
            guard=GuardConfig(policy="rollback", clip_norm=None, max_backoffs=1),
            fault_injector=injector, epoch_callback=rearm,
        )
        # After each rollback the injector's fired list still contains
        # "nan", so re-fire manually via a wrapper around tick.
        original_tick = injector.tick

        def always_poison(params=None):
            original_tick(params)
            if params is not None:
                params.item_factors[0] = np.nan

        injector.tick = always_poison
        with pytest.raises(DivergenceError, match="did not recover"):
            model.fit(train_matrix)

    def test_guard_off_run_unchanged_by_inert_guard(self, train_matrix):
        plain = clapf_map(seed=3, sgd=sgd_config())
        plain.fit(train_matrix)
        guarded = clapf_map(
            seed=3, sgd=sgd_config(),
            guard=GuardConfig(policy="rollback", clip_norm=None),
        )
        guarded.fit(train_matrix)
        assert np.array_equal(plain.params_.user_factors, guarded.params_.user_factors)
        assert np.array_equal(plain.params_.item_bias, guarded.params_.item_bias)

    def test_exploding_loss_detected(self):
        guard = TrainingGuard(GuardConfig(explode_factor=10.0))
        params = FactorParams.init(3, 4, 2, seed=0)
        assert guard.check_epoch(params, 1.0) is None
        assert guard.check_epoch(params, 2.0) is None  # above best but < 10x
        reason = guard.check_epoch(params, 15.0)
        assert reason is not None and "exploding" in reason

    def test_nonfinite_params_detected(self):
        guard = TrainingGuard(GuardConfig())
        params = FactorParams.init(3, 4, 2, seed=0)
        params.item_factors[1, 0] = np.inf
        assert "non-finite" in guard.check_epoch(params, 0.5)

    def test_clip_rows(self):
        guard = TrainingGuard(GuardConfig(clip_norm=1.0))
        update = np.array([[3.0, 4.0], [0.3, 0.4]])
        clipped = guard.clip_rows(update)
        assert np.linalg.norm(clipped[0]) == pytest.approx(1.0)
        assert np.array_equal(clipped[1], update[1])
        bias = np.array([2.0, -0.5])
        clipped_bias = guard.clip_rows(bias)
        assert clipped_bias[0] == pytest.approx(1.0)
        assert clipped_bias[1] == pytest.approx(-0.5)

    def test_stall_detection(self):
        guard = TrainingGuard(GuardConfig(stall_patience=2, min_delta=0.01))
        assert not guard.observe_validation(0.10)
        assert not guard.observe_validation(0.105)  # below min_delta: stale 1
        assert guard.observe_validation(0.104)      # stale 2 -> stalled

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            GuardConfig(policy="panic")
        with pytest.raises(ConfigError):
            GuardConfig(backoff_factor=1.5)
        with pytest.raises(ConfigError):
            GuardConfig(explode_factor=0.5)


# ----------------------------------------------------------------------
# (c) Experiment isolation, retry, journaling
# ----------------------------------------------------------------------
def _split(train: InteractionMatrix) -> DatasetSplit:
    rng = np.random.default_rng(99)
    held = set()
    while len(held) < 40:
        pair = (int(rng.integers(0, train.n_users)), int(rng.integers(0, train.n_items)))
        if not train.contains(*pair):
            held.add(pair)
    ordered = sorted(held)
    test = InteractionMatrix.from_pairs(
        ordered[:20], n_users=train.n_users, n_items=train.n_items
    )
    validation = InteractionMatrix.from_pairs(
        ordered[20:], n_users=train.n_users, n_items=train.n_items
    )
    return DatasetSplit(name="toy", train=train, test=test, validation=validation)


class TestExperimentIsolation:
    def test_one_failing_method_keeps_the_others(self, train_matrix):
        def bad_factory(repeat):
            raise RuntimeError("model exploded")

        results = run_methods(
            {"PopRank": lambda repeat: PopRank(), "Broken": bad_factory},
            [_split(train_matrix)],
        )
        assert not results["PopRank"].failed
        assert results["PopRank"].means  # real metrics survived
        assert results["Broken"].failed
        assert "model exploded" in results["Broken"].error
        assert results["Broken"].cell("ndcg@5") == "ERR"

    def test_isolation_off_raises_experiment_error(self, train_matrix):
        def bad_factory(repeat):
            raise RuntimeError("boom")

        with pytest.raises(ExperimentError) as excinfo:
            run_methods({"Broken": bad_factory}, [_split(train_matrix)], isolate=False)
        assert excinfo.value.method == "Broken"
        assert isinstance(excinfo.value.cause, RuntimeError)

    def test_retry_recovers_flaky_method(self, train_matrix):
        calls = {"n": 0}

        def flaky_factory(repeat):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return PopRank()

        results = run_methods(
            {"Flaky": flaky_factory}, [_split(train_matrix)],
            retries=1, retry_base_delay=0.0,
        )
        assert not results["Flaky"].failed
        assert calls["n"] == 2

    def test_journal_resume_skips_completed_methods(self, tmp_path, train_matrix):
        split = _split(train_matrix)

        def bad_factory(repeat):
            raise RuntimeError("first run dies here")

        first = run_methods(
            {"PopRank": lambda repeat: PopRank(), "Broken": bad_factory},
            [split], journal=tmp_path,
        )
        assert first["Broken"].failed

        def bomb(repeat):  # must never be called: PopRank is journaled
            raise AssertionError("journaled method was re-run")

        second = run_methods(
            {"PopRank": bomb, "Broken": lambda repeat: PopRank()},
            [split], journal=tmp_path,
        )
        assert not second["Broken"].failed  # failed cells re-run on resume
        assert second["PopRank"].means == pytest.approx(first["PopRank"].means)

    def test_simulated_kill_escapes_isolation(self, train_matrix):
        def killed_factory(repeat):
            raise SimulatedKill("kill -9")

        with pytest.raises(SimulatedKill):
            run_methods({"Killed": killed_factory}, [_split(train_matrix)], retries=3)


class TestGridSearchResilience:
    def _factory(self, tradeoff=0.5, bomb_at=None):
        def factory(tradeoff):
            if bomb_at is not None and tradeoff == bomb_at:
                raise RuntimeError(f"diverged at lambda={tradeoff}")
            return clapf_map(tradeoff=tradeoff, seed=0, sgd=sgd_config(n_epochs=1))

        return factory

    def test_isolated_failures_recorded(self, learnable_split):
        result = grid_search(
            self._factory(bomb_at=0.5),
            {"tradeoff": [0.0, 0.5, 1.0]},
            learnable_split,
            max_users=30,
            isolate=True,
        )
        assert len(result.scores) == 2
        assert len(result.failures) == 1
        assert result.failures[0][0] == {"tradeoff": 0.5}
        assert result.best_params["tradeoff"] in (0.0, 1.0)

    def test_journal_resume_skips_scored_cells(self, tmp_path, learnable_split):
        first = grid_search(
            self._factory(),
            {"tradeoff": [0.0, 1.0]},
            learnable_split,
            max_users=30,
            journal=tmp_path,
        )

        def bomb(tradeoff):
            raise AssertionError("journaled cell was re-run")

        second = grid_search(
            bomb, {"tradeoff": [0.0, 1.0]}, learnable_split,
            max_users=30, journal=tmp_path,
        )
        assert second.best_params == first.best_params
        assert second.best_score == pytest.approx(first.best_score)

    def test_all_cells_failing_raises(self, learnable_split):
        def bomb(tradeoff):
            raise RuntimeError("nope")

        with pytest.raises(ExperimentError, match="all .* failed"):
            grid_search(
                bomb, {"tradeoff": [0.0, 1.0]}, learnable_split,
                max_users=30, isolate=True,
            )


class TestRetryCall:
    def test_backoff_schedule(self):
        sleeps = []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise ValueError("transient")
            return "ok"

        result = retry_call(
            flaky, retries=3, base_delay=1.0, factor=2.0, sleep=sleeps.append
        )
        assert result == "ok"
        assert sleeps == [1.0, 2.0]

    def test_exhausted_retries_reraise(self):
        def always_fails():
            raise ValueError("permanent")

        with pytest.raises(ValueError, match="permanent"):
            retry_call(always_fails, retries=2, base_delay=0.0)

    def test_base_exceptions_never_retried(self):
        attempts = {"n": 0}

        def killed():
            attempts["n"] += 1
            raise SimulatedKill("kill")

        with pytest.raises(SimulatedKill):
            retry_call(killed, retries=5, base_delay=0.0)
        assert attempts["n"] == 1


class TestFaultInjector:
    def test_fires_once_per_fault(self):
        injector = FaultInjector(fail_at_step=2)
        injector.tick()
        with pytest.raises(InjectedFault):
            injector.tick()
        injector.tick()  # does not re-fire
        assert injector.fired_ == ["fail"]

    def test_nan_poisoning(self):
        params = FactorParams.init(3, 5, 2, seed=0)
        injector = FaultInjector(nan_at_step=1, nan_rows=2)
        injector.tick(params)
        assert np.isnan(params.item_factors[:2]).all()
        assert np.isfinite(params.item_factors[2:]).all()


class TestJournal:
    def test_roundtrip_and_len(self, tmp_path):
        journal = ExperimentJournal(tmp_path)
        assert not journal.completed("BPR")
        journal.record("BPR", {"score": 0.5})
        assert journal.completed("BPR")
        assert journal.get("BPR") == {"score": 0.5}
        journal.record("CLAPF-MAP", {"score": 0.6})
        assert len(journal) == 2
        assert dict(journal.items())["CLAPF-MAP"] == {"score": 0.6}

    def test_weird_keys_are_safe_filenames(self, tmp_path):
        journal = ExperimentJournal(tmp_path)
        key = "grid:{'tradeoff': 0.5, 'lr/é': [1, 2]}" + "x" * 200
        journal.record(key, {"ok": True})
        assert journal.completed(key)
        assert journal.get(key) == {"ok": True}
        # A different long key must not collide.
        other = key[:-1] + "y"
        assert not journal.completed(other)


class TestSamplerState:
    def test_state_roundtrip(self, train_matrix):
        sampler = UniformSampler().bind(train_matrix)
        rng = np.random.default_rng(0)
        sampler.sample(4, rng)
        sampler.sample(4, rng)
        state = sampler.state_dict()
        assert state == {"step": 2}
        fresh = UniformSampler().bind(train_matrix)
        fresh.load_state_dict(state)
        assert fresh.step == 2
