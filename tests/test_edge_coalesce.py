"""Coalescing determinism and workload-generator tests.

The micro-batching *policy* lives in :class:`CoalesceBuffer`, a pure
function of an injectable clock — so every flush boundary here is pinned
exactly on :class:`FakeClock`, no sleeps, no tolerance windows.  The
:class:`MicroBatcher` asyncio glue is exercised with a real loop but a
recording runner, asserting arrival-order fan-out and exception fan-out.
The loadgen tests pin schedule determinism (same seed → identical
arrivals), trace round-trips, and the shed/failed/ok classification.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.edge.coalesce import CoalesceBuffer, CoalesceConfig, MicroBatcher
from repro.edge.loadgen import (
    ChaosEvent,
    LoadReport,
    RequestOutcome,
    WorkloadConfig,
    generate_schedule,
    load_trace,
    save_trace,
    zipf_user_probabilities,
)
from repro.resilience.chaos import ServiceFaultInjector
from repro.utils.clock import FakeClock
from repro.utils.exceptions import ConfigError
from repro.utils.rng import as_generator


class TestCoalesceBuffer:
    def test_flushes_exactly_at_max_batch(self):
        buffer = CoalesceBuffer(CoalesceConfig(max_batch=3, max_wait_ms=100.0), clock=FakeClock())
        assert buffer.add("a") is None
        assert buffer.add("b") is None
        assert buffer.add("c") == ["a", "b", "c"]
        assert len(buffer) == 0
        assert buffer.flushes_full_ == 1
        assert buffer.flushes_timed_ == 0

    def test_timed_flush_boundary_is_exact(self):
        clock = FakeClock()
        buffer = CoalesceBuffer(CoalesceConfig(max_batch=16, max_wait_ms=2.0), clock=clock)
        buffer.add("a")
        clock.advance(0.0019)  # 1.9ms: one tick short of the deadline
        assert buffer.poll() is None
        assert buffer.wait_remaining_ms() == pytest.approx(0.1)
        clock.advance(0.0001)  # exactly 2.0ms since the first arrival
        assert buffer.poll() == ["a"]
        assert buffer.flushes_timed_ == 1

    def test_wait_is_anchored_to_first_item_not_latest(self):
        # A steady trickle must not postpone the flush forever.
        clock = FakeClock()
        buffer = CoalesceBuffer(CoalesceConfig(max_batch=16, max_wait_ms=2.0), clock=clock)
        buffer.add("a")
        clock.advance(0.0015)
        buffer.add("b")  # late arrival does NOT reset the deadline
        clock.advance(0.0005)
        assert buffer.poll() == ["a", "b"]

    def test_interleaved_sequence_is_deterministic(self):
        clock = FakeClock()
        buffer = CoalesceBuffer(CoalesceConfig(max_batch=2, max_wait_ms=5.0), clock=clock)
        batches = []
        for item in range(5):
            flushed = buffer.add(item)
            if flushed is not None:
                batches.append(flushed)
            clock.advance(0.001)
        flushed = buffer.poll()  # item 4 is 1ms old: not due yet
        assert flushed is None
        clock.advance(0.004)
        batches.append(buffer.poll())
        assert batches == [[0, 1], [2, 3], [4]]
        assert buffer.flushes_full_ == 2
        assert buffer.flushes_timed_ == 1

    def test_flush_drains_unconditionally(self):
        buffer = CoalesceBuffer(CoalesceConfig(max_batch=16, max_wait_ms=60_000.0), clock=FakeClock())
        buffer.add("a")
        buffer.add("b")
        assert buffer.flush() == ["a", "b"]
        assert buffer.wait_remaining_ms() is None

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CoalesceConfig(max_batch=0)
        with pytest.raises(ConfigError):
            CoalesceConfig(max_wait_ms=-1.0)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce_and_map_back_in_order(self):
        batch_sizes = []

        def runner(requests):
            batch_sizes.append(len(requests))
            return [f"served:{request}" for request in requests]

        async def scenario():
            batcher = MicroBatcher(runner, CoalesceConfig(max_batch=4, max_wait_ms=50.0))
            results = await asyncio.gather(*(batcher.submit(f"r{i}") for i in range(4)))
            await batcher.close()
            return results

        results = asyncio.run(scenario())
        assert results == ["served:r0", "served:r1", "served:r2", "served:r3"]
        assert batch_sizes == [4]

    def test_straggler_flushes_on_timer_not_only_on_full_batch(self):
        def runner(requests):
            return [f"served:{request}" for request in requests]

        async def scenario():
            batcher = MicroBatcher(runner, CoalesceConfig(max_batch=64, max_wait_ms=1.0))
            result = await batcher.submit("lonely")
            assert batcher.buffer.flushes_timed_ == 1
            await batcher.close()
            return result

        assert asyncio.run(scenario()) == "served:lonely"

    def test_runner_failure_fans_out_to_every_caller(self):
        def runner(requests):
            raise RuntimeError("scoring backend down")

        async def scenario():
            batcher = MicroBatcher(runner, CoalesceConfig(max_batch=2, max_wait_ms=50.0))
            results = await asyncio.gather(
                batcher.submit("a"), batcher.submit("b"), return_exceptions=True
            )
            await batcher.close()
            return results

        results = asyncio.run(scenario())
        assert len(results) == 2
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_close_flushes_stragglers(self):
        served = []

        def runner(requests):
            served.extend(requests)
            return [None] * len(requests)

        async def scenario():
            batcher = MicroBatcher(runner, CoalesceConfig(max_batch=64, max_wait_ms=60_000.0))
            task = asyncio.ensure_future(batcher.submit("parked"))
            await asyncio.sleep(0)  # let submit park on the buffer
            await batcher.close()
            await task

        asyncio.run(scenario())
        assert served == ["parked"]


class TestZipfWorkload:
    def test_probabilities_are_a_distribution(self):
        probabilities = zipf_user_probabilities(50, 1.1, as_generator(0))
        assert probabilities.shape == (50,)
        assert probabilities.sum() == pytest.approx(1.0)
        assert (probabilities > 0).all()

    def test_probabilities_are_skewed_and_seeded(self):
        first = zipf_user_probabilities(50, 1.1, as_generator(0))
        again = zipf_user_probabilities(50, 1.1, as_generator(0))
        other = zipf_user_probabilities(50, 1.1, as_generator(1))
        np.testing.assert_array_equal(first, again)
        assert not np.array_equal(first, other)  # rank permutation is seeded
        assert first.max() / first.min() > 10.0  # heavy head, long tail

    def test_schedule_is_deterministic_per_seed(self):
        config = WorkloadConfig(n_users=30, requests=40, rate_rps=500.0, seed=3)
        first = generate_schedule(config)
        again = generate_schedule(config)
        assert first == again
        assert len(first) == 40
        ats = [request.at_s for request in first]
        assert ats == sorted(ats)
        assert all(0 <= request.user < 30 for request in first)

    def test_different_seeds_differ(self):
        base = WorkloadConfig(n_users=30, requests=40, seed=3)
        other = WorkloadConfig(n_users=30, requests=40, seed=4)
        assert generate_schedule(base) != generate_schedule(other)

    def test_burst_mode_compresses_arrivals_inside_the_window(self):
        calm = WorkloadConfig(n_users=10, requests=200, rate_rps=50.0, mode="zipf", seed=0)
        burst = WorkloadConfig(
            n_users=10, requests=200, rate_rps=50.0, mode="burst", seed=0,
            burst_every_s=1.0, burst_duration_s=0.5, burst_multiplier=10.0,
        )
        assert generate_schedule(burst)[-1].at_s < generate_schedule(calm)[-1].at_s

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(n_users=0)
        with pytest.raises(ConfigError):
            WorkloadConfig(n_users=5, mode="tsunami")
        with pytest.raises(ConfigError):
            WorkloadConfig(n_users=5, requests=0)

    def test_trace_round_trip(self, tmp_path):
        schedule = generate_schedule(WorkloadConfig(n_users=12, requests=25, seed=9))
        path = tmp_path / "trace.json"
        save_trace(path, schedule)
        replayed = load_trace(path)
        assert len(replayed) == len(schedule)
        for loaded, original in zip(replayed, schedule):
            # at_s is rounded to microseconds on disk; everything else exact.
            assert loaded.at_s == pytest.approx(original.at_s, abs=1e-6)
            assert (loaded.user, loaded.k, loaded.deadline_ms) == (
                original.user, original.k, original.deadline_ms,
            )

    def test_chaos_event_drives_injector(self):
        chaos = ServiceFaultInjector()
        ChaosEvent(at_s=0.0, action="exception", tier="personalized").apply(chaos)
        with pytest.raises(Exception):
            chaos.before_call("personalized")
        ChaosEvent(at_s=1.0, action="clear").apply(chaos)
        chaos.before_call("personalized")  # cleared: no longer raises


class TestLoadReport:
    def make_report(self):
        outcomes = [
            RequestOutcome(status=200, latency_ms=2.0, served_by="personalized", degraded=False),
            RequestOutcome(status=200, latency_ms=4.0, served_by="popularity", degraded=True),
            RequestOutcome(status=429, latency_ms=0.5),
            RequestOutcome(status=503, latency_ms=0.5),
            RequestOutcome(status=0, latency_ms=10.0, transport_error=True),
        ]
        return LoadReport(outcomes=outcomes, duration_s=1.0)

    def test_shed_is_not_failed(self):
        report = self.make_report()
        assert report.total == 5
        assert report.ok == 2
        assert report.shed == 2
        assert report.failed == 1
        assert report.shed_rate() == pytest.approx(0.4)

    def test_fallback_rate_counts_non_personalized_200s(self):
        report = self.make_report()
        assert report.fallback_rate() == pytest.approx(0.5)
        assert report.degraded == 1

    def test_json_dict_is_complete(self):
        summary = self.make_report().to_json_dict()
        for key in ("total", "ok", "shed", "failed", "p50_ms", "p99_ms",
                    "fallback_rate", "shed_rate", "throughput_rps", "tier_mix"):
            assert key in summary
        assert summary["failed"] == 1
        assert summary["tier_mix"] == {"personalized": 1, "popularity": 1}
