"""Tests of the propensity-weighted (debiased) evaluation."""

import numpy as np
import pytest

from repro.data.interactions import InteractionMatrix
from repro.metrics.propensity import (
    ips_hit_value,
    item_propensities,
    unbiased_evaluate,
)
from repro.models.poprank import PopRank
from repro.models.bpr import BPR
from repro.mf.sgd import SGDConfig
from repro.utils.exceptions import ConfigError, DataError


class TestPropensities:
    def test_popular_items_higher_propensity(self, tiny_matrix):
        propensities = item_propensities(tiny_matrix)
        assert propensities[2] > propensities[4]  # item 2: 2 users, item 4: none

    def test_normalized_to_max_one(self, tiny_matrix):
        assert item_propensities(tiny_matrix).max() == pytest.approx(1.0)

    def test_power_zero_is_uniform(self, tiny_matrix):
        propensities = item_propensities(tiny_matrix, power=0.0)
        assert np.allclose(propensities, 1.0)

    def test_validation(self, tiny_matrix):
        with pytest.raises(ConfigError):
            item_propensities(tiny_matrix, power=-1.0)
        with pytest.raises(ConfigError):
            item_propensities(tiny_matrix, smoothing=0.0)


class TestIpsHitValue:
    def test_uniform_propensities_count_hits(self):
        propensities = np.ones(5)
        hit, total = ips_hit_value(np.array([0, 1, 2]), np.array([1, 4]), propensities, 3)
        assert hit == 1.0  # item 1 hit
        assert total == 2.0

    def test_rare_hits_weighted_up(self):
        propensities = np.array([1.0, 0.1])
        hit_popular, _ = ips_hit_value(np.array([0]), np.array([0]), propensities, 1)
        hit_rare, _ = ips_hit_value(np.array([1]), np.array([1]), propensities, 1)
        assert hit_rare == pytest.approx(10.0)
        assert hit_popular == pytest.approx(1.0)

    def test_clipping_bounds_weights(self):
        propensities = np.array([1e-6])
        hit, _ = ips_hit_value(np.array([0]), np.array([0]), propensities, 1, clip=50.0)
        assert hit == pytest.approx(50.0)

    def test_empty_relevant(self):
        assert ips_hit_value(np.array([0]), np.array([], dtype=int), np.ones(2), 1) == (0.0, 0.0)


class TestUnbiasedEvaluate:
    def test_power_zero_recall_matches_vanilla(self, learnable_split):
        model = PopRank().fit(learnable_split.train)
        report = unbiased_evaluate(model, learnable_split, k=5, power=0.0)
        assert report["ips_recall@5"] == pytest.approx(report["recall@5"])

    def test_popularity_model_penalized_by_debiasing(self, medium_split):
        """PopRank's apparent recall should shrink more under IPS than a
        personalized model's — the whole point of debiasing."""
        pop = PopRank().fit(medium_split.train)
        bpr = BPR(sgd=SGDConfig(n_epochs=40), seed=0).fit(medium_split.train)
        pop_report = unbiased_evaluate(pop, medium_split, k=5, power=1.0)
        bpr_report = unbiased_evaluate(bpr, medium_split, k=5, power=1.0)

        def retention(report):
            return report["ips_recall@5"] / max(report["recall@5"], 1e-12)

        assert retention(bpr_report) > retention(pop_report)

    def test_no_users_rejected(self):
        train = InteractionMatrix.from_pairs([(0, 0)], 1, 3)
        test = InteractionMatrix.empty(1, 3)
        from repro.data.dataset import DatasetSplit

        split = DatasetSplit(name="empty-test", train=train, test=test)
        model = PopRank().fit(train)
        with pytest.raises(DataError):
            unbiased_evaluate(model, split)

    def test_report_keys(self, learnable_split):
        model = PopRank().fit(learnable_split.train)
        report = unbiased_evaluate(model, learnable_split, k=3)
        assert set(report) == {
            "ips_precision@3", "ips_recall@3", "precision@3", "recall@3", "n_users",
        }
