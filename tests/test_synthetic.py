"""Tests of the synthetic implicit-feedback generator."""

import numpy as np
import pytest

from repro.data.profiles import DATASET_PROFILES, make_profile_dataset
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.utils.exceptions import ConfigError


class TestConfigValidation:
    def test_rejects_full_density(self):
        with pytest.raises(ConfigError):
            SyntheticConfig(n_users=10, n_items=10, density=1.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ConfigError):
            SyntheticConfig(n_users=0, n_items=10)

    def test_rejects_negative_signal(self):
        with pytest.raises(ConfigError):
            SyntheticConfig(n_users=10, n_items=10, signal=-1.0)


class TestGeneration:
    def test_shape_and_name(self):
        config = SyntheticConfig(n_users=30, n_items=50, density=0.05)
        dataset = generate_synthetic(config, seed=0, name="demo")
        assert dataset.name == "demo"
        assert dataset.n_users == 30
        assert dataset.n_items == 50

    def test_every_user_has_at_least_one_positive(self):
        config = SyntheticConfig(n_users=40, n_items=60, density=0.02)
        dataset = generate_synthetic(config, seed=0)
        assert (dataset.interactions.user_counts() >= 1).all()

    def test_density_near_target(self):
        config = SyntheticConfig(n_users=200, n_items=300, density=0.05)
        dataset = generate_synthetic(config, seed=0)
        assert dataset.density == pytest.approx(0.05, rel=0.3)

    def test_reproducible(self):
        config = SyntheticConfig(n_users=25, n_items=40, density=0.08)
        a = generate_synthetic(config, seed=13)
        b = generate_synthetic(config, seed=13)
        assert a.interactions == b.interactions

    def test_seeds_differ(self):
        config = SyntheticConfig(n_users=25, n_items=40, density=0.08)
        a = generate_synthetic(config, seed=1)
        b = generate_synthetic(config, seed=2)
        assert a.interactions != b.interactions

    def test_ground_truth_returned(self):
        config = SyntheticConfig(n_users=20, n_items=30, density=0.05, latent_dim=4)
        dataset, truth = generate_synthetic(config, seed=0, return_ground_truth=True)
        assert truth.user_factors.shape == (20, 4)
        assert truth.item_factors.shape == (30, 4)
        assert truth.affinity(0).shape == (30,)

    def test_positives_align_with_ground_truth_affinity(self):
        """Observed items should have higher true affinity than unobserved."""
        config = SyntheticConfig(
            n_users=60, n_items=120, density=0.08, latent_dim=3,
            signal=12.0, popularity_weight=0.0, popularity_exponent=0.0,
        )
        dataset, truth = generate_synthetic(config, seed=5, return_ground_truth=True)
        gaps = []
        for user in range(dataset.n_users):
            affinity = truth.affinity(user)
            positives = dataset.interactions.positives(user)
            mask = np.zeros(dataset.n_items, dtype=bool)
            mask[positives] = True
            gaps.append(affinity[mask].mean() - affinity[~mask].mean())
        assert np.mean(gaps) > 0.1

    def test_popularity_long_tail(self):
        """With a Zipf exponent, the top decile of items should dominate."""
        config = SyntheticConfig(
            n_users=300, n_items=200, density=0.05,
            popularity_exponent=1.0, signal=0.0, popularity_weight=3.0,
        )
        dataset = generate_synthetic(config, seed=0)
        counts = np.sort(dataset.interactions.item_counts())[::-1]
        top_decile = counts[: len(counts) // 10].sum()
        assert top_decile > 0.3 * counts.sum()


class TestProfiles:
    def test_all_profiles_generate(self):
        for name in DATASET_PROFILES:
            dataset = make_profile_dataset(name, scale=0.1, seed=0)
            assert dataset.n_users >= 10
            assert dataset.n_interactions > 0

    def test_profile_name_suffix(self):
        assert make_profile_dataset("ML100K", scale=0.1, seed=0).name == "ML100K-sim@0.1"
        assert make_profile_dataset("ML100K", seed=0).name == "ML100K-sim"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            make_profile_dataset("MovieTweets")

    def test_dense_sparse_contrast_preserved(self):
        dense = make_profile_dataset("ML100K", scale=0.4, seed=0)
        sparse = make_profile_dataset("Flixter", scale=0.4, seed=0)
        assert dense.density > 3 * sparse.density

    def test_profile_records_paper_numbers(self):
        profile = DATASET_PROFILES["Netflix"]
        assert profile.paper_users == 480_189
        assert profile.paper_items == 17_770
