"""Tests of the real-dataset file loaders (on temporary files)."""

import pytest

from repro.data.loaders import (
    LoadReport,
    load_csv_triplets,
    load_movielens_100k,
    load_movielens_1m,
    load_pairs,
    save_pairs,
)
from repro.utils.exceptions import DataError, DataValidationError


@pytest.fixture
def ml100k_file(tmp_path):
    path = tmp_path / "u.data"
    rows = [
        "1\t10\t5\t874965758",
        "1\t20\t3\t874965759",  # rating 3: filtered (threshold is > 3)
        "2\t10\t4\t874965760",
        "2\t30\t1\t874965761",  # filtered
        "3\t20\t5\t874965762",
    ]
    path.write_text("\n".join(rows) + "\n")
    return path


class TestMovieLens100K:
    def test_threshold_filters_low_ratings(self, ml100k_file):
        dataset = load_movielens_100k(ml100k_file)
        assert dataset.n_interactions == 3

    def test_ids_reindexed_densely(self, ml100k_file):
        dataset = load_movielens_100k(ml100k_file)
        assert dataset.n_users == 3  # users 1, 2, 3
        assert dataset.n_items == 2  # items 10 (kept twice), 20 (kept once)

    def test_custom_threshold(self, ml100k_file):
        dataset = load_movielens_100k(ml100k_file, threshold=0.0)
        assert dataset.n_interactions == 5

    def test_name(self, ml100k_file):
        assert load_movielens_100k(ml100k_file).name == "ML100K"


class TestMovieLens1M:
    def test_double_colon_format(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::11::5::978300760\n1::12::2::978300761\n2::11::4::978300762\n")
        dataset = load_movielens_1m(path)
        assert dataset.n_interactions == 2
        assert dataset.n_users == 2

    def test_malformed_row_raises_with_location(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::11\n")
        with pytest.raises(DataError, match="ratings.dat:1"):
            load_movielens_1m(path)


class TestCsvTriplets:
    def test_header_skipped(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("userId,movieId,rating,timestamp\n1,100,4.5,0\n2,100,2.0,0\n")
        dataset = load_csv_triplets(path)
        assert dataset.n_interactions == 1

    def test_non_numeric_rating_raises(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("u,i,r\n1,100,high\n")
        with pytest.raises(DataError, match="non-numeric rating"):
            load_csv_triplets(path)

    def test_default_name_is_stem(self, tmp_path):
        path = tmp_path / "flixter.csv"
        path.write_text("u,i,r\n1,100,5\n")
        assert load_csv_triplets(path).name == "flixter"


class TestPairFiles:
    def test_load_pairs(self, tmp_path):
        path = tmp_path / "usertag.tsv"
        path.write_text("alice\trock\nalice\tjazz\nbob\trock\n")
        dataset = load_pairs(path)
        assert dataset.n_interactions == 3
        assert dataset.n_users == 2
        assert dataset.n_items == 2

    def test_short_row_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("onlyone\n")
        with pytest.raises(DataError):
            load_pairs(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(DataError, match="no positive interactions"):
            load_pairs(path)

    def test_save_load_roundtrip(self, tmp_path, tiny_matrix):
        from repro.data.dataset import ImplicitDataset

        dataset = ImplicitDataset(name="tiny", interactions=tiny_matrix)
        path = tmp_path / "tiny.tsv"
        save_pairs(dataset, path)
        loaded = load_pairs(path, name="tiny")
        # Re-indexing is dense first-seen, so compare pair counts per user.
        assert loaded.n_interactions == dataset.n_interactions


class TestStrictValidation:
    """Satellite: malformed rows raise DataValidationError with context."""

    def write(self, tmp_path, rows):
        path = tmp_path / "u.data"
        path.write_text("\n".join(rows) + "\n")
        return path

    def test_negative_id_raises_with_line(self, tmp_path):
        path = self.write(tmp_path, ["1\t10\t5\t0", "-2\t10\t5\t0"])
        with pytest.raises(DataValidationError, match=r"u\.data:2: negative id") as excinfo:
            load_movielens_100k(path)
        assert excinfo.value.line == 2

    def test_out_of_range_id_raises(self, tmp_path):
        path = self.write(tmp_path, [f"1\t{2**40}\t5\t0"])
        with pytest.raises(DataValidationError, match="out-of-range id"):
            load_movielens_100k(path)

    def test_float_id_is_corruption(self, tmp_path):
        path = self.write(tmp_path, ["3.7\t10\t5\t0"])
        with pytest.raises(DataValidationError, match="non-integer numeric id"):
            load_movielens_100k(path)

    def test_nan_rating_raises(self, tmp_path):
        path = self.write(tmp_path, ["1\t10\tnan\t0"])
        with pytest.raises(DataValidationError, match="non-finite rating"):
            load_movielens_100k(path)

    def test_duplicate_pair_raises(self, tmp_path):
        path = self.write(tmp_path, ["1\t10\t5\t0", "1\t10\t4\t1"])
        with pytest.raises(DataValidationError, match=r"u\.data:2: duplicate"):
            load_movielens_100k(path)

    def test_duplicate_pair_in_pair_file_raises(self, tmp_path):
        path = tmp_path / "pairs.tsv"
        path.write_text("alice\trock\nalice\trock\n")
        with pytest.raises(DataValidationError, match="duplicate"):
            load_pairs(path)

    def test_string_keys_still_legitimate(self, tmp_path):
        path = tmp_path / "pairs.tsv"
        path.write_text("alice\trock\nbob\tjazz\n")
        assert load_pairs(path).n_interactions == 2

    def test_validation_error_is_a_data_error(self, tmp_path):
        # Backward compatibility: callers catching DataError still work.
        path = self.write(tmp_path, ["-1\t10\t5\t0"])
        with pytest.raises(DataError):
            load_movielens_100k(path)


class TestLenientMode:
    """Satellite: strict=False skips bad rows and counts them."""

    def test_skip_and_count(self, tmp_path):
        path = tmp_path / "u.data"
        rows = [
            "1\t10\t5\t0",        # kept
            "-2\t10\t5\t0",       # negative id
            "1\t10\t4\t1",        # duplicate pair
            "2\t20\tnan\t0",      # non-finite rating
            "3\t30\thigh\t0",     # non-numeric rating
            "4\t40",              # short row
            "2\t10\t5\t0",        # kept
            "3\t20\t2\t0",        # valid but below threshold
        ]
        path.write_text("\n".join(rows) + "\n")
        report = LoadReport()
        dataset = load_movielens_100k(path, strict=False, report=report)
        assert dataset.n_interactions == 2
        assert report.rows == 8
        assert report.kept == 2
        assert report.skipped == {
            "negative id": 1,
            "duplicate pair": 1,
            "non-finite rating": 1,
            "non-numeric rating": 1,
            "short row": 1,
        }
        assert report.n_skipped == 5

    def test_lenient_without_report_still_loads(self, tmp_path):
        path = tmp_path / "u.data"
        path.write_text("1\t10\t5\t0\nbad row\n")
        assert load_movielens_100k(path, strict=False).n_interactions == 1

    def test_lenient_pair_file(self, tmp_path):
        path = tmp_path / "pairs.tsv"
        path.write_text("alice\trock\nalice\trock\nonlyone\nbob\tjazz\n")
        report = LoadReport()
        dataset = load_pairs(path, strict=False, report=report)
        assert dataset.n_interactions == 2
        assert report.skipped == {"duplicate pair": 1, "short row": 1}

    def test_lenient_csv(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("u,i,r\n1,100,4.5\n1,100,5.0\nx,nan,3\n2,100,5.0\n")
        report = LoadReport()
        dataset = load_csv_triplets(path, strict=False, report=report)
        assert dataset.n_interactions == 2
        assert report.skipped["duplicate pair"] == 1
        assert report.skipped["non-integer numeric id"] == 1
