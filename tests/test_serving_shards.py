"""Per-shard circuit breakers and retrieval provenance in the cascade.

The scale-ladder serving story: a million-user store is split into
shards, and one rotted/slow shard must degrade *only the users that
shard owns* — the personalized tier keeps serving everyone else, the
tier-level breaker stays closed, and only the sick shard's breaker
opens.  Responses carry a ``retrieval`` provenance field saying whether
the ranking came from the dense scan (``"exact"``) or a
shortlist-then-exact-rerank index (``"ivf"``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.interactions import InteractionMatrix
from repro.metrics import scoring
from repro.mf.params import FactorParams
from repro.retrieval import IVFConfig, IVFIndex
from repro.serving.breaker import BreakerConfig
from repro.serving.schema import ServedResponse
from repro.serving.service import RecommendationService, ServiceConfig
from repro.serving.tiers import RecommendationRequest
from repro.store import ShardedFactorStore, StoreBackedModel, write_factor_store
from repro.store.shards import shard_file_name

N_USERS, N_ITEMS, D = 64, 40, 8
SHARD_SIZE = 16  # -> 4 shards: users [0,16), [16,32), [32,48), [48,64)


def make_world(seed=0):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, N_ITEMS, size=(N_USERS, 6))
    pairs = sorted({(u, int(i)) for u in range(N_USERS) for i in rows[u]})
    train = InteractionMatrix.from_pairs(pairs, n_users=N_USERS, n_items=N_ITEMS)
    params = FactorParams(
        user_factors=rng.normal(size=(N_USERS, D)),
        item_factors=rng.normal(size=(N_ITEMS, D)),
        item_bias=rng.normal(size=N_ITEMS),
    )
    return train, params


def corrupt(path):
    data = bytearray(path.read_bytes())
    data[-5] ^= 0xFF
    path.write_bytes(bytes(data))


@pytest.fixture
def world(tmp_path):
    train, params = make_world()
    write_factor_store(tmp_path, params, dtype="float64", shard_size=SHARD_SIZE)
    store = ShardedFactorStore.open(tmp_path)
    model = StoreBackedModel(store, train, version="v1")
    service = RecommendationService.build(
        model,
        train,
        fit_knn=False,
        version="v1",
        config=ServiceConfig(
            default_deadline_ms=5000.0,
            breaker=BreakerConfig(min_calls=2, failure_rate_threshold=0.5),
        ),
    )
    yield service, store, train, params, tmp_path
    service.close()


class TestShardBreakers:
    def test_one_breaker_per_shard_created_eagerly(self, world):
        service, *_ = world
        assert sorted(service.shard_breakers) == [0, 1, 2, 3]
        assert service.shard_breakers[2].name == "personalized-shard-2"

    def test_store_served_requests_match_dense(self, world):
        service, _, train, params, _ = world
        response = service.recommend(RecommendationRequest(user=3, k=5))
        assert response.served_by == "personalized"
        assert response.retrieval == "exact"
        scores = scoring.linear_scores(
            params.user_factors[[3]], params.item_factors, params.item_bias
        )[0].copy()
        scores[train.positives(3)] = -np.inf
        expected = scoring.topk_from_matrix(scores[None, :], 5)[0]
        assert np.array_equal(response.items, expected)

    def test_corrupt_shard_degrades_only_its_users(self, world):
        service, store, _, _, tmp_path = world
        corrupt(tmp_path / shard_file_name(2))
        store.verify_shards()
        bad = service.recommend(RecommendationRequest(user=35, k=5))  # shard 2
        good = service.recommend(RecommendationRequest(user=3, k=5))  # shard 0
        assert bad.degraded and bad.served_by != "personalized"
        assert "quarantined" in bad.tier_errors["personalized"]
        assert not good.degraded and good.served_by == "personalized"

    def test_only_the_sick_shards_breaker_opens(self, world):
        service, store, _, _, tmp_path = world
        corrupt(tmp_path / shard_file_name(2))
        store.verify_shards()
        for user in (33, 34, 35, 36):
            service.recommend(RecommendationRequest(user=user, k=5))
        snapshot = service.snapshot()
        assert snapshot["shard_breakers"]["2"]["state"] == "open"
        assert snapshot["breakers"]["personalized"]["state"] == "closed"
        for healthy in ("0", "1", "3"):
            assert snapshot["shard_breakers"][healthy]["state"] == "closed"
        # Once open, the sick shard's users skip the tier outright.
        skipped = service.recommend(RecommendationRequest(user=40, k=5))
        assert "personalized-shard-2 open" in skipped.tier_errors["personalized"]
        # ...while a healthy shard's user still gets the primary tier.
        assert service.recommend(
            RecommendationRequest(user=5, k=5)
        ).served_by == "personalized"

    def test_batch_isolates_the_bad_shard(self, world):
        service, store, _, _, tmp_path = world
        corrupt(tmp_path / shard_file_name(2))
        store.verify_shards()
        responses = service.recommend_batch(
            [RecommendationRequest(user=user, k=5) for user in (1, 17, 35, 50)]
        )
        assert [r.served_by == "personalized" for r in responses] == [
            True, True, False, True,
        ]
        assert all(len(r.items) > 0 for r in responses)

    def test_batch_matches_single_request_rankings(self, world):
        service, *_ = world
        users = (1, 9, 17, 33, 50)
        batch = service.recommend_batch(
            [RecommendationRequest(user=user, k=5) for user in users]
        )
        singles = [
            service.recommend(RecommendationRequest(user=user, k=5)) for user in users
        ]
        for batched, single in zip(batch, singles):
            assert np.array_equal(batched.items, single.items)

    def test_snapshot_reports_shard_breakers(self, world):
        service, *_ = world
        snapshot = service.snapshot()
        assert set(snapshot["shard_breakers"]) == {"0", "1", "2", "3"}


class TestRetrievalProvenance:
    def make_service(self, retriever=None):
        train, params = make_world()

        class FactorModel:
            params_ = params

            def predict_batch(self, users):
                return scoring.linear_scores(
                    params.user_factors[np.asarray(users, dtype=np.int64)],
                    params.item_factors,
                    params.item_bias,
                )

            def predict_user(self, user):
                return self.predict_batch([user])[0]

        return RecommendationService.build(
            FactorModel(),
            train,
            fit_knn=False,
            retriever=retriever,
            config=ServiceConfig(default_deadline_ms=5000.0),
        )

    def test_ivf_provenance_and_full_probe_equality(self):
        _, params = make_world()
        index = IVFIndex.build(
            params.item_factors, IVFConfig(n_clusters=4, n_probe=4, seed=0)
        )
        with self.make_service(index) as ivf_service, self.make_service() as dense:
            approx = ivf_service.recommend(RecommendationRequest(user=3, k=5))
            exact = dense.recommend(RecommendationRequest(user=3, k=5))
            assert approx.retrieval == "ivf"
            assert exact.retrieval == "exact"
            assert np.array_equal(approx.items, exact.items)
            batch = ivf_service.recommend_batch(
                [RecommendationRequest(user=user, k=5) for user in (1, 3, 9)]
            )
            assert all(response.retrieval == "ivf" for response in batch)

    def test_degraded_tiers_report_exact(self):
        with self.make_service() as service:
            cold = service.recommend(RecommendationRequest(user=10_000, k=5))
            assert cold.degraded
            assert cold.retrieval == "exact"

    def test_wire_round_trip_and_legacy_default(self):
        with self.make_service() as service:
            response = service.recommend(RecommendationRequest(user=3, k=5))
        wire = response.to_json_dict()
        assert wire["retrieval"] == "exact"
        assert ServedResponse.from_json_dict(wire).to_json_dict() == wire
        del wire["retrieval"]
        assert ServedResponse.from_json_dict(wire).retrieval == "exact"
