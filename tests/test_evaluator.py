"""Tests of the full-ranking evaluation protocol."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.data.dataset import DatasetSplit
from repro.data.interactions import InteractionMatrix
from repro.metrics.evaluator import Evaluator, evaluate_model
from repro.utils.exceptions import ConfigError, DataError


@pytest.fixture
def split():
    """3 users, 6 items; train/test/validation hand-built."""
    train = InteractionMatrix.from_pairs([(0, 0), (0, 1), (1, 2), (2, 3)], 3, 6)
    test = InteractionMatrix.from_pairs([(0, 2), (1, 4), (2, 5)], 3, 6)
    validation = InteractionMatrix.from_pairs([(0, 3)], 3, 6)
    return DatasetSplit(name="hand", train=train, test=test, validation=validation)


class OracleModel:
    """Scores each user's test positives highest."""

    def __init__(self, split):
        self.split = split

    def predict_user(self, user):
        scores = np.zeros(self.split.n_items)
        scores[self.split.test.positives(user)] = 10.0
        return scores


class AntiOracleModel:
    """Scores the test positives lowest."""

    def __init__(self, split):
        self.split = split

    def predict_user(self, user):
        scores = np.ones(self.split.n_items)
        scores[self.split.test.positives(user)] = -10.0
        return scores


class TestProtocol:
    def test_oracle_scores_perfectly(self, split):
        result = Evaluator(split, ks=(1,)).evaluate(OracleModel(split))
        assert result["precision@1"] == pytest.approx(1.0)
        assert result["mrr"] == pytest.approx(1.0)
        assert result["map"] == pytest.approx(1.0)
        assert result["auc"] == pytest.approx(1.0)

    def test_anti_oracle_scores_zero_topk(self, split):
        result = Evaluator(split, ks=(1,)).evaluate(AntiOracleModel(split))
        assert result["precision@1"] == 0.0
        assert result["auc"] == pytest.approx(0.0)

    def test_train_positives_excluded_from_candidates(self, split):
        """A model that puts all mass on train positives gains nothing."""

        def train_lover(user):
            scores = np.zeros(split.n_items)
            scores[split.train.positives(user)] = 100.0
            scores[split.test.positives(user)] = 1.0
            return scores

        result = Evaluator(split, ks=(1,)).evaluate(SimpleNamespace(predict_user=train_lover))
        # Test items win rank 1 because the train items are not candidates.
        assert result["precision@1"] == pytest.approx(1.0)

    def test_validation_excluded_too(self, split):
        def validation_lover(user):
            scores = np.zeros(split.n_items)
            if split.validation is not None:
                scores[split.validation.positives(user)] = 100.0
            scores[split.test.positives(user)] = 1.0
            return scores

        result = Evaluator(split, ks=(1,)).evaluate(
            SimpleNamespace(predict_user=validation_lover)
        )
        assert result["precision@1"] == pytest.approx(1.0)

    def test_bare_callable_rejected_with_migration_hint(self, split):
        with pytest.raises(TypeError, match="predict_user"):
            Evaluator(split, ks=(1,)).evaluate(lambda user: np.zeros(split.n_items))

    def test_predict_user_object_accepted(self, split):
        scorer = SimpleNamespace(predict_user=lambda user: np.zeros(split.n_items))
        result = Evaluator(split, ks=(1,)).evaluate(scorer)
        assert result.n_users == 3

    def test_non_model_rejected(self, split):
        with pytest.raises(ConfigError):
            Evaluator(split).evaluate(object())

    def test_wrong_score_shape_rejected(self, split):
        scorer = SimpleNamespace(predict_user=lambda user: np.zeros(3))
        with pytest.raises(DataError):
            Evaluator(split).evaluate(scorer)

    def test_validation_mode_selects_on_validation(self, split):
        def validation_oracle(user):
            scores = np.zeros(split.n_items)
            if len(split.validation.positives(user)):
                scores[split.validation.positives(user)] = 5.0
            return scores

        evaluator = Evaluator(split, ks=(1,), use_validation_as_relevant=True)
        result = evaluator.evaluate(SimpleNamespace(predict_user=validation_oracle))
        assert result.n_users == 1  # only user 0 has a validation pair
        assert result["precision@1"] == pytest.approx(1.0)

    def test_validation_mode_requires_validation(self):
        train = InteractionMatrix.from_pairs([(0, 0)], 1, 3)
        test = InteractionMatrix.from_pairs([(0, 1)], 1, 3)
        split = DatasetSplit(name="noval", train=train, test=test)
        with pytest.raises(DataError):
            Evaluator(split, use_validation_as_relevant=True)


class TestConfiguration:
    def test_metric_keys_cover_all_ks(self, split):
        evaluator = Evaluator(split, ks=(3, 5))
        keys = evaluator.metric_keys()
        assert "precision@3" in keys and "ndcg@5" in keys
        assert keys[-3:] == ["map", "mrr", "auc"]

    def test_empty_ks_rejected(self, split):
        with pytest.raises(ConfigError):
            Evaluator(split, ks=())

    def test_invalid_k_rejected(self, split):
        with pytest.raises(ConfigError):
            Evaluator(split, ks=(0,))

    def test_max_users_subsamples(self, split):
        evaluator = Evaluator(split, ks=(1,), max_users=2, seed=0)
        assert len(evaluator.users) == 2

    def test_per_user_arrays_kept(self, split):
        evaluator = Evaluator(split, ks=(1,), keep_per_user=True)
        result = evaluator.evaluate(OracleModel(split))
        assert result.per_user is not None
        assert len(result.per_user["map"]) == result.n_users

    def test_as_row(self, split):
        result = Evaluator(split, ks=(1,)).evaluate(OracleModel(split))
        row = result.as_row(["map", "mrr"])
        assert row == [result["map"], result["mrr"]]

    def test_convenience_wrapper(self, split):
        result = evaluate_model(OracleModel(split), split, ks=(1,))
        assert result["precision@1"] == pytest.approx(1.0)


class TestEmptyTestUsers:
    """Users with no test positives must not dilute the metric means."""

    @pytest.fixture
    def sparse_split(self):
        """4 users, 6 items; users 1 and 3 have NO test positives."""
        train = InteractionMatrix.from_pairs(
            [(0, 0), (1, 1), (2, 2), (3, 3)], 4, 6
        )
        test = InteractionMatrix.from_pairs([(0, 4), (2, 5)], 4, 6)
        return DatasetSplit(name="sparse", train=train, test=test, validation=None)

    def test_contributing_user_count_is_pinned(self, sparse_split):
        """Regression: only the 2 users with test positives contribute."""
        result = Evaluator(sparse_split, ks=(1,)).evaluate(OracleModel(sparse_split))
        assert result.n_users == 2

    def test_means_average_only_contributing_users(self, sparse_split):
        result = Evaluator(sparse_split, ks=(1,), keep_per_user=True).evaluate(
            OracleModel(sparse_split)
        )
        # An oracle is perfect on every *contributing* user; if empty-test
        # users leaked in as zeros (or NaNs) the mean would drop below 1.
        assert result["map"] == pytest.approx(1.0)
        assert result["auc"] == pytest.approx(1.0)
        assert len(result.per_user["map"]) == 2
        assert not np.isnan(result.per_user["map"]).any()

    def test_sequential_path_pins_the_same_count(self, sparse_split):
        """The non-chunked protocol agrees on who contributes."""
        chunked = Evaluator(sparse_split, ks=(1,), chunk_size=1).evaluate(
            OracleModel(sparse_split)
        )
        wide = Evaluator(sparse_split, ks=(1,), chunk_size=1024).evaluate(
            OracleModel(sparse_split)
        )
        assert chunked.n_users == wide.n_users == 2
        assert chunked.metrics == wide.metrics

    def test_constant_scorer_gets_exactly_half_auc(self, sparse_split):
        """Tie-credit fix, end to end: constant scores -> AUC exactly 0.5."""

        def constant(user):
            return np.zeros(sparse_split.n_items)

        result = Evaluator(sparse_split, ks=(1,)).evaluate(
            SimpleNamespace(predict_user=constant)
        )
        assert result["auc"] == 0.5
