"""Edge cases for ``retry_call`` on an injected (fake) sleep.

The real supervision paths pass ``sleep=clock.sleep``; here every test
records the requested delays instead of sleeping, so the exact backoff
schedule — including the zero-delay and capped variants — is asserted
without any wall-clock time passing.
"""

from __future__ import annotations

import pytest

from repro.resilience.chaos import SimulatedKill
from repro.resilience.retry import retry_call
from repro.utils.clock import FakeClock
from repro.utils.exceptions import ConfigError


class Flaky:
    """Fails with ``error`` until ``fail_times`` calls have happened."""

    def __init__(self, fail_times: int, error: type[BaseException] = ValueError):
        self.fail_times = fail_times
        self.error = error
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.error(f"attempt {self.calls} failed")
        return "ok"


@pytest.fixture
def delays():
    return []


@pytest.fixture
def sleep(delays):
    return delays.append


class TestExhaustion:
    def test_exhausted_retries_reraise_the_last_error(self, sleep, delays):
        fn = Flaky(fail_times=10)
        with pytest.raises(ValueError, match="attempt 3 failed"):
            retry_call(fn, retries=2, base_delay=1.0, sleep=sleep)
        assert fn.calls == 3  # initial call + 2 retries
        assert delays == [1.0, 2.0]  # no sleep after the final failure

    def test_retries_zero_means_exactly_one_attempt(self, sleep, delays):
        fn = Flaky(fail_times=1)
        with pytest.raises(ValueError, match="attempt 1"):
            retry_call(fn, retries=0, sleep=sleep)
        assert fn.calls == 1
        assert delays == []

    def test_success_on_the_last_allowed_attempt(self, sleep):
        fn = Flaky(fail_times=2)
        assert retry_call(fn, retries=2, base_delay=1.0, sleep=sleep) == "ok"
        assert fn.calls == 3


class TestSchedule:
    def test_zero_base_delay_never_calls_sleep(self, sleep, delays):
        fn = Flaky(fail_times=3)
        assert retry_call(fn, retries=3, base_delay=0.0, sleep=sleep) == "ok"
        assert delays == []  # zero-delay schedule skips sleep entirely

    def test_uncapped_schedule_is_geometric(self, sleep, delays):
        fn = Flaky(fail_times=4)
        retry_call(fn, retries=4, base_delay=0.5, factor=2.0, sleep=sleep)
        assert delays == [0.5, 1.0, 2.0, 4.0]

    def test_max_delay_clamps_the_tail(self, sleep, delays):
        fn = Flaky(fail_times=4)
        retry_call(
            fn, retries=4, base_delay=0.5, factor=2.0, max_delay=1.5, sleep=sleep
        )
        assert delays == [0.5, 1.0, 1.5, 1.5]

    def test_fake_clock_sleep_is_a_valid_injected_sleep(self):
        clock = FakeClock()
        fn = Flaky(fail_times=2)
        assert retry_call(fn, retries=2, base_delay=1.0, sleep=clock.sleep) == "ok"
        assert clock.now == pytest.approx(3.0)  # 1.0 + 2.0 advanced, not slept


class TestFiltering:
    def test_non_retryable_exception_propagates_immediately(self, sleep, delays):
        fn = Flaky(fail_times=5, error=KeyError)
        with pytest.raises(KeyError):
            retry_call(fn, retries=5, retryable=(ValueError,), sleep=sleep)
        assert fn.calls == 1
        assert delays == []

    def test_base_exceptions_are_never_swallowed(self, sleep):
        fn = Flaky(fail_times=5, error=SimulatedKill)
        with pytest.raises(SimulatedKill):
            retry_call(fn, retries=5, sleep=sleep)
        assert fn.calls == 1


class TestCallbacks:
    def test_on_retry_sees_each_attempt_and_error(self, sleep):
        seen = []
        fn = Flaky(fail_times=2)
        retry_call(
            fn,
            retries=2,
            base_delay=0.0,
            on_retry=lambda attempt, error: seen.append((attempt, str(error))),
            sleep=sleep,
        )
        assert seen == [(0, "attempt 1 failed"), (1, "attempt 2 failed")]

    def test_on_retry_not_called_on_the_final_failure(self, sleep):
        seen = []
        fn = Flaky(fail_times=10)
        with pytest.raises(ValueError):
            retry_call(
                fn,
                retries=1,
                base_delay=0.0,
                on_retry=lambda attempt, error: seen.append(attempt),
                sleep=sleep,
            )
        assert seen == [0]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
        ],
    )
    def test_bad_config_is_rejected_before_any_call(self, kwargs):
        calls = []
        with pytest.raises(ConfigError):
            retry_call(lambda: calls.append(1), **kwargs)
        assert calls == []
