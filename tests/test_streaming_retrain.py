"""Drift signals, the auto-retrain manager, and time-decay reranking.

Drift detection runs against a real :class:`RecommendationService` with
fault injection (fallback rate), slot swaps (score shift), and fed
batch sizes (volume anomaly).  The retrain manager's retry/backoff
schedule is asserted on a :class:`FakeClock`; promotion and rejection
go through a real :class:`ModelReloader` canary over held-out NDCG.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import make_profile_dataset, train_test_split
from repro.mf.params import FactorParams
from repro.mf.sgd import SGDConfig
from repro.models import BPR
from repro.persistence import save_factors
from repro.resilience.chaos import InjectedFault, ServiceFaultInjector
from repro.serving import (
    FakeClock,
    InlineExecutor,
    ModelReloader,
    RecommendationService,
    ServiceConfig,
)
from repro.streaming import (
    AutoRetrainManager,
    DriftMonitor,
    DriftThresholds,
    RetrainConfig,
    TimeDecayReranker,
)
from repro.utils.exceptions import ConfigError

THRESHOLDS = DriftThresholds(min_requests=5)


@pytest.fixture(scope="module")
def split():
    dataset = make_profile_dataset("ML100K", scale=0.2, seed=7)
    return train_test_split(dataset, seed=7)


@pytest.fixture(scope="module")
def bpr(split):
    return BPR(n_factors=8, sgd=SGDConfig(n_epochs=2), seed=0).fit(
        split.train, split.validation
    )


@pytest.fixture
def rig(split, bpr):
    clock = FakeClock()
    chaos = ServiceFaultInjector(clock)
    service = RecommendationService.build(
        bpr,
        split.train,
        config=ServiceConfig(default_deadline_ms=50.0),
        executor=InlineExecutor(clock=clock),
        clock=clock,
        chaos=chaos,
    )
    users = np.flatnonzero(split.train.user_counts() > 0)
    return service, chaos, users


class _ShiftedModel:
    """Slot stand-in whose probe scores sit far from the baseline."""

    def __init__(self, shift: float):
        self.shift = shift

    def predict_batch(self, users):
        return np.full((len(users), 3), self.shift)


class TestDriftMonitor:
    def test_healthy_service_is_clean(self, rig):
        service, _, users = rig
        monitor = DriftMonitor(service, thresholds=THRESHOLDS)
        for user in users[:10]:
            service.recommend(int(user))
        report = monitor.check()
        assert not report.drifted
        assert report.reasons == ()
        assert report.signals.requests == 10
        assert report.to_json_dict()["drifted"] is False

    def test_fallback_rate_trips_after_min_requests(self, rig):
        service, chaos, users = rig
        monitor = DriftMonitor(service, thresholds=THRESHOLDS)
        chaos.inject("personalized", exception=True)
        chaos.inject("itemknn", exception=True)
        chaos.inject("fold_in", exception=True)
        for user in users[:10]:
            service.recommend(int(user))  # all served by popularity
        report = monitor.check()
        assert report.drifted
        assert any("fallback rate" in reason for reason in report.reasons)

    def test_min_requests_gates_the_fallback_signal(self, rig):
        service, chaos, users = rig
        monitor = DriftMonitor(
            service, thresholds=DriftThresholds(min_requests=1000)
        )
        chaos.inject("personalized", exception=True)
        chaos.inject("itemknn", exception=True)
        chaos.inject("fold_in", exception=True)
        for user in users[:10]:
            service.recommend(int(user))
        assert not monitor.check().drifted

    def test_score_shift_trips_and_rebase_clears(self, rig):
        service, _, _ = rig
        monitor = DriftMonitor(service, thresholds=THRESHOLDS)
        service.slot.swap(_ShiftedModel(1e6), version="shifted")
        report = monitor.check()
        assert report.drifted
        assert any("score distribution" in reason for reason in report.reasons)
        monitor.rebase()  # the shifted model is the new normal
        assert not monitor.check().drifted

    def test_nan_poisoned_model_is_infinitely_shifted(self, rig):
        service, _, _ = rig
        monitor = DriftMonitor(service, thresholds=THRESHOLDS)
        service.slot.swap(_ShiftedModel(float("nan")), version="poisoned")
        report = monitor.check()
        assert report.drifted
        assert report.signals.score_shift == float("inf")

    def test_volume_anomaly_surge_and_collapse(self, rig):
        service, _, _ = rig
        monitor = DriftMonitor(service, thresholds=THRESHOLDS)
        assert monitor.observe_volume(50) == 1.0  # first batch seeds the EWMA
        monitor.observe_volume(50)
        assert not monitor.check().drifted
        monitor.observe_volume(500)  # 10x surge
        report = monitor.check()
        assert report.drifted
        assert any("volume" in reason for reason in report.reasons)
        monitor.rebase()
        monitor.observe_volume(50)
        monitor.observe_volume(2)  # collapse
        assert monitor.check().drifted

    def test_requires_slot_and_probe_users(self, rig, split):
        service, _, _ = rig
        with pytest.raises(ConfigError):
            DriftMonitor(service, probe_users=[])
        service.slot = None
        with pytest.raises(ConfigError):
            DriftMonitor(service)


class _StubReloader:
    """Minimal reloader double: returns a scripted poll result."""

    def __init__(self, result):
        self.result = result
        self.polls = 0

    def poll(self):
        self.polls += 1
        return self.result


class _Result:
    def __init__(self, status, reason="r", version=None):
        self.status = status
        self.reason = reason
        self.version = version

    @property
    def accepted(self):
        return self.status == "accepted"


class TestAutoRetrainManager:
    def test_clean_drift_report_skips(self, rig):
        service, _, _ = rig
        monitor = DriftMonitor(service, thresholds=THRESHOLDS)
        calls = []
        manager = AutoRetrainManager(
            lambda: calls.append(1), _StubReloader(_Result("accepted"))
        )
        report = manager.maybe_retrain(monitor.check())
        assert report.status == "skipped"
        assert calls == []

    def test_single_flight_rejects_reentrant_trigger(self):
        inner: list = []
        reloader = _StubReloader(_Result("accepted", version="v2"))

        def trainer():
            inner.append(manager.maybe_retrain())

        manager = AutoRetrainManager(trainer, reloader)
        report = manager.maybe_retrain()
        assert report.status == "promoted"
        assert inner[0].status == "skipped"
        assert "in flight" in inner[0].reason

    def test_retry_backoff_schedule_on_fake_clock(self):
        clock = FakeClock()
        attempts: list[int] = []

        def flaky_trainer():
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise InjectedFault("transient")

        manager = AutoRetrainManager(
            flaky_trainer,
            _StubReloader(_Result("accepted", version="v2")),
            config=RetrainConfig(max_retries=2, base_delay_s=0.5, backoff_factor=2.0),
            clock=clock,
        )
        report = manager.maybe_retrain()
        assert report.status == "promoted"
        assert report.attempts == 3
        assert clock.now == pytest.approx(0.5 + 1.0)  # 0.5 * 2**a

    def test_exhausted_retries_fail_without_promotion(self):
        clock = FakeClock()
        reloader = _StubReloader(_Result("accepted"))

        def dead_trainer():
            raise InjectedFault("permanently broken")

        manager = AutoRetrainManager(
            dead_trainer,
            reloader,
            config=RetrainConfig(max_retries=2, base_delay_s=0.5),
            clock=clock,
        )
        report = manager.maybe_retrain()
        assert report.status == "failed"
        assert report.attempts == 3
        assert reloader.polls == 0  # a failed trainer never reaches the gate
        assert not report.promoted

    def test_trainer_that_writes_nothing_fails(self):
        manager = AutoRetrainManager(
            lambda: None, _StubReloader(_Result("unchanged", reason="no candidate"))
        )
        report = manager.maybe_retrain()
        assert report.status == "failed"
        assert "no new candidate" in report.reason

    def test_concurrent_triggers_run_exactly_one_trainer(self):
        started = threading.Event()
        release = threading.Event()
        runs = []

        def slow_trainer():
            runs.append(1)
            started.set()
            release.wait(timeout=5)

        manager = AutoRetrainManager(
            slow_trainer, _StubReloader(_Result("accepted", version="v2"))
        )
        results = {}
        thread = threading.Thread(
            target=lambda: results.update(first=manager.maybe_retrain())
        )
        thread.start()
        assert started.wait(timeout=5)
        results["second"] = manager.maybe_retrain()  # lock is held
        release.set()
        thread.join(timeout=5)
        assert runs == [1]
        assert results["second"].status == "skipped"
        assert results["first"].status == "promoted"


class TestCanaryEndToEnd:
    def make_gate(self, rig, split, tmp_path):
        service, _, _ = rig
        candidate_path = tmp_path / "candidate.npz"
        reloader = ModelReloader(
            service.slot, candidate_path, split.train, split.validation
        )
        return service, candidate_path, reloader

    def test_identical_candidate_promotes(self, rig, split, bpr, tmp_path):
        service, candidate_path, reloader = self.make_gate(rig, split, tmp_path)

        def trainer():
            save_factors(
                candidate_path, bpr.params_, metadata={"version_tag": "retrained-1"}
            )

        manager = AutoRetrainManager(trainer, reloader)
        report = manager.maybe_retrain()
        assert report.status == "promoted"
        assert report.reload is not None and report.reload.accepted
        assert service.slot.version == "retrained-1"
        assert report.to_json_dict()["reload_status"] == "accepted"

    def test_poisoned_candidate_is_rejected_and_last_good_serves(
        self, rig, split, bpr, tmp_path
    ):
        service, candidate_path, reloader = self.make_gate(rig, split, tmp_path)
        before = service.slot.version
        poisoned = FactorParams(
            np.full_like(bpr.params_.user_factors, np.nan),
            bpr.params_.item_factors.copy(),
            bpr.params_.item_bias.copy(),
        )

        def trainer():
            save_factors(
                candidate_path, poisoned, metadata={"version_tag": "poisoned-1"}
            )

        manager = AutoRetrainManager(trainer, reloader)
        report = manager.maybe_retrain()
        assert report.status == "rejected"
        assert service.slot.version == before  # last-good keeps serving


class TestTimeDecayReranker:
    def test_no_history_is_identity(self):
        reranker = TimeDecayReranker({})
        ranked = [5, 3, 9]
        assert list(reranker.rerank(ranked, now=100.0)) == ranked

    def test_recent_item_climbs_over_untracked(self):
        # Ranks [a, b, c]; c was just seen, a and b decay to the floor:
        # weights 1*0.5, 0.5*0.5, (1/3)*1.0 -> order a, c, b.
        reranker = TimeDecayReranker({9: 100.0}, half_life_s=60.0, floor=0.5)
        assert list(reranker.rerank([5, 3, 9], now=100.0)) == [5, 9, 3]

    def test_decay_halves_per_half_life(self):
        reranker = TimeDecayReranker({1: 0.0}, half_life_s=10.0, floor=0.0)
        assert reranker.decay(1, now=0.0) == pytest.approx(1.0)
        assert reranker.decay(1, now=10.0) == pytest.approx(0.5)
        assert reranker.decay(1, now=20.0) == pytest.approx(0.25)
        assert reranker.decay(2, now=0.0) == 0.0  # untracked -> floor

    def test_floor_bounds_tracked_decay(self):
        reranker = TimeDecayReranker({1: 0.0}, half_life_s=1.0, floor=0.4)
        assert reranker.decay(1, now=1e6) == 0.4

    def test_ties_are_stable(self):
        reranker = TimeDecayReranker({7: 50.0, 8: 50.0}, half_life_s=60.0)
        assert list(reranker.rerank([7, 8], now=50.0)) == [7, 8]

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TimeDecayReranker({}, half_life_s=0.0)
        with pytest.raises(ConfigError):
            TimeDecayReranker({}, floor=1.5)

    def test_default_now_shares_the_feedback_ts_timebase(self):
        # item_last_seen_ holds client wall-clock epoch timestamps, so
        # the default `now` must be the clock's *wall* reading — a
        # monotonic default would make every age negative (clamped to
        # 0), decay everything to 1.0, and silently disable recency.
        clock = FakeClock(start=100.0)
        reranker = TimeDecayReranker(
            {9: 100.0, 5: 40.0}, half_life_s=60.0, floor=0.5, clock=clock
        )
        # At wall time 100: item 9 just seen (decay 1.0), item 5 aged
        # 60s (decay 0.5) -> same ordering as an explicit now=100.
        assert list(reranker.rerank([5, 3, 9])) == list(
            reranker.rerank([5, 3, 9], now=100.0)
        )
        assert list(reranker.rerank([5, 3, 9])) == [5, 9, 3]
