"""Tests of the cold-start fold-in machinery."""

import numpy as np
import pytest

from repro.data.split import train_test_split
from repro.metrics.topk import top_k_items
from repro.mf.fold_in import FoldInResult, fold_in_user_bpr, fold_in_user_ridge
from repro.mf.params import FactorParams
from repro.models.bpr import BPR
from repro.mf.sgd import SGDConfig
from repro.utils.exceptions import ConfigError, DataError


@pytest.fixture(scope="module")
def trained(learnable_dataset):
    split = train_test_split(learnable_dataset, seed=0)
    model = BPR(n_factors=8, sgd=SGDConfig(n_epochs=40, learning_rate=0.08), seed=0)
    model.fit(split.train)
    return model, split


class TestValidation:
    def test_empty_positives_rejected(self):
        params = FactorParams.init(3, 5, 2, seed=0)
        with pytest.raises(DataError):
            fold_in_user_ridge(params, [])
        with pytest.raises(DataError):
            fold_in_user_bpr(params, [])

    def test_out_of_range_items_rejected(self):
        params = FactorParams.init(3, 5, 2, seed=0)
        with pytest.raises(DataError):
            fold_in_user_ridge(params, [7])

    def test_bad_hyperparameters(self):
        params = FactorParams.init(3, 5, 2, seed=0)
        with pytest.raises(ConfigError):
            fold_in_user_ridge(params, [0], reg=0.0)
        with pytest.raises(ConfigError):
            fold_in_user_bpr(params, [0], n_steps=0)


class TestBehaviour:
    @pytest.mark.parametrize("fold_in", [fold_in_user_ridge, fold_in_user_bpr])
    def test_fold_in_ranks_similar_items_high(self, fold_in, trained):
        """A 'new user' cloned from an existing user's history should be
        recommended roughly what that user would be."""
        model, split = trained
        user = int(np.argmax(split.train.user_counts()))
        history = split.train.positives(user)
        result = fold_in(model.params_, history, seed=0) if fold_in is fold_in_user_bpr else fold_in(model.params_, history)
        assert isinstance(result, FoldInResult)

        folded_top = set(int(i) for i in result.recommend(20, exclude=history))
        native_top = set(
            int(i) for i in top_k_items(model.predict_user(user), 20, exclude=history)
        )
        # Substantial overlap with the native user's recommendations.
        assert len(folded_top & native_top) >= 5

    def test_ridge_scores_history_items_high(self, trained):
        model, split = trained
        user = int(np.argmax(split.train.user_counts()))
        history = split.train.positives(user)
        result = fold_in_user_ridge(model.params_, history)
        scores = result.predict()
        mask = np.zeros(split.n_items, dtype=bool)
        mask[history] = True
        assert scores[mask].mean() > scores[~mask].mean()

    def test_bpr_fold_in_deterministic_with_seed(self, trained):
        model, _ = trained
        a = fold_in_user_bpr(model.params_, [0, 1, 2], seed=5)
        b = fold_in_user_bpr(model.params_, [0, 1, 2], seed=5)
        assert np.array_equal(a.user_vector, b.user_vector)

    def test_model_untouched(self, trained):
        model, split = trained
        before = model.params_.user_factors.copy()
        fold_in_user_ridge(model.params_, split.train.positives(0))
        fold_in_user_bpr(model.params_, split.train.positives(0), seed=0)
        assert np.array_equal(model.params_.user_factors, before)

    def test_predict_shape(self, trained):
        model, split = trained
        result = fold_in_user_ridge(model.params_, [0])
        assert result.predict().shape == (split.n_items,)
