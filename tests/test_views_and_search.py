"""Tests of synthetic view data, MPR's view mode, random search, Holm,
and the Dropout layer."""

import numpy as np
import pytest

from repro.analysis.significance import holm_bonferroni
from repro.core.clapf import CLAPF
from repro.data.synthetic import SyntheticConfig, generate_synthetic_with_views
from repro.data.split import train_test_split
from repro.experiments.grid import random_search
from repro.mf.sgd import SGDConfig
from repro.models.mpr import MPR
from repro.neural.autograd import Tensor
from repro.neural.layers import Dropout
from repro.utils.exceptions import ConfigError


@pytest.fixture(scope="module")
def dataset_with_views():
    config = SyntheticConfig(n_users=80, n_items=120, density=0.06, latent_dim=3)
    return generate_synthetic_with_views(config, seed=5, view_ratio=1.0)


class TestSyntheticViews:
    def test_views_disjoint_from_positives(self, dataset_with_views):
        dataset, views = dataset_with_views
        assert not dataset.interactions.intersects(views)

    def test_view_counts_track_ratio(self, dataset_with_views):
        dataset, views = dataset_with_views
        ratio = views.n_interactions / dataset.n_interactions
        assert 0.7 < ratio < 1.3

    def test_views_have_higher_logits_than_random(self):
        """Views are exposed items — they should skew toward the user's taste."""
        config = SyntheticConfig(
            n_users=50, n_items=200, density=0.05, latent_dim=3,
            signal=10.0, popularity_weight=0.0, popularity_exponent=0.0,
        )
        from repro.data.synthetic import _generate
        rng = np.random.default_rng(2)
        _, views, truth = _generate(config, rng, view_ratio=1.0)
        gaps = []
        for user in range(50):
            viewed = views.positives(user)
            if not len(viewed):
                continue
            affinity = truth.affinity(user)
            gaps.append(affinity[viewed].mean() - affinity.mean())
        assert np.mean(gaps) > 0.05

    def test_invalid_ratio(self):
        config = SyntheticConfig(n_users=10, n_items=20, density=0.1)
        with pytest.raises(ConfigError):
            generate_synthetic_with_views(config, view_ratio=0.0)


class TestMPRWithViews:
    def test_uncertain_items_come_from_views(self, dataset_with_views):
        dataset, views = dataset_with_views
        split = train_test_split(dataset, seed=5)
        # Views are disjoint from all positives, so they stay unobserved
        # relative to the training matrix.
        model = MPR(n_factors=4, view_data=views, sgd=SGDConfig(n_epochs=1), seed=0)
        model.fit(split.train)
        rng = np.random.default_rng(0)
        batch = model._make_batch(400, rng)
        from_views = sum(
            1 for user, item in zip(batch.users, batch.pos_k)
            if views.contains(int(user), int(item))
        )
        assert from_views > 350  # nearly all users have views

    def test_view_mode_trains(self, dataset_with_views):
        dataset, views = dataset_with_views
        split = train_test_split(dataset, seed=5)
        model = MPR(
            n_factors=8, view_data=views,
            sgd=SGDConfig(n_epochs=10, learning_rate=0.08), seed=0,
        )
        model.fit(split.train)
        assert model.loss_history_[-1] < model.loss_history_[0]


class TestRandomSearch:
    def test_draws_from_sequences_and_callables(self, learnable_split):
        result = random_search(
            lambda tradeoff, lr: CLAPF(
                "map", tradeoff=tradeoff,
                sgd=SGDConfig(n_epochs=4, learning_rate=lr), seed=0,
            ),
            {
                "tradeoff": [0.0, 0.3, 0.6],
                "lr": lambda rng: float(rng.uniform(0.02, 0.1)),
            },
            learnable_split,
            n_iterations=4,
            seed=1,
        )
        assert len(result.scores) == 4
        assert result.best_params["tradeoff"] in (0.0, 0.3, 0.6)
        assert 0.02 <= result.best_params["lr"] <= 0.1

    def test_validation_required(self, learnable_dataset):
        split = train_test_split(learnable_dataset, validation_per_user=0, seed=0)
        with pytest.raises(ConfigError):
            random_search(lambda: None, {"x": [1]}, split)

    def test_invalid_iterations(self, learnable_split):
        with pytest.raises(ConfigError):
            random_search(lambda: None, {"x": [1]}, learnable_split, n_iterations=0)


class TestHolmBonferroni:
    def test_all_tiny_pvalues_significant(self):
        decisions = holm_bonferroni({"a": 1e-6, "b": 1e-5, "c": 1e-4})
        assert all(decisions.values())

    def test_step_down_blocks_later_hypotheses(self):
        decisions = holm_bonferroni({"a": 0.001, "b": 0.04, "c": 0.9}, level=0.05)
        assert decisions["a"] is True
        # b: threshold 0.05/2 = 0.025 < 0.04 -> rejected, and c after it.
        assert decisions["b"] is False
        assert decisions["c"] is False

    def test_empty(self):
        assert holm_bonferroni({}) == {}


class TestDropout:
    def test_inactive_by_default(self):
        layer = Dropout(0.5, seed=0)
        x = Tensor(np.ones((4, 4)))
        assert np.array_equal(layer(x).data, x.data)

    def test_training_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, seed=0).train()
        x = Tensor(np.ones((200, 50)))
        out = layer(x).data
        zero_fraction = np.mean(out == 0.0)
        assert 0.4 < zero_fraction < 0.6
        surviving = out[out != 0]
        assert np.allclose(surviving, 2.0)  # 1 / (1 - 0.5)

    def test_eval_restores_identity(self):
        layer = Dropout(0.5, seed=0).train().eval()
        x = Tensor(np.ones(10))
        assert np.array_equal(layer(x).data, x.data)

    def test_gradient_flows_through_mask(self):
        layer = Dropout(0.5, seed=0).train()
        x = Tensor(np.ones(100), requires_grad=True)
        layer(x).sum().backward()
        # Gradient equals the mask scaling: 0 or 2.
        assert set(np.unique(x.grad)).issubset({0.0, 2.0})

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            Dropout(1.0)
