"""Tests of the paper's train/test/validation split protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import DatasetSplit
from repro.data.interactions import InteractionMatrix
from repro.data.split import (
    holdout_validation_pairs,
    repeated_splits,
    split_pairs,
    train_test_split,
)
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.utils.exceptions import ConfigError, DataError


@pytest.fixture
def dataset():
    config = SyntheticConfig(n_users=40, n_items=60, density=0.08, latent_dim=3)
    return generate_synthetic(config, seed=3, name="split-test")


class TestSplitPairs:
    def test_partition_is_disjoint_and_complete(self, dataset):
        train, test = split_pairs(dataset.interactions, 0.5, seed=0)
        assert not train.intersects(test)
        assert train.union(test) == dataset.interactions

    def test_fraction_respected(self, dataset):
        train, test = split_pairs(dataset.interactions, 0.5, seed=0)
        total = dataset.n_interactions
        assert train.n_interactions == round(0.5 * total)
        assert train.n_interactions + test.n_interactions == total

    def test_extreme_fractions(self, dataset):
        train, test = split_pairs(dataset.interactions, 1.0, seed=0)
        assert test.n_interactions == 0
        train, test = split_pairs(dataset.interactions, 0.0, seed=0)
        assert train.n_interactions == 0

    def test_invalid_fraction_rejected(self, dataset):
        with pytest.raises(ConfigError):
            split_pairs(dataset.interactions, 1.5)

    def test_deterministic_given_seed(self, dataset):
        a = split_pairs(dataset.interactions, 0.5, seed=42)
        b = split_pairs(dataset.interactions, 0.5, seed=42)
        assert a[0] == b[0] and a[1] == b[1]

    def test_different_seeds_differ(self, dataset):
        a, _ = split_pairs(dataset.interactions, 0.5, seed=1)
        b, _ = split_pairs(dataset.interactions, 0.5, seed=2)
        assert a != b


class TestHoldoutValidation:
    def test_one_pair_held_per_eligible_user(self, dataset):
        train, _ = split_pairs(dataset.interactions, 0.7, seed=0)
        kept, held = holdout_validation_pairs(train, per_user=1, seed=0)
        held_counts = held.user_counts()
        for user in range(train.n_users):
            if train.n_positives(user) > 1:
                assert held_counts[user] == 1
            else:
                assert held_counts[user] == 0

    def test_held_plus_kept_equals_train(self, dataset):
        train, _ = split_pairs(dataset.interactions, 0.7, seed=0)
        kept, held = holdout_validation_pairs(train, per_user=1, seed=0)
        assert not kept.intersects(held)
        assert kept.union(held) == train

    def test_single_positive_users_keep_their_pair(self):
        train = InteractionMatrix.from_pairs([(0, 1)], 1, 3)
        kept, held = holdout_validation_pairs(train, seed=0)
        assert kept == train
        assert held.n_interactions == 0

    def test_invalid_per_user(self, dataset):
        with pytest.raises(ConfigError):
            holdout_validation_pairs(dataset.interactions, per_user=0)


class TestTrainTestSplit:
    def test_three_way_disjoint(self, dataset):
        split = train_test_split(dataset, seed=5)
        assert not split.train.intersects(split.test)
        assert not split.train.intersects(split.validation)
        assert not split.test.intersects(split.validation)

    def test_observed_union_recovers_dataset(self, dataset):
        split = train_test_split(dataset, seed=5)
        assert split.observed_union() == dataset.interactions

    def test_no_validation_mode(self, dataset):
        split = train_test_split(dataset, validation_per_user=0, seed=5)
        assert split.validation is None

    def test_describe_matches_table1_shape(self, dataset):
        split = train_test_split(dataset, seed=5)
        stats = split.describe()
        assert set(stats) == {"dataset", "n", "m", "train_pairs", "test_pairs", "density"}
        assert stats["density"] == pytest.approx(dataset.density)

    def test_test_users_have_test_positives(self, dataset):
        split = train_test_split(dataset, seed=5)
        for user in split.test_users():
            assert split.test.n_positives(int(user)) > 0


class TestRepeatedSplits:
    def test_five_copies_differ(self, dataset):
        splits = repeated_splits(dataset, repeats=5, seed=9)
        assert len(splits) == 5
        assert any(splits[0].train != s.train for s in splits[1:])

    def test_reproducible(self, dataset):
        a = repeated_splits(dataset, repeats=3, seed=9)
        b = repeated_splits(dataset, repeats=3, seed=9)
        for x, y in zip(a, b):
            assert x.train == y.train and x.test == y.test

    def test_invalid_repeats(self, dataset):
        with pytest.raises(ConfigError):
            repeated_splits(dataset, repeats=0)


class TestDatasetSplitValidation:
    def test_overlapping_train_test_rejected(self):
        m = InteractionMatrix.from_pairs([(0, 0), (0, 1)], 2, 3)
        with pytest.raises(DataError):
            DatasetSplit(name="bad", train=m, test=m)

    def test_shape_mismatch_rejected(self):
        train = InteractionMatrix.from_pairs([(0, 0)], 2, 3)
        test = InteractionMatrix.from_pairs([(0, 1)], 2, 4)
        with pytest.raises(DataError):
            DatasetSplit(name="bad", train=train, test=test)


@given(fraction=st.floats(min_value=0.1, max_value=0.9), seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_split_partition_property(fraction, seed):
    config = SyntheticConfig(n_users=15, n_items=25, density=0.15, latent_dim=2)
    dataset = generate_synthetic(config, seed=1)
    train, test = split_pairs(dataset.interactions, fraction, seed=seed)
    assert not train.intersects(test)
    assert train.union(test) == dataset.interactions
