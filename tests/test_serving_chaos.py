"""Service-level chaos: zero failed requests under injected faults.

The acceptance scenario: with the personalized tier failing 100% of the
time (NaN-poisoned scores, injected latency, raised exceptions), every
request is still answered with a ranked list by a lower tier within its
deadline, the sick tier's breaker opens within the sample window, and
half-open probes restore the tier once the faults stop.  All timing
runs on a :class:`FakeClock`, so injected latency advances simulated
time without the suite actually waiting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_profile_dataset, train_test_split
from repro.mf.sgd import SGDConfig
from repro.models import BPR
from repro.resilience.chaos import InjectedFault, ServiceFaultInjector, TierFault
from repro.serving import (
    CLOSED,
    OPEN,
    STATIC_POPULARITY,
    BreakerConfig,
    FakeClock,
    InlineExecutor,
    RecommendationRequest,
    RecommendationService,
    ServiceConfig,
)


@pytest.fixture(scope="module")
def split():
    dataset = make_profile_dataset("ML100K", scale=0.25, seed=9)
    return train_test_split(dataset, seed=9)


@pytest.fixture(scope="module")
def bpr(split):
    return BPR(n_factors=8, sgd=SGDConfig(n_epochs=2), seed=0).fit(
        split.train, split.validation
    )


@pytest.fixture
def rig(split, bpr):
    clock = FakeClock()
    chaos = ServiceFaultInjector(clock)
    service = RecommendationService.build(
        bpr,
        split.train,
        config=ServiceConfig(
            default_deadline_ms=50.0,
            breaker=BreakerConfig(
                window_seconds=30.0,
                min_calls=4,
                failure_rate_threshold=0.5,
                cooldown_seconds=5.0,
                half_open_successes=2,
            ),
        ),
        executor=InlineExecutor(clock=clock),
        clock=clock,
        chaos=chaos,
    )
    users = np.flatnonzero(split.train.user_counts() > 0)
    return service, chaos, clock, users


def drive(service, users, n, *, spacing_s=0.01):
    """Serve ``n`` requests round-robin over ``users``, spaced in time."""
    responses = []
    for t in range(n):
        response = service.recommend(
            RecommendationRequest(user=int(users[t % len(users)]), k=5)
        )
        # Invariant under every fault mix: the reported budget remainder
        # is clamped, never negative.
        assert response.deadline_ms_left >= 0.0
        responses.append(response)
        service.clock.advance(spacing_s)
    return responses


class TestFaultInjector:
    def test_inject_and_clear(self):
        chaos = ServiceFaultInjector(FakeClock())
        chaos.inject("personalized", nan_scores=True, latency_ms=10.0)
        assert chaos.faults["personalized"].armed
        chaos.clear("personalized")
        assert "personalized" not in chaos.faults

    def test_exception_fault_raises(self):
        chaos = ServiceFaultInjector(FakeClock())
        chaos.inject("itemknn", exception=True)
        with pytest.raises(InjectedFault):
            chaos.before_call("itemknn")
        assert chaos.fired_counts_["itemknn:exception"] == 1

    def test_latency_fault_advances_clock(self):
        clock = FakeClock()
        chaos = ServiceFaultInjector(clock)
        chaos.inject("personalized", latency_ms=80.0)
        chaos.before_call("personalized")
        assert clock.now == pytest.approx(0.080)

    def test_poison_scores_nans_half(self):
        chaos = ServiceFaultInjector(FakeClock())
        chaos.inject("personalized", nan_scores=True)
        poisoned = chaos.poison_scores("personalized", np.ones(10))
        assert np.isnan(poisoned).sum() == 5

    def test_unarmed_tier_untouched(self):
        chaos = ServiceFaultInjector(FakeClock())
        scores = np.ones(4)
        assert chaos.poison_scores("personalized", scores) is scores
        chaos.before_call("personalized")  # no-op

    def test_tier_fault_armed(self):
        assert not TierFault().armed
        assert TierFault(latency_ms=5.0).armed
        assert TierFault(exception=True).armed
        assert TierFault(nan_scores=True).armed


class TestZeroFailedRequests:
    def test_nan_poisoned_primary_never_drops_a_request(self, rig):
        """The headline acceptance test: 100% NaN faults, zero failures."""
        service, chaos, clock, users = rig
        chaos.inject("personalized", nan_scores=True)
        responses = drive(service, users, 40)
        # Every request answered, ranked, and within its deadline.
        assert len(responses) == 40
        for response in responses:
            assert len(response.items) == 5
            assert response.degraded
            assert response.served_by != "personalized"
            assert response.deadline_ms_left > 0
        # The breaker opened within the window: after min_calls=4
        # failures the tier stops being attempted at all.
        assert service.breakers["personalized"].state == OPEN
        assert service.stats["personalized"].failures == 4
        assert service.stats["personalized"].skipped_open == 36

    def test_latency_faulted_primary_times_out_not_blocks(self, rig):
        service, chaos, clock, users = rig
        chaos.inject("personalized", latency_ms=200.0)  # 4x the 50 ms budget
        responses = drive(service, users, 12)
        for response in responses:
            assert len(response.items) == 5
            assert response.degraded
        stats = service.stats["personalized"]
        assert stats.timeouts == 4  # min_calls timeouts, then breaker open
        assert service.breakers["personalized"].state == OPEN
        assert service.executor.overruns_ == 4

    def test_exception_faulted_primary(self, rig):
        service, chaos, clock, users = rig
        chaos.inject("personalized", exception=True)
        responses = drive(service, users, 10)
        assert all(r.served_by == "fold-in" for r in responses)
        assert "injected" in str(service.stats["personalized"].errors)

    def test_two_sick_tiers_cascade_to_third(self, rig):
        service, chaos, clock, users = rig
        chaos.inject("personalized", nan_scores=True)
        chaos.inject("fold-in", exception=True)
        responses = drive(service, users, 20)
        for response in responses:
            assert len(response.items) == 5
            assert response.served_by in ("itemknn", "popularity")
        assert service.breakers["personalized"].state == OPEN
        assert service.breakers["fold-in"].state == OPEN

    def test_every_tier_sick_still_serves_static_popularity(self, rig):
        service, chaos, clock, users = rig
        for tier in service.tiers:
            chaos.inject(tier.name, exception=True)
        responses = drive(service, users, 20)
        assert all(len(r.items) == 5 for r in responses)
        assert any(r.served_by == STATIC_POPULARITY for r in responses)
        assert service.stats[STATIC_POPULARITY].served > 0


class TestRecovery:
    def test_half_open_probes_restore_the_tier(self, rig):
        """Faults stop -> cooldown -> probes succeed -> tier is primary again."""
        service, chaos, clock, users = rig
        chaos.inject("personalized", nan_scores=True)
        drive(service, users, 10)
        breaker = service.breakers["personalized"]
        assert breaker.state == OPEN

        chaos.clear()  # the incident ends
        clock.advance(5.0)  # cooldown elapses -> half-open
        responses = drive(service, users, 3)
        # The first post-cooldown request is the successful probe; with
        # half_open_successes=2 the second closes the breaker.
        assert responses[0].served_by == "personalized"
        assert not responses[0].degraded
        assert breaker.state == CLOSED
        assert all(r.served_by == "personalized" for r in responses)

    def test_probe_failure_during_ongoing_incident_reopens(self, rig):
        service, chaos, clock, users = rig
        chaos.inject("personalized", nan_scores=True)
        drive(service, users, 8)
        breaker = service.breakers["personalized"]
        opened_before = breaker.opened_count_
        clock.advance(5.0)  # cooldown, but the fault is still armed
        responses = drive(service, users, 4)
        assert breaker.state == OPEN
        assert breaker.opened_count_ == opened_before + 1
        assert all(r.degraded for r in responses)

    def test_fallback_rate_reflects_the_incident(self, rig):
        service, chaos, clock, users = rig
        drive(service, users, 10)  # healthy
        assert service.fallback_rate() == 0.0
        chaos.inject("personalized", nan_scores=True)
        drive(service, users, 10)
        assert 0.0 < service.fallback_rate() <= 0.5
