"""Tests of the GMF / MLP standalone NCF components."""

import numpy as np
import pytest

from repro.neural.gmf import GMF, MLPRec


class TestGMF:
    def test_fit_predict(self, learnable_split):
        model = GMF(embedding_dim=8, n_epochs=3, seed=0).fit(learnable_split.train)
        scores = model.predict_user(0)
        assert scores.shape == (learnable_split.n_items,)
        assert np.isfinite(scores).all()

    def test_loss_decreases(self, learnable_split):
        model = GMF(embedding_dim=8, n_epochs=10, learning_rate=0.01, seed=0)
        model.fit(learnable_split.train)
        assert min(model.loss_history_) < model.loss_history_[0]

    def test_name(self):
        assert GMF().name == "GMF"

    def test_deterministic(self, learnable_split):
        a = GMF(embedding_dim=4, n_epochs=2, seed=3).fit(learnable_split.train)
        b = GMF(embedding_dim=4, n_epochs=2, seed=3).fit(learnable_split.train)
        assert np.allclose(a.predict_user(1), b.predict_user(1))


class TestNeuMFPretraining:
    def test_pretrained_branches_match_components(self, learnable_split):
        """After pretraining, NeuMF's GMF embeddings equal the standalone
        GMF's (they are copied, then fine-tuned — check before any epoch)."""
        from repro.neural.neumf import NeuMF

        model = NeuMF(
            embedding_dim=4, n_epochs=1, pretrain=True, pretrain_epochs=2, seed=0
        )
        model.fit(learnable_split.train)
        # The fusion layer is the alpha-weighted concatenation: its first
        # `dim` rows came from GMF, the rest from MLP (then one epoch of
        # fine-tuning) — shapes must line up.
        assert model._module.output.weight.shape == (4 + 2, 1)

    def test_pretrain_name(self):
        from repro.neural.neumf import NeuMF

        assert NeuMF(pretrain=True).name == "NeuMF(pre)"
        assert NeuMF().name == "NeuMF"

    def test_invalid_alpha(self):
        from repro.neural.neumf import NeuMF
        from repro.utils.exceptions import ConfigError

        with pytest.raises(ConfigError):
            NeuMF(pretrain=True, alpha=1.5)

    def test_pretrained_model_evaluates(self, learnable_split):
        from repro.metrics.evaluator import evaluate_model
        from repro.neural.neumf import NeuMF

        model = NeuMF(
            embedding_dim=8, n_epochs=3, pretrain=True, pretrain_epochs=3,
            learning_rate=0.01, seed=0,
        )
        model.fit(learnable_split.train)
        result = evaluate_model(model, learnable_split)
        assert 0.0 <= result["ndcg@5"] <= 1.0


class TestMLPRec:
    def test_fit_predict(self, learnable_split):
        model = MLPRec(embedding_dim=8, n_epochs=3, seed=0).fit(learnable_split.train)
        scores = model.predict_user(0)
        assert scores.shape == (learnable_split.n_items,)
        assert np.isfinite(scores).all()

    def test_loss_decreases(self, learnable_split):
        model = MLPRec(embedding_dim=8, n_epochs=10, learning_rate=0.01, seed=0)
        model.fit(learnable_split.train)
        assert min(model.loss_history_) < model.loss_history_[0]

    def test_name(self):
        assert MLPRec().name == "MLP"

    def test_parameter_counts_differ_from_gmf(self):
        """MLP's tower makes it strictly bigger than GMF at equal dim."""
        from repro.data.interactions import InteractionMatrix

        train = InteractionMatrix.from_pairs([(0, 0), (1, 1)], 4, 5)
        gmf = GMF(embedding_dim=8, n_epochs=1, seed=0).fit(train)
        mlp = MLPRec(embedding_dim=8, n_epochs=1, seed=0).fit(train)
        assert mlp._module.n_parameters() > gmf._module.n_parameters()
