"""Tests of the serving layer: deadlines, tiers, and the cascade.

Deterministic paths (deadline arithmetic, cascade ordering, provenance)
run on :class:`FakeClock` + :class:`InlineExecutor`; one test exercises
the real :class:`ThreadedExecutor` cut-off with a genuinely slow call.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_profile_dataset, train_test_split
from repro.mf.sgd import SGDConfig
from repro.models import BPR, ItemKNN, PopRank
from repro.serving import (
    STATIC_POPULARITY,
    BreakerConfig,
    Deadline,
    FakeClock,
    FoldInTier,
    InlineExecutor,
    ItemKNNTier,
    PersonalizedTier,
    PopularityTier,
    RecommendationRequest,
    RecommendationResponse,
    RecommendationService,
    ServiceConfig,
    ThreadedExecutor,
)
from repro.utils.exceptions import ConfigError, DeadlineExceeded, TierError


def warm_users(train):
    return np.flatnonzero(train.user_counts() > 0)


@pytest.fixture(scope="module")
def split():
    dataset = make_profile_dataset("ML100K", scale=0.25, seed=5)
    return train_test_split(dataset, seed=5)


@pytest.fixture(scope="module")
def bpr(split):
    return BPR(n_factors=8, sgd=SGDConfig(n_epochs=2), seed=0).fit(
        split.train, split.validation
    )


def make_service(model, train, *, deadline_ms=50.0, breaker=None, chaos=None, **kwargs):
    clock = FakeClock()
    service = RecommendationService.build(
        model,
        train,
        config=ServiceConfig(
            default_deadline_ms=deadline_ms,
            breaker=breaker or BreakerConfig(min_calls=3, cooldown_seconds=5.0),
        ),
        executor=InlineExecutor(clock=clock),
        clock=clock,
        chaos=chaos,
        **kwargs,
    )
    return service, clock


class TestDeadline:
    def test_countdown(self):
        clock = FakeClock()
        deadline = Deadline(50.0, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(50.0)
        clock.advance(0.030)
        assert deadline.remaining_ms() == pytest.approx(20.0)
        assert not deadline.expired()
        clock.advance(0.025)
        assert deadline.expired()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigError):
            Deadline(0.0, clock=FakeClock())


class TestInlineExecutor:
    def test_within_budget_returns_result_and_latency(self):
        clock = FakeClock()
        executor = InlineExecutor(clock=clock)

        def fn():
            clock.advance(0.010)
            return "ok"

        result, latency_ms = executor.call(fn, 50.0)
        assert result == "ok"
        assert latency_ms == pytest.approx(10.0)
        assert executor.overruns_ == 0

    def test_overrun_raises_and_counts(self):
        clock = FakeClock()
        executor = InlineExecutor(clock=clock)

        def slow():
            clock.advance(0.120)
            return "late"

        with pytest.raises(DeadlineExceeded) as excinfo:
            executor.call(slow, 50.0)
        assert excinfo.value.budget_ms == pytest.approx(50.0)
        assert executor.overruns_ == 1
        assert executor.overrun_ms_ == pytest.approx(70.0)

    def test_fn_exceptions_propagate(self):
        executor = InlineExecutor(clock=FakeClock())
        with pytest.raises(ValueError):
            executor.call(lambda: (_ for _ in ()).throw(ValueError("boom")), 50.0)


class TestThreadedExecutor:
    def test_fast_call_passes_through(self):
        executor = ThreadedExecutor(max_workers=2)
        try:
            result, latency_ms = executor.call(lambda: 42, 1000.0)
            assert result == 42
            assert latency_ms < 1000.0
        finally:
            executor.shutdown()

    def test_slow_call_cut_off_at_budget(self):
        import time

        executor = ThreadedExecutor(max_workers=2)
        try:
            with pytest.raises(DeadlineExceeded):
                executor.call(lambda: time.sleep(0.5), 30.0)
            assert executor.overruns_ == 1
        finally:
            executor.shutdown()


class TestRequestValidation:
    def test_history_coerced_to_int_tuple(self):
        request = RecommendationRequest(user=0, history=[np.int64(3), 1.0])
        assert request.history == (3, 1)

    def test_k_must_be_positive(self):
        with pytest.raises(ConfigError):
            RecommendationRequest(user=0, k=0)


class TestTiers:
    def test_personalized_matches_model_recommend(self, split, bpr):
        tier = PersonalizedTier(bpr, split.train)
        user = int(warm_users(split.train)[0])
        served = tier.serve(RecommendationRequest(user=user, k=5))
        expected = bpr.recommend(user, k=5)
        np.testing.assert_array_equal(served, expected)

    def test_personalized_rejects_cold_user(self, split, bpr):
        tier = PersonalizedTier(bpr, split.train)
        with pytest.raises(TierError, match="outside the trained range"):
            tier.serve(RecommendationRequest(user=split.train.n_users + 7))

    def test_fold_in_serves_unseen_user_from_history(self, split, bpr):
        tier = FoldInTier(bpr, split.train)
        request = RecommendationRequest(
            user=split.train.n_users + 1, k=5, history=(0, 1, 2)
        )
        items = tier.serve(request)
        assert len(items) == 5
        assert not set(items.tolist()) & {0, 1, 2}  # history excluded

    def test_fold_in_needs_history(self, split, bpr):
        tier = FoldInTier(bpr, split.train)
        with pytest.raises(TierError, match="no history"):
            tier.serve(RecommendationRequest(user=split.train.n_users + 1))

    def test_itemknn_requires_fitted_model(self, split):
        with pytest.raises(ConfigError):
            ItemKNNTier(ItemKNN(), split.train)

    def test_itemknn_serves_from_history(self, split):
        knn = ItemKNN().fit(split.train)
        tier = ItemKNNTier(knn, split.train)
        user = int(warm_users(split.train)[0])
        items = tier.serve(RecommendationRequest(user=user, k=5))
        assert len(items) == 5

    def test_popularity_serves_anyone(self, split):
        tier = PopularityTier(split.train)
        items = tier.serve(RecommendationRequest(user=10**9, k=5))
        expected = PopRank().fit(split.train).recommend(10**9, k=5)
        np.testing.assert_array_equal(items, expected)


class TestCascade:
    def test_healthy_service_serves_personalized(self, split, bpr):
        service, _ = make_service(bpr, split.train)
        user = int(warm_users(split.train)[0])
        response = service.recommend(RecommendationRequest(user=user, k=5))
        assert response.served_by == "personalized"
        assert not response.degraded
        assert response.model_version == "initial"
        assert len(response.items) == 5
        assert response.deadline_ms_left <= 50.0

    def test_int_request_shorthand(self, split, bpr):
        service, _ = make_service(bpr, split.train)
        user = int(warm_users(split.train)[0])
        response = service.recommend(user, k=3)
        assert len(response.items) == 3

    def test_unseen_user_with_history_degrades_to_fold_in(self, split, bpr):
        service, _ = make_service(bpr, split.train)
        response = service.recommend(
            RecommendationRequest(user=split.train.n_users + 1, k=5, history=(0, 1))
        )
        assert response.served_by == "fold-in"
        assert response.degraded
        assert "personalized" in response.tier_errors

    def test_unseen_user_without_history_gets_popularity(self, split, bpr):
        service, _ = make_service(bpr, split.train)
        response = service.recommend(
            RecommendationRequest(user=split.train.n_users + 1, k=5)
        )
        assert response.served_by == "popularity"
        assert response.degraded

    def test_deadline_exhaustion_falls_to_static_popularity(self, split, bpr):
        service, clock = make_service(bpr, split.train, deadline_ms=10.0)
        clock.advance(1.0)  # the request arrives, then time passes...
        deadline_probe = RecommendationRequest(user=0, k=5, deadline_ms=10.0)
        # Exhaust the budget before any tier can be attempted by making
        # the first tier's call itself advance past the deadline.
        original = service.tiers[0].serve

        def slow_serve(request):
            clock.advance(1.0)  # 1000 ms >> 10 ms budget
            return original(request)

        service.tiers[0].serve = slow_serve
        response = service.recommend(deadline_probe)
        assert response.served_by == STATIC_POPULARITY
        assert response.degraded
        assert len(response.items) == 5
        # The budget overran, but the reported remainder is clamped:
        # deadline_ms_left == 0.0 marks exhaustion, never a negative.
        assert response.deadline_ms_left == 0.0

    def test_deadline_ms_left_never_negative(self, split, bpr):
        # Invariant: every response reports deadline_ms_left >= 0, even
        # when construction is handed a negative remainder directly.
        clamped = RecommendationResponse(
            user=0, items=np.array([1]), served_by=STATIC_POPULARITY,
            degraded=True, deadline_ms_left=-123.4, latency_ms=173.4,
        )
        assert clamped.deadline_ms_left == 0.0
        service, clock = make_service(bpr, split.train, deadline_ms=10.0)
        original = service.tiers[0].serve

        def slow_serve(request):
            clock.advance(5.0)
            return original(request)

        service.tiers[0].serve = slow_serve
        for user in range(4):
            response = service.recommend(RecommendationRequest(user=user, k=3))
            assert response.deadline_ms_left >= 0.0

    def test_emergency_response_matches_popularity_order(self, split, bpr):
        service, _ = make_service(bpr, split.train)
        expected = PopRank().fit(split.train).recommend(10**9, k=5)
        request = RecommendationRequest(user=0, k=5, deadline_ms=5.0)
        deadline_burner = service.clock
        deadline_burner.advance(0.0)
        # Force every tier to fail so only the emergency path remains.
        for tier in service.tiers:
            tier.serve = lambda request: (_ for _ in ()).throw(TierError("down"))
        response = service.recommend(request)
        assert response.served_by == STATIC_POPULARITY
        np.testing.assert_array_equal(response.items, expected)

    def test_breaker_opens_after_repeated_failures(self, split, bpr):
        service, _ = make_service(bpr, split.train)
        service.tiers[0].serve = lambda request: (_ for _ in ()).throw(
            TierError("personalized scorer down")
        )
        user = int(warm_users(split.train)[0])
        for _ in range(3):
            response = service.recommend(RecommendationRequest(user=user))
            assert response.served_by != "personalized"
        assert service.breakers["personalized"].state == "open"
        response = service.recommend(RecommendationRequest(user=user))
        assert response.tier_errors["personalized"] == "breaker open"
        assert service.stats["personalized"].skipped_open >= 1

    def test_stats_and_snapshot(self, split, bpr):
        service, _ = make_service(bpr, split.train)
        user = int(warm_users(split.train)[0])
        for _ in range(4):
            service.recommend(RecommendationRequest(user=user))
        snap = service.snapshot()
        assert snap["requests_served"] == 4
        assert snap["tiers"]["personalized"]["served"] == 4
        assert snap["breakers"]["personalized"]["state"] == "closed"
        assert service.fallback_rate() == 0.0

    def test_recommend_many(self, split, bpr):
        service, _ = make_service(bpr, split.train)
        users = warm_users(split.train)[:5]
        responses = service.recommend_many(
            [RecommendationRequest(user=int(u), k=3) for u in users]
        )
        assert len(responses) == 5
        assert all(len(r.items) == 3 for r in responses)

    def test_context_manager_closes_executor(self, split, bpr):
        with make_service(bpr, split.train)[0] as service:
            user = int(warm_users(split.train)[0])
            service.recommend(RecommendationRequest(user=user))

    def test_empty_cascade_rejected(self, split):
        with pytest.raises(ConfigError):
            RecommendationService([], split.train)

    def test_invalid_tier_output_is_a_failure_not_a_crash(self, split, bpr):
        service, _ = make_service(bpr, split.train)
        service.tiers[0].serve = lambda request: np.zeros(0, dtype=np.int64)
        user = int(warm_users(split.train)[0])
        response = service.recommend(RecommendationRequest(user=user))
        assert response.served_by != "personalized"
        assert "invalid ranking" in response.tier_errors["personalized"]


class TestColdUsersInModels:
    """Satellite: zero-interaction users get the popularity ordering."""

    def test_recommend_cold_user_matches_poprank(self, tiny_matrix):
        pop = PopRank().fit(tiny_matrix)
        bpr = BPR(n_factors=4, sgd=SGDConfig(n_epochs=1), seed=0).fit(tiny_matrix)
        np.testing.assert_array_equal(
            bpr.recommend(3, k=4), pop._popularity_topk(tiny_matrix, 4)
        )

    def test_recommend_batch_cold_rows_match_recommend(self, tiny_matrix):
        bpr = BPR(n_factors=4, sgd=SGDConfig(n_epochs=1), seed=0).fit(tiny_matrix)
        batch = bpr.recommend_batch(np.arange(4), k=4)
        for user in range(4):
            np.testing.assert_array_equal(batch[user], bpr.recommend(user, k=4))

    def test_cold_user_ordering_is_popularity(self, tiny_matrix):
        # item 2 appears twice in tiny_matrix; every other item once or
        # zero times, so it must lead any cold-user ranking.
        bpr = BPR(n_factors=4, sgd=SGDConfig(n_epochs=1), seed=0).fit(tiny_matrix)
        assert bpr.recommend(3, k=6)[0] == 2
        assert bpr.recommend_batch(np.asarray([3]), k=6)[0, 0] == 2

    def test_service_serves_cold_user_degraded_not_error(self, tiny_matrix):
        # Regression for the HTTP edge contract: a valid-but-cold user
        # is an expected case the cascade absorbs — the popularity tier
        # answers with degraded provenance, never an error/404.
        bpr = BPR(n_factors=4, sgd=SGDConfig(n_epochs=1), seed=0).fit(tiny_matrix)
        service, _ = make_service(bpr, tiny_matrix)
        response = service.recommend(RecommendationRequest(user=3, k=4))
        assert response.served_by == "popularity"
        assert response.degraded is True
        assert response.items[0] == 2
        assert "no training history" in response.tier_errors["personalized"]

    def test_service_batch_cold_rows_match_singles(self, tiny_matrix):
        # recommend_batch must inherit the cold-user behavior bitwise:
        # cold rows fall out of the batched einsum into the cascade.
        bpr = BPR(n_factors=4, sgd=SGDConfig(n_epochs=1), seed=0).fit(tiny_matrix)
        service, _ = make_service(bpr, tiny_matrix)
        requests = [RecommendationRequest(user=user, k=4) for user in range(4)]
        batched = service.recommend_batch(requests)
        for request, response in zip(requests, batched):
            single = service.recommend(request)
            np.testing.assert_array_equal(response.items, single.items)
            assert response.served_by == single.served_by
        assert batched[3].served_by == "popularity"
        assert batched[3].degraded is True
