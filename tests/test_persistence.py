"""Tests of model/data/result persistence."""

import numpy as np
import pytest

from repro.data.interactions import InteractionMatrix
from repro.metrics.evaluator import EvaluationResult
from repro.experiments.runner import MethodResult
from repro.mf.params import FactorParams
from repro.persistence import (
    atomic_write,
    load_factors,
    load_interactions,
    load_results,
    method_result_from_dict,
    method_result_to_dict,
    save_factors,
    save_interactions,
    save_results,
    validate_factors,
)
from repro.utils.exceptions import DataError


class TestFactorRoundtrip:
    def test_roundtrip_preserves_arrays(self, tmp_path):
        params = FactorParams.init(5, 8, 3, seed=0)
        path = save_factors(tmp_path / "model.npz", params, metadata={"method": "CLAPF-MAP"})
        loaded, metadata = load_factors(path)
        assert np.array_equal(loaded.user_factors, params.user_factors)
        assert np.array_equal(loaded.item_factors, params.item_factors)
        assert np.array_equal(loaded.item_bias, params.item_bias)
        assert metadata["method"] == "CLAPF-MAP"
        assert metadata["version"] == 1

    def test_loaded_predictions_identical(self, tmp_path):
        params = FactorParams.init(4, 6, 2, seed=1)
        path = save_factors(tmp_path / "model.npz", params)
        loaded, _ = load_factors(path)
        assert np.allclose(loaded.predict_user(2), params.predict_user(2))

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))  # repro: allow(REP003) — deliberately foreign npz
        with pytest.raises(DataError):
            load_factors(path)

    def test_nonfinite_factors_rejected_on_load(self, tmp_path):
        params = FactorParams.init(5, 8, 3, seed=0)
        params.user_factors[2, 1] = np.nan
        with pytest.raises(DataError, match="non-finite"):
            validate_factors(params)
        path = tmp_path / "model.npz"
        np.savez(  # repro: allow(REP003) — deliberately corrupt artifact
            path,
            user_factors=params.user_factors,
            item_factors=params.item_factors,
            item_bias=params.item_bias,
            metadata=np.array("{}"),
        )
        with pytest.raises(DataError, match="non-finite"):
            load_factors(path)

    def test_checksum_mismatch_rejected(self, tmp_path):
        params = FactorParams.init(5, 8, 3, seed=0)
        path = save_factors(tmp_path / "model.npz", params)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        arrays["item_bias"][0] += 1.0  # corrupt, keep stored metadata
        with open(path, "wb") as handle:  # repro: allow(REP003) — torn-write fixture
            np.savez(handle, **arrays)  # repro: allow(REP003) — torn-write fixture
        with pytest.raises(DataError, match="checksum"):
            load_factors(path)

    def test_shape_metadata_mismatch_rejected(self, tmp_path):
        params = FactorParams.init(5, 8, 3, seed=0)
        path = save_factors(tmp_path / "model.npz", params)
        other = FactorParams.init(6, 8, 3, seed=0)
        with np.load(path, allow_pickle=False) as archive:
            metadata = archive["metadata"]
        with open(path, "wb") as handle:  # repro: allow(REP003) — torn-write fixture
            np.savez(  # repro: allow(REP003) — torn-write fixture
                handle,
                user_factors=other.user_factors,
                item_factors=other.item_factors,
                item_bias=other.item_bias,
                metadata=metadata,
            )
        with pytest.raises(DataError, match="shape"):
            load_factors(path)

    def test_validation_can_be_disabled(self, tmp_path):
        params = FactorParams.init(5, 8, 3, seed=0)
        params.item_bias[0] = np.inf
        path = tmp_path / "model.npz"
        np.savez(  # repro: allow(REP003) — deliberately invalid factors
            path,
            user_factors=params.user_factors,
            item_factors=params.item_factors,
            item_bias=params.item_bias,
            metadata=np.array("{}"),
        )
        loaded, _ = load_factors(path, validate=False)
        assert np.isinf(loaded.item_bias[0])


class TestAtomicWrites:
    def test_failed_write_leaves_original_intact(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("original")

        def exploding_writer(tmp):
            tmp.write_text("partial")
            raise RuntimeError("disk full")

        with pytest.raises(RuntimeError, match="disk full"):
            atomic_write(path, exploding_writer)
        assert path.read_text() == "original"
        assert list(tmp_path.iterdir()) == [path]  # no tmp litter

    def test_failed_save_factors_leaves_original_intact(self, tmp_path, monkeypatch):
        params = FactorParams.init(4, 6, 2, seed=1)
        path = save_factors(tmp_path / "model.npz", params)
        before = path.read_bytes()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(OSError):
            save_factors(path, FactorParams.init(4, 6, 2, seed=2))
        assert path.read_bytes() == before

    def test_save_replaces_existing_file(self, tmp_path):
        first = FactorParams.init(4, 6, 2, seed=1)
        second = FactorParams.init(4, 6, 2, seed=2)
        path = save_factors(tmp_path / "model.npz", first)
        save_factors(path, second)
        loaded, _ = load_factors(path)
        assert np.array_equal(loaded.user_factors, second.user_factors)


class TestInteractionsRoundtrip:
    def test_roundtrip(self, tmp_path, tiny_matrix):
        path = save_interactions(tmp_path / "data.npz", tiny_matrix)
        assert load_interactions(path) == tiny_matrix

    def test_empty_matrix(self, tmp_path):
        matrix = InteractionMatrix.empty(3, 4)
        path = save_interactions(tmp_path / "empty.npz", matrix)
        assert load_interactions(path) == matrix

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, indptr=np.zeros(2))  # repro: allow(REP003) — deliberately foreign npz
        with pytest.raises(DataError):
            load_interactions(path)


class TestResults:
    def test_evaluation_result_roundtrip(self, tmp_path):
        result = EvaluationResult(metrics={"ndcg@5": 0.4, "map": 0.2}, n_users=10)
        path = save_results(tmp_path / "eval.json", result)
        loaded = load_results(path)
        assert loaded["metrics"]["ndcg@5"] == 0.4
        assert loaded["n_users"] == 10

    def test_method_result_dict_roundtrip(self, tmp_path):
        results = {
            "BPR": MethodResult(
                name="BPR", means={"map": 0.2}, stds={"map": 0.01},
                train_seconds=1.5, n_repeats=5,
            )
        }
        path = save_results(tmp_path / "table.json", results)
        loaded = load_results(path)
        assert loaded["BPR"]["means"]["map"] == 0.2
        assert loaded["BPR"]["n_repeats"] == 5

    def test_method_result_from_dict_roundtrip(self):
        result = MethodResult(
            name="CLAPF-MAP", means={"map": 0.3}, stds={"map": 0.02},
            train_seconds=2.0, n_repeats=3,
            per_repeat=[{"map": 0.29}, {"map": 0.30}, {"map": 0.31}],
        )
        rebuilt = method_result_from_dict(method_result_to_dict(result))
        assert rebuilt == result
