"""Tests of model/data/result persistence."""

import numpy as np
import pytest

from repro.data.interactions import InteractionMatrix
from repro.metrics.evaluator import EvaluationResult
from repro.experiments.runner import MethodResult
from repro.mf.params import FactorParams
from repro.persistence import (
    load_factors,
    load_interactions,
    load_results,
    save_factors,
    save_interactions,
    save_results,
)
from repro.utils.exceptions import DataError


class TestFactorRoundtrip:
    def test_roundtrip_preserves_arrays(self, tmp_path):
        params = FactorParams.init(5, 8, 3, seed=0)
        path = save_factors(tmp_path / "model.npz", params, metadata={"method": "CLAPF-MAP"})
        loaded, metadata = load_factors(path)
        assert np.array_equal(loaded.user_factors, params.user_factors)
        assert np.array_equal(loaded.item_factors, params.item_factors)
        assert np.array_equal(loaded.item_bias, params.item_bias)
        assert metadata["method"] == "CLAPF-MAP"
        assert metadata["version"] == 1

    def test_loaded_predictions_identical(self, tmp_path):
        params = FactorParams.init(4, 6, 2, seed=1)
        path = save_factors(tmp_path / "model.npz", params)
        loaded, _ = load_factors(path)
        assert np.allclose(loaded.predict_user(2), params.predict_user(2))

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DataError):
            load_factors(path)


class TestInteractionsRoundtrip:
    def test_roundtrip(self, tmp_path, tiny_matrix):
        path = save_interactions(tmp_path / "data.npz", tiny_matrix)
        assert load_interactions(path) == tiny_matrix

    def test_empty_matrix(self, tmp_path):
        matrix = InteractionMatrix.empty(3, 4)
        path = save_interactions(tmp_path / "empty.npz", matrix)
        assert load_interactions(path) == matrix

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, indptr=np.zeros(2))
        with pytest.raises(DataError):
            load_interactions(path)


class TestResults:
    def test_evaluation_result_roundtrip(self, tmp_path):
        result = EvaluationResult(metrics={"ndcg@5": 0.4, "map": 0.2}, n_users=10)
        path = save_results(tmp_path / "eval.json", result)
        loaded = load_results(path)
        assert loaded["metrics"]["ndcg@5"] == 0.4
        assert loaded["n_users"] == 10

    def test_method_result_dict_roundtrip(self, tmp_path):
        results = {
            "BPR": MethodResult(
                name="BPR", means={"map": 0.2}, stds={"map": 0.01},
                train_seconds=1.5, n_repeats=5,
            )
        }
        path = save_results(tmp_path / "table.json", results)
        loaded = load_results(path)
        assert loaded["BPR"]["means"]["map"] == 0.2
        assert loaded["BPR"]["n_repeats"] == 5
