"""Live-socket tests of the HTTP edge.

A real :class:`EdgeServer` (hosted by :class:`EdgeServerThread` on an
ephemeral port, backed by a BPR model over the hand-checked 4x6 tiny
matrix) is driven with stdlib ``http.client``.  Routes, error mappings,
and the cold-user degradation contract are asserted against the same
golden fixtures that pin the schema layer, so the wire behavior and the
schema behavior cannot drift apart.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.data.interactions import InteractionMatrix
from repro.edge import (
    CoalesceConfig,
    EdgeConfig,
    EdgeServer,
    EdgeServerThread,
    WorkloadConfig,
    generate_schedule,
    run_load_sync,
)
from repro.edge.schema import HealthResponseV1, RecommendResponseV1
from repro.mf.sgd import SGDConfig
from repro.models import BPR
from repro.serving import (
    RecommendationService,
    ServiceConfig,
    ThreadedExecutor,
)
from repro.streaming import WriteAheadLog

GOLDEN_DIR = Path(__file__).parent / "golden" / "http"

#: Same pattern as the ``tiny_matrix`` conftest fixture (module-scoped
#: copy): user 3 is cold, item 2 is the unambiguous popularity leader.
TINY_PAIRS = [(0, 0), (0, 1), (0, 2), (1, 2), (1, 3), (2, 5)]


def load_golden(name: str) -> dict:
    with open(GOLDEN_DIR / f"{name}.json", encoding="utf-8") as fh:
        return json.load(fh)


def http_json(host, port, method, path, payload=None, *, timeout=10.0):
    """One request over a fresh connection; returns (status, decoded body)."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body is not None else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        data = json.loads(raw) if content_type.startswith("application/json") else raw
        return response.status, data
    finally:
        connection.close()


@pytest.fixture(scope="module")
def stack():
    matrix = InteractionMatrix.from_pairs(TINY_PAIRS, n_users=4, n_items=6)
    model = BPR(n_factors=4, sgd=SGDConfig(n_epochs=1), seed=0).fit(matrix)
    service = RecommendationService.build(
        model,
        matrix,
        config=ServiceConfig(default_deadline_ms=250.0),
        executor=ThreadedExecutor(max_workers=2),
    )
    yield matrix, model, service
    service.close()


@pytest.fixture(scope="module")
def edge(stack):
    _, _, service = stack
    server = EdgeServer(
        service,
        config=EdgeConfig(workers=2, coalesce=CoalesceConfig(max_batch=8, max_wait_ms=1.0)),
    )
    with EdgeServerThread(server) as (host, port):
        yield host, port


class TestLiveRoutes:
    def test_health(self, edge):
        status, body = http_json(*edge, "GET", "/v1/health")
        assert status == 200
        parsed = HealthResponseV1.from_json_dict(body)
        assert parsed.status == "ok"
        assert "personalized" in parsed.breakers
        assert "popularity" in parsed.breakers
        # Model staleness: slot age on the real clock, >= 0 and present.
        assert parsed.model_age_s is not None
        assert parsed.model_age_s >= 0.0

    def test_recommend_carries_model_age_provenance(self, edge):
        status, body = http_json(*edge, "POST", "/v1/recommend", {"user": 0, "k": 2})
        assert status == 200
        assert body["model_age_s"] is not None
        assert body["model_age_s"] >= 0.0

    def test_post_recommend_round_trips_through_the_schema(self, edge):
        status, body = http_json(*edge, "POST", "/v1/recommend", {"user": 0, "k": 3})
        assert status == 200
        parsed = RecommendResponseV1.from_json_dict(body)
        assert parsed.served.user == 0
        assert len(parsed.served.items) == 3
        assert parsed.served.latency_ms >= 0.0
        # Wire body is exactly the parsed form re-serialized: no extras.
        assert parsed.to_json_dict() == body

    def test_cold_user_get_is_served_degraded_not_404(self, edge):
        # Satellite: a valid-but-cold user is an expected case, not an
        # error — the popularity tier answers with degraded provenance.
        status, body = http_json(*edge, "GET", "/v1/recommend?user=3&k=4")
        assert status == 200
        assert body["served_by"] == "popularity"
        assert body["degraded"] is True
        assert body["items"][0] == 2  # item 2 is the popularity leader
        assert "personalized" in body["tier_errors"]

    def test_batch_matches_singles_bitwise(self, edge):
        singles = [
            http_json(*edge, "POST", "/v1/recommend", {"user": user, "k": 4})[1]
            for user in range(4)
        ]
        status, batch = http_json(
            *edge, "POST", "/v1/recommend/batch",
            {"requests": [{"user": user, "k": 4} for user in range(4)]},
        )
        assert status == 200
        assert len(batch["responses"]) == 4
        for single, batched in zip(singles, batch["responses"]):
            assert batched["user"] == single["user"]
            assert batched["items"] == single["items"]

    def test_metrics_scrape(self, edge):
        host, port = edge
        connection = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            assert response.status == 200
            assert response.getheader("Content-Type", "").startswith("text/plain")
        finally:
            connection.close()
        assert "http_request_latency_ms" in text
        assert "http_responses_total" in text

    def test_keep_alive_serves_sequential_requests(self, edge):
        host, port = edge
        connection = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            for _ in range(3):
                connection.request("GET", "/v1/health")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()


class TestLiveGoldenErrors:
    @pytest.mark.parametrize(
        "name",
        [
            "recommend_malformed_field",
            "recommend_wrong_version",
            "batch_malformed_nested",
            "batch_oversized",
        ],
    )
    def test_request_fixtures_get_their_pinned_error_body(self, edge, name):
        fixture = load_golden(name)
        status, body = http_json(
            *edge, fixture["method"], fixture["route"], fixture["request"]
        )
        assert status == fixture["expect"]["status"]
        assert body == fixture["expect"]["body"]

    @pytest.mark.parametrize("name", ["error_not_found", "error_method_not_allowed"])
    def test_routing_fixtures_get_their_pinned_error_body(self, edge, name):
        fixture = load_golden(name)
        status, body = http_json(*edge, fixture["method"], fixture["route"])
        assert status == fixture["expect"]["status"]
        assert body == fixture["expect"]["body"]

    def test_invalid_json_body_is_a_400(self, edge):
        host, port = edge
        connection = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            connection.request(
                "POST", "/v1/recommend", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "invalid_request"
            assert body["error"]["issues"][0]["path"] == "$"
        finally:
            connection.close()

    def test_bad_query_param_is_a_400_with_path(self, edge):
        status, body = http_json(*edge, "GET", "/v1/recommend?user=abc")
        assert status == 400
        assert body["error"]["issues"][0]["path"] == "user"


class TestSheddingAndDraining:
    """Shed paths unit-tested on an unstarted server: deterministic."""

    def make_server(self, **overrides):
        dummy = SimpleNamespace(recommend_batch=lambda requests: [])
        config = EdgeConfig(workers=1, **overrides)
        return EdgeServer(dummy, config=config)

    def request(self):
        from repro.edge.http import HttpRequest

        return HttpRequest(method="GET", path="/v1/health", query={}, headers={}, body=b"")

    def test_inflight_cap_sheds_429_with_retry_after(self):
        server = self.make_server(max_inflight=1)
        try:
            server._inflight = 1
            route = server._routes["/v1/health"]
            response = asyncio.run(server._route(self.request(), route))
            assert response.status == 429
            assert response.payload["error"]["code"] == "overloaded"
            assert ("Retry-After", "1") in response.extra_headers
            assert b"Retry-After: 1\r\n" in response.encode(keep_alive=True)
        finally:
            server._pool.shutdown(wait=False)

    def test_draining_sheds_503_with_retry_after(self):
        server = self.make_server(retry_after_s=2.5)
        try:
            server._draining = True
            route = server._routes["/v1/health"]
            response = asyncio.run(server._route(self.request(), route))
            assert response.status == 503
            assert response.payload["error"]["code"] == "draining"
            # Retry-After is RFC delay-seconds: an integer, rounded up.
            assert ("Retry-After", "3") in response.extra_headers
        finally:
            server._pool.shutdown(wait=False)

    def test_shed_responses_are_counted_per_reason_and_route(self):
        server = self.make_server(max_inflight=1)
        try:
            server._inflight = 1
            route = server._routes["/v1/health"]
            asyncio.run(server._route(self.request(), route))
            counter = server.obs.counter(
                "http_shed_total", reason="inflight", route="/v1/health"
            )
            assert counter.value == 1.0
        finally:
            server._pool.shutdown(wait=False)

    def test_connection_cap_sheds_503_with_retry_after(self, stack):
        _, _, service = stack
        server = EdgeServer(service, config=EdgeConfig(max_connections=1, workers=1))
        with EdgeServerThread(server) as (host, port):
            first = http.client.HTTPConnection(host, port, timeout=10.0)
            try:
                first.request("GET", "/v1/health")
                assert first.getresponse().status == 200
                # keep-alive: `first` still occupies the one slot
                second = http.client.HTTPConnection(host, port, timeout=10.0)
                try:
                    second.request("GET", "/v1/health")
                    response = second.getresponse()
                    body = json.loads(response.read())
                    assert response.status == 503
                    assert body["error"]["code"] == "overloaded"
                    assert response.getheader("Retry-After") == "1"
                finally:
                    second.close()
            finally:
                first.close()
        counter = server.obs.counter(
            "http_shed_total", reason="connections", route="none"
        )
        assert counter.value == 1.0


class TestFeedbackRoute:
    """POST /v1/feedback: durable acknowledgement into the WAL."""

    @pytest.fixture()
    def feedback_edge(self, stack, tmp_path):
        _, _, service = stack
        wal = WriteAheadLog(tmp_path / "wal")
        server = EdgeServer(
            service, config=EdgeConfig(workers=2), wal=wal
        )
        with EdgeServerThread(server) as (host, port):
            yield host, port, wal
        wal.close()

    def test_feedback_is_acknowledged_and_durable(self, feedback_edge):
        host, port, wal = feedback_edge
        status, body = http_json(
            host, port, "POST", "/v1/feedback",
            {"user": 1, "items": [2, 3], "key": "evt-1", "ts": 10.0},
        )
        assert status == 200
        assert body["status"] == "acknowledged"
        assert body["duplicate"] is False
        assert body["records"] == 1
        assert "evt-1" in wal
        record = next(iter(wal.read()))[1]
        assert record.user == 1 and record.items == (2, 3)

    def test_duplicate_delivery_is_idempotent(self, feedback_edge):
        host, port, wal = feedback_edge
        payload = {"user": 2, "items": [0], "key": "evt-dup"}
        first = http_json(host, port, "POST", "/v1/feedback", payload)[1]
        second = http_json(host, port, "POST", "/v1/feedback", payload)[1]
        assert first["duplicate"] is False
        assert second["duplicate"] is True
        assert second["records"] == first["records"]
        assert len(wal) == 1

    def test_invalid_feedback_is_a_400_not_an_append(self, feedback_edge):
        host, port, wal = feedback_edge
        status, body = http_json(
            host, port, "POST", "/v1/feedback", {"user": -1, "items": []}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert len(wal) == 0

    def test_absurd_user_id_is_rejected_not_acknowledged(self, feedback_edge):
        # A durably acknowledged user=10**12 would be replayed forever
        # and size the factor matrix on every resume; the edge must
        # bounce it as a 400 before the WAL sees it.
        host, port, wal = feedback_edge
        status, body = http_json(
            host, port, "POST", "/v1/feedback", {"user": 10**12, "items": [1]}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert body["error"]["issues"][0]["path"] == "user"
        assert len(wal) == 0

    def test_feedback_route_absent_without_a_wal(self, edge):
        status, body = http_json(
            *edge, "POST", "/v1/feedback", {"user": 0, "items": [1]}
        )
        assert status == 404
        assert body["error"]["code"] == "not_found"


class TestLoadgenAgainstLiveServer:
    def test_zipf_drill_has_zero_failed_requests(self, edge):
        host, port = edge
        schedule = generate_schedule(
            WorkloadConfig(n_users=4, requests=30, rate_rps=500.0, k=3, seed=1)
        )
        report = run_load_sync(host, port, schedule, concurrency=4, use_get_every=5)
        assert report.total == 30
        assert report.failed == 0
        assert report.ok + report.shed == 30
        assert report.to_json_dict()["p99_ms"] > 0.0


class TestReadiness:
    """``/v1/ready``: routability as the supervisor sees it (satellite 2)."""

    def test_ready_without_a_supervisor_matches_golden(self, edge):
        status, body = http_json(*edge, "GET", "/v1/ready")
        assert status == 200
        assert body == load_golden("ready_response")["wire"]

    def test_gated_stack_answers_503_with_retry_after(self, stack):
        _, _, service = stack
        fixture = load_golden("ready_not_ready_response")

        def readiness():
            detail = {
                "gate": fixture["wire"]["reason"],
                "components": fixture["wire"]["components"],
                "blocked_on": fixture["wire"]["blocked_on"],
            }
            return False, detail

        server = EdgeServer(service, config=EdgeConfig(workers=1), readiness=readiness)
        with EdgeServerThread(server) as (host, port):
            connection = http.client.HTTPConnection(host, port, timeout=10.0)
            try:
                connection.request("GET", "/v1/ready")
                response = connection.getresponse()
                body = json.loads(response.read())
                assert response.status == fixture["expect_status"]
                assert response.getheader("Retry-After") == "1"
            finally:
                connection.close()
            assert body == fixture["wire"]
            # Liveness stays 200 while readiness gates: a load balancer
            # drains this replica without the supervisor killing it.
            status, _ = http_json(host, port, "GET", "/v1/health")
            assert status == 200

    def test_readiness_flips_back_to_200_when_the_gate_lifts(self, stack):
        _, _, service = stack
        gate = {"reason": "restoring"}

        def readiness():
            if gate["reason"] is None:
                return True, {"components": {"edge": "running"}, "blocked_on": []}
            return False, {"gate": gate["reason"], "components": {}, "blocked_on": []}

        server = EdgeServer(service, config=EdgeConfig(workers=1), readiness=readiness)
        with EdgeServerThread(server) as (host, port):
            status, body = http_json(host, port, "GET", "/v1/ready")
            assert status == 503
            assert body["reason"] == "restoring"
            gate["reason"] = None
            status, body = http_json(host, port, "GET", "/v1/ready")
            assert status == 200
            assert body["status"] == "ready"
            assert body["components"] == {"edge": "running"}
