"""Tests of the dataset-property sensitivity harness."""

import pytest

from repro.experiments.sensitivity import SensitivityResult, sweep_dataset_property
from repro.data.synthetic import SyntheticConfig
from repro.models.bpr import BPR
from repro.models.poprank import PopRank
from repro.mf.sgd import SGDConfig
from repro.utils.exceptions import ConfigError

TINY_CONFIG = SyntheticConfig(n_users=60, n_items=100, density=0.06, latent_dim=3)

FACTORIES = {
    "PopRank": lambda seed: PopRank(),
    "BPR": lambda seed: BPR(n_factors=4, sgd=SGDConfig(n_epochs=25, learning_rate=0.08), seed=seed),
}


class TestValidation:
    def test_unknown_property(self):
        with pytest.raises(ConfigError):
            sweep_dataset_property("sparkliness", [1, 2], FACTORIES)

    def test_empty_values(self):
        with pytest.raises(ConfigError):
            sweep_dataset_property("signal", [], FACTORIES)

    def test_empty_factories(self):
        with pytest.raises(ConfigError):
            sweep_dataset_property("signal", [1.0], {})


class TestSweep:
    def test_curves_have_one_point_per_value(self):
        result = sweep_dataset_property(
            "signal", (2.0, 10.0), FACTORIES, base_config=TINY_CONFIG, seed=1
        )
        assert isinstance(result, SensitivityResult)
        assert len(result.curves["BPR"]) == 2
        assert "signal" in result.render()

    def test_signal_strength_drives_personalization_gap(self):
        """The core substitution argument: the BPR-vs-PopRank gap must
        grow with the latent signal the generator injects."""
        result = sweep_dataset_property(
            "signal", (0.5, 12.0), FACTORIES, base_config=TINY_CONFIG, seed=1
        )
        gaps = result.gap("BPR", "PopRank")
        assert gaps[1] > gaps[0]

    def test_gap_requires_known_methods(self):
        result = sweep_dataset_property(
            "signal", (2.0,), FACTORIES, base_config=TINY_CONFIG, seed=1
        )
        with pytest.raises(KeyError):
            result.gap("BPR", "SVD")
