"""Golden-fixture tests pinning the /v1 wire contract.

Every request/response body the HTTP edge speaks is pinned by a JSON
fixture in ``tests/golden/http/``: valid forms round-trip through the
schema dataclasses bit-for-bit, and every failure mode (malformed
field, unknown field, wrong version, oversized batch) produces the
exact typed :class:`ErrorResponseV1` body in the fixture.  If a schema
change alters the wire format, these tests fail before any client
notices.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.edge.schema import (
    API_VERSION,
    ERROR_BATCH_TOO_LARGE,
    ERROR_INVALID_REQUEST,
    ERROR_UNSUPPORTED_VERSION,
    MAX_BATCH_SIZE,
    BatchRecommendRequestV1,
    BatchRecommendResponseV1,
    ErrorResponseV1,
    FeedbackRequestV1,
    FeedbackResponseV1,
    FieldIssue,
    HealthResponseV1,
    RecommendRequestV1,
    RecommendResponseV1,
    SchemaError,
)

GOLDEN_DIR = Path(__file__).parent / "golden" / "http"


def load_golden(name: str) -> dict:
    with open(GOLDEN_DIR / f"{name}.json", encoding="utf-8") as fh:
        return json.load(fh)


def parse_route_body(fixture: dict):
    """Parse a request fixture with the schema class its route uses."""
    if fixture["route"] == "/v1/recommend/batch":
        return BatchRecommendRequestV1.from_json_dict(fixture["request"])
    if fixture["route"] == "/v1/feedback":
        return FeedbackRequestV1.from_json_dict(fixture["request"])
    return RecommendRequestV1.from_json_dict(fixture["request"])


class TestGoldenValidRequests:
    @pytest.mark.parametrize("name", ["recommend_valid", "batch_valid", "feedback_valid"])
    def test_canonical_form_is_pinned(self, name):
        fixture = load_golden(name)
        parsed = parse_route_body(fixture)
        assert parsed.to_json_dict() == fixture["expect"]["canonical"]

    @pytest.mark.parametrize("name", ["recommend_valid", "batch_valid", "feedback_valid"])
    def test_canonical_form_round_trips(self, name):
        fixture = load_golden(name)
        parsed = parse_route_body(fixture)
        reparsed = type(parsed).from_json_dict(parsed.to_json_dict())
        assert reparsed == parsed
        assert reparsed.to_json_dict() == fixture["expect"]["canonical"]

    def test_defaults_are_applied(self):
        parsed = RecommendRequestV1.from_json_dict({"user": 9})
        assert parsed.k == 5
        assert parsed.history is None
        assert parsed.deadline_ms is None
        assert parsed.exclude_observed is True
        assert parsed.version == API_VERSION

    def test_feedback_derived_key_is_content_stable(self):
        # No client key: the derived key is a pure function of the
        # canonical content, so a bitwise-identical retry deduplicates.
        one = FeedbackRequestV1.from_json_dict({"user": 3, "items": [1, 2]})
        two = FeedbackRequestV1.from_json_dict({"user": 3, "items": [1, 2]})
        other = FeedbackRequestV1.from_json_dict({"user": 3, "items": [2, 1]})
        assert one.record_key() == two.record_key()
        assert one.record_key() != other.record_key()
        assert one.record_key().startswith("fb-")
        # Full-width hash: WAL dedup is exact-match over the log's
        # lifetime, so a 32-bit CRC would collide by the birthday bound.
        assert len(one.record_key()) == len("fb-") + 64

    def test_feedback_client_key_wins(self):
        parsed = FeedbackRequestV1.from_json_dict(
            {"user": 3, "items": [1], "key": "evt-9"}
        )
        assert parsed.record_key() == "evt-9"

    def test_to_serving_mirrors_fields(self):
        fixture = load_golden("recommend_valid")
        serving = RecommendRequestV1.from_json_dict(fixture["request"]).to_serving()
        assert serving.user == 7
        assert serving.k == 3
        assert tuple(serving.history) == (1, 2)
        assert serving.deadline_ms == pytest.approx(40.0)


class TestGoldenRejectedRequests:
    @pytest.mark.parametrize(
        "name, code",
        [
            ("recommend_malformed_field", ERROR_INVALID_REQUEST),
            ("recommend_wrong_version", ERROR_UNSUPPORTED_VERSION),
            ("batch_malformed_nested", ERROR_INVALID_REQUEST),
            ("batch_oversized", ERROR_BATCH_TOO_LARGE),
        ],
    )
    def test_error_body_is_pinned(self, name, code):
        fixture = load_golden(name)
        with pytest.raises(SchemaError) as excinfo:
            parse_route_body(fixture)
        assert excinfo.value.code == code
        body = ErrorResponseV1.from_schema_error(excinfo.value).to_json_dict()
        assert body == fixture["expect"]["body"]

    def test_all_issues_reported_at_once(self):
        fixture = load_golden("recommend_malformed_field")
        with pytest.raises(SchemaError) as excinfo:
            parse_route_body(fixture)
        paths = [issue.path for issue in excinfo.value.issues]
        assert paths == ["kk", "user", "k", "history[1]"]

    def test_oversized_fixture_is_actually_oversized(self):
        fixture = load_golden("batch_oversized")
        assert len(fixture["request"]["requests"]) == MAX_BATCH_SIZE + 1

    def test_feedback_user_above_server_cap_is_rejected(self):
        # Acknowledged user ids size the factor matrix on replay, so
        # the server's growth cap must bounce absurd ids at the edge.
        with pytest.raises(SchemaError) as excinfo:
            FeedbackRequestV1.from_json_dict(
                {"user": 10**12, "items": [1]}, max_user=1000
            )
        assert excinfo.value.code == ERROR_INVALID_REQUEST
        assert [issue.path for issue in excinfo.value.issues] == ["user"]
        # At the cap is fine; no cap means any non-negative id parses.
        assert FeedbackRequestV1.from_json_dict(
            {"user": 1000, "items": [1]}, max_user=1000
        ).user == 1000
        assert FeedbackRequestV1.from_json_dict(
            {"user": 10**12, "items": [1]}
        ).user == 10**12

    def test_feedback_negative_item_is_a_schema_error(self):
        with pytest.raises(SchemaError) as excinfo:
            FeedbackRequestV1.from_json_dict({"user": 1, "items": [2, -3]})
        assert excinfo.value.code == ERROR_INVALID_REQUEST
        assert [issue.path for issue in excinfo.value.issues] == ["items[1]"]

    def test_feedback_item_list_length_is_capped(self):
        from repro.edge.schema import MAX_FEEDBACK_ITEMS

        ok = FeedbackRequestV1.from_json_dict(
            {"user": 1, "items": list(range(MAX_FEEDBACK_ITEMS))}
        )
        assert len(ok.items) == MAX_FEEDBACK_ITEMS
        with pytest.raises(SchemaError) as excinfo:
            FeedbackRequestV1.from_json_dict(
                {"user": 1, "items": list(range(MAX_FEEDBACK_ITEMS + 1))}
            )
        assert [issue.path for issue in excinfo.value.issues] == ["items"]

    def test_bool_is_not_an_integer(self):
        with pytest.raises(SchemaError) as excinfo:
            RecommendRequestV1.from_json_dict({"user": True})
        assert excinfo.value.issues[0].path == "user"
        assert "expected an integer" in excinfo.value.issues[0].message

    def test_non_object_body_rejected(self):
        with pytest.raises(SchemaError) as excinfo:
            RecommendRequestV1.from_json_dict([1, 2, 3])
        assert excinfo.value.issues[0].path == "$"

    def test_empty_batch_rejected(self):
        with pytest.raises(SchemaError) as excinfo:
            BatchRecommendRequestV1.from_json_dict({"requests": []})
        assert "at least one request" in excinfo.value.issues[0].message

    @pytest.mark.parametrize(
        "payload, path",
        [
            ({"items": [1]}, "user"),
            ({"user": 0}, "items"),
            ({"user": 0, "items": []}, "items"),
            ({"user": 0, "items": [1], "key": ""}, "key"),
            ({"user": 0, "items": [1], "typo": 1}, "typo"),
        ],
    )
    def test_feedback_rejections_carry_field_paths(self, payload, path):
        with pytest.raises(SchemaError) as excinfo:
            FeedbackRequestV1.from_json_dict(payload)
        assert path in [issue.path for issue in excinfo.value.issues]

    def test_server_side_lower_batch_cap(self):
        payload = {"requests": [{"user": 0}, {"user": 1}, {"user": 2}]}
        with pytest.raises(SchemaError) as excinfo:
            BatchRecommendRequestV1.from_json_dict(payload, max_batch=2)
        assert excinfo.value.code == ERROR_BATCH_TOO_LARGE


class TestGoldenResponses:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("recommend_response", RecommendResponseV1),
            ("batch_response", BatchRecommendResponseV1),
            ("health_response", HealthResponseV1),
            ("feedback_response", FeedbackResponseV1),
        ],
    )
    def test_wire_form_round_trips(self, name, cls):
        fixture = load_golden(name)
        parsed = cls.from_json_dict(fixture["wire"])
        assert parsed.to_json_dict() == fixture["wire"]

    def test_recommend_response_embeds_served_response_verbatim(self):
        fixture = load_golden("recommend_response")
        parsed = RecommendResponseV1.from_json_dict(fixture["wire"])
        served_wire = parsed.served.to_json_dict()
        assert {"version": API_VERSION, **served_wire} == fixture["wire"]

    def test_batch_response_preserves_degraded_provenance(self):
        fixture = load_golden("batch_response")
        parsed = BatchRecommendResponseV1.from_json_dict(fixture["wire"])
        degraded = parsed.responses[1]
        assert degraded.served_by == "popularity"
        assert degraded.degraded is True
        assert "personalized" in degraded.tier_errors

    @pytest.mark.parametrize("name", ["error_not_found", "error_method_not_allowed"])
    def test_error_wire_form_round_trips(self, name):
        fixture = load_golden(name)
        parsed = ErrorResponseV1.from_json_dict(fixture["expect"]["body"])
        assert parsed.to_json_dict() == fixture["expect"]["body"]

    def test_error_response_carries_field_paths(self):
        error = ErrorResponseV1(
            code=ERROR_INVALID_REQUEST,
            message="nope",
            issues=(FieldIssue("requests[2].k", "must be >= 1, got 0"),),
        )
        body = error.to_json_dict()
        assert body["error"]["issues"][0]["path"] == "requests[2].k"
