"""Finite-difference gradient checks for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neural.autograd import Tensor, no_grad
from repro.utils.exceptions import DataError

EPS = 1e-6


def numerical_gradient(fn, array):
    """Central finite differences of scalar fn with respect to array."""
    grad = np.zeros_like(array, dtype=np.float64)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = array[index]
        array[index] = original + EPS
        up = fn()
        array[index] = original - EPS
        down = fn()
        array[index] = original
        grad[index] = (up - down) / (2 * EPS)
        it.iternext()
    return grad


def check_gradient(build, *arrays, atol=1e-5):
    """Compare autograd and numerical gradients of ``build(*tensors)``."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for tensor, array in zip(tensors, arrays):
        expected = numerical_gradient(
            lambda: build(*[Tensor(a) for a in arrays]).item(), array
        )
        assert tensor.grad is not None
        assert np.allclose(tensor.grad, expected, atol=atol), (
            f"gradient mismatch: {tensor.grad} vs {expected}"
        )


@pytest.fixture
def a():
    return np.random.default_rng(0).normal(size=(3, 4))


@pytest.fixture
def b():
    return np.random.default_rng(1).normal(size=(3, 4))


class TestElementwiseOps:
    def test_add(self, a, b):
        check_gradient(lambda x, y: (x + y).sum(), a, b)

    def test_add_broadcast_row(self, a):
        row = np.random.default_rng(2).normal(size=(4,))
        check_gradient(lambda x, y: (x + y).sum(), a, row)

    def test_sub(self, a, b):
        check_gradient(lambda x, y: (x - y).sum(), a, b)

    def test_rsub_scalar(self, a):
        check_gradient(lambda x: (1.0 - x).sum(), a)

    def test_mul(self, a, b):
        check_gradient(lambda x, y: (x * y).sum(), a, b)

    def test_div(self, a, b):
        check_gradient(lambda x, y: (x / (y * y + 1.0)).sum(), a, b)

    def test_neg(self, a):
        check_gradient(lambda x: (-x).sum(), a)

    def test_exp(self, a):
        check_gradient(lambda x: x.exp().sum(), a)

    def test_log(self, a):
        check_gradient(lambda x: (x * x + 1.0).log().sum(), a)

    def test_relu(self, a):
        a = a + 0.05  # keep away from the kink
        check_gradient(lambda x: x.relu().sum(), a)

    def test_sigmoid(self, a):
        check_gradient(lambda x: x.sigmoid().sum(), a)

    def test_tanh(self, a):
        check_gradient(lambda x: x.tanh().sum(), a)

    def test_square(self, a):
        check_gradient(lambda x: x.square().sum(), a)

    def test_softplus(self, a):
        check_gradient(lambda x: x.softplus().sum(), a)

    def test_softplus_stable_at_extremes(self):
        t = Tensor(np.array([-800.0, 800.0]), requires_grad=True)
        out = t.softplus()
        assert np.isfinite(out.data).all()
        assert out.data[0] == pytest.approx(0.0)
        assert out.data[1] == pytest.approx(800.0)


class TestMatmulAndShape:
    def test_matmul(self):
        x = np.random.default_rng(0).normal(size=(3, 4))
        w = np.random.default_rng(1).normal(size=(4, 2))
        check_gradient(lambda a, b: (a @ b).sum(), x, w)

    def test_matmul_requires_2d(self):
        with pytest.raises(DataError):
            Tensor(np.zeros(3)) @ Tensor(np.zeros(3))

    def test_sum_axis(self, a):
        check_gradient(lambda x: x.sum(axis=0).sum(), a)
        check_gradient(lambda x: x.sum(axis=1).sum(), a)

    def test_mean(self, a):
        check_gradient(lambda x: x.mean(), a)
        check_gradient(lambda x: x.mean(axis=1).sum(), a)

    def test_reshape(self, a):
        check_gradient(lambda x: (x.reshape(-1) * x.reshape(-1)).sum(), a)

    def test_concat(self):
        x = np.random.default_rng(0).normal(size=(3, 2))
        y = np.random.default_rng(1).normal(size=(3, 5))
        check_gradient(
            lambda a, b: (Tensor.concat([a, b], axis=1).square()).sum(), x, y
        )

    def test_take_rows_gathers(self):
        table = np.arange(12, dtype=float).reshape(4, 3)
        t = Tensor(table, requires_grad=True)
        out = t.take_rows(np.array([2, 0, 2]))
        assert np.array_equal(out.data, table[[2, 0, 2]])

    def test_take_rows_backward_accumulates_duplicates(self):
        table = np.zeros((4, 3))
        t = Tensor(table, requires_grad=True)
        out = t.take_rows(np.array([2, 0, 2])).sum()
        out.backward()
        assert np.array_equal(t.grad[2], np.full(3, 2.0))
        assert np.array_equal(t.grad[0], np.ones(3))
        assert np.array_equal(t.grad[1], np.zeros(3))


class TestGraphMechanics:
    def test_diamond_graph_accumulates(self):
        """x used twice: d(x*x + x*x)/dx = 4x."""
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x * x
        y.backward()
        assert x.grad[0] == pytest.approx(12.0)

    def test_deep_chain(self):
        x = Tensor(np.array([0.5]), requires_grad=True)
        y = x
        for _ in range(20):
            y = y * 1.1
        y.backward()
        assert x.grad[0] == pytest.approx(1.1**20)

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(DataError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(DataError):
            Tensor(np.ones(2)).backward()

    def test_no_grad_disables_taping(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = (x * 3).sum()
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = (x * 2).detach()
        z = (y * 3).sum()
        assert not z.requires_grad

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x * 3).sum().backward()
        (x * 3).sum().backward()
        assert x.grad[0] == pytest.approx(6.0)
        x.zero_grad()
        assert x.grad is None

    @given(
        data=st.lists(st.floats(-3, 3, allow_nan=False), min_size=4, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_composite_expression_gradcheck(self, data):
        array = np.array(data).reshape(2, 2) + 0.05
        check_gradient(
            lambda x: ((x.sigmoid() * x.tanh()).softplus() + x.square()).mean(),
            array,
        )
