"""Disk-fault injection against the durable-write primitives.

``DiskFaultInjector`` is a drop-in :class:`FileOps` installed through
``injected_file_ops``; each test arms exactly one fault and asserts two
things — the failure is *loud* (raised, counted) and the on-disk state
is the one the durability contract promises (old content intact, torn
tail detectable, poisoned handle refusing to lie).
"""

from __future__ import annotations

import errno

import pytest

from repro.obs import MetricsRegistry
from repro.resilience.chaos import DiskFaultInjector
from repro.streaming.wal import decode_frames, encode_frame
from repro.utils.atomicio import (
    DurableAppender,
    fsync_directory,
    injected_file_ops,
    set_metrics_registry,
    truncate_file,
    write_bytes_atomic,
)


@pytest.fixture
def metrics():
    registry = MetricsRegistry()
    set_metrics_registry(registry)
    yield registry
    set_metrics_registry(None)


class TestAtomicWrite:
    def test_enospc_on_replace_leaves_the_original_untouched(self, tmp_path):
        target = tmp_path / "ckpt.json"
        target.write_bytes(b"committed state")
        ops = DiskFaultInjector().arm("replace", errno_code=errno.ENOSPC)
        with injected_file_ops(ops):
            with pytest.raises(OSError) as excinfo:
                write_bytes_atomic(target, b"new state", durable=True)
        assert excinfo.value.errno == errno.ENOSPC
        assert target.read_bytes() == b"committed state"
        assert not list(tmp_path.glob(".*.tmp"))  # tmp file cleaned up

    def test_eio_on_tmp_fsync_aborts_before_the_rename(self, tmp_path):
        target = tmp_path / "ckpt.json"
        target.write_bytes(b"committed state")
        ops = DiskFaultInjector().arm("fsync", path_substring=".tmp")
        with injected_file_ops(ops):
            with pytest.raises(OSError):
                write_bytes_atomic(target, b"new state", durable=True)
        assert target.read_bytes() == b"committed state"
        assert ops.fired_  # the fault actually fired

    def test_fault_budget_disarms_after_n_hits(self, tmp_path):
        ops = DiskFaultInjector().arm("replace", times=2)
        with injected_file_ops(ops):
            for _ in range(2):
                with pytest.raises(OSError):
                    write_bytes_atomic(tmp_path / "f", b"x")
            write_bytes_atomic(tmp_path / "f", b"x")  # third succeeds
        assert (tmp_path / "f").read_bytes() == b"x"

    def test_path_substring_scopes_the_blast_radius(self, tmp_path):
        ops = DiskFaultInjector().arm("replace", path_substring="victim")
        with injected_file_ops(ops):
            write_bytes_atomic(tmp_path / "bystander.json", b"ok")
            with pytest.raises(OSError):
                write_bytes_atomic(tmp_path / "victim.json", b"boom")
        assert (tmp_path / "bystander.json").read_bytes() == b"ok"


class TestDurableAppender:
    def test_short_write_leaves_a_torn_frame_crc_detects(self, tmp_path):
        wal = tmp_path / "segment.wal"
        first = encode_frame(b"acknowledged record")
        with DurableAppender(wal) as appender:
            appender.append(first)
            appender.sync()
        ops = DiskFaultInjector().arm("write", short_write_bytes=3)
        with injected_file_ops(ops):
            appender = DurableAppender(wal)
            with pytest.raises(OSError):
                appender.append(encode_frame(b"torn record"))
            appender.close(sync=False)
        data = wal.read_bytes()
        assert len(data) == len(first) + 3
        payloads, valid = decode_frames(data)
        assert payloads == [b"acknowledged record"]
        assert valid == len(first)  # framing truncates exactly the tear

    def test_failed_sync_poisons_the_handle(self, tmp_path, metrics):
        wal = tmp_path / "segment.wal"
        appender = DurableAppender(wal)
        appender.append(encode_frame(b"r1"))
        ops = DiskFaultInjector().arm("fsync", path_substring="segment.wal")
        with injected_file_ops(ops):
            with pytest.raises(OSError):
                appender.sync()
        assert appender.failed_
        with pytest.raises(OSError) as excinfo:
            appender.append(encode_frame(b"r2"))
        assert "poisoned" in str(excinfo.value)
        appender.close(sync=False)
        assert metrics.counter("atomicio_fsync_failures_total").value == 1
        # The mandated recovery: a fresh handle on the same file works.
        with DurableAppender(wal) as reopened:
            reopened.append(encode_frame(b"r2"))
            reopened.sync()

    def test_truncate_fault_propagates(self, tmp_path):
        wal = tmp_path / "segment.wal"
        wal.write_bytes(b"0123456789")
        ops = DiskFaultInjector().arm("truncate")
        with injected_file_ops(ops):
            with pytest.raises(OSError):
                truncate_file(wal, 4)
        assert wal.read_bytes() == b"0123456789"
        truncate_file(wal, 4)
        assert wal.read_bytes() == b"0123"


class TestFsyncDirectory:
    def test_real_failure_is_counted_and_reraised_when_required(
        self, tmp_path, metrics
    ):
        ops = DiskFaultInjector().arm("fsync", path_substring=tmp_path.name)
        with injected_file_ops(ops):
            with pytest.raises(OSError):
                fsync_directory(tmp_path, required=True)
        assert metrics.counter("atomicio_fsync_failures_total").value == 1

    def test_real_failure_returns_false_when_not_required(self, tmp_path, metrics):
        ops = DiskFaultInjector().arm("fsync", path_substring=tmp_path.name)
        with injected_file_ops(ops):
            assert fsync_directory(tmp_path, required=False) is False
        assert metrics.counter("atomicio_fsync_failures_total").value == 1

    def test_unsupported_platform_errno_is_skipped_not_raised(
        self, tmp_path, metrics
    ):
        ops = DiskFaultInjector().arm(
            "fsync", path_substring=tmp_path.name, errno_code=errno.EINVAL
        )
        with injected_file_ops(ops):
            # EINVAL = "this filesystem can't fsync directories": counted
            # as unsupported and skipped even on the required path.
            assert fsync_directory(tmp_path, required=True) is False
        assert metrics.counter("atomicio_fsync_dir_unsupported_total").value == 1
        assert metrics.counter("atomicio_fsync_failures_total").value == 0

    def test_clean_directory_sync_returns_true(self, tmp_path):
        assert fsync_directory(tmp_path) is True


class TestInstallation:
    def test_injected_file_ops_restores_the_previous_ops(self, tmp_path):
        ops = DiskFaultInjector().arm("replace", times=100)
        with injected_file_ops(ops):
            with pytest.raises(OSError):
                write_bytes_atomic(tmp_path / "f", b"x")
        # Outside the context the real primitives are back.
        write_bytes_atomic(tmp_path / "f", b"x")
        assert (tmp_path / "f").read_bytes() == b"x"

    def test_counters_are_inert_without_a_registry(self, tmp_path):
        registry = MetricsRegistry()
        set_metrics_registry(None)
        ops = DiskFaultInjector().arm("fsync", path_substring=tmp_path.name)
        with injected_file_ops(ops):
            assert fsync_directory(tmp_path, required=False) is False
        assert registry.counter("atomicio_fsync_failures_total").value == 0
