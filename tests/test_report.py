"""Tests of the reproduction-report assembler."""

import pytest

from repro.experiments.report import build_report, collect_results, write_report
from repro.utils.exceptions import DataError


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "table1_datasets.txt").write_text("TABLE ONE CONTENT\n")
    (tmp_path / "table2_ml100k.txt").write_text("TABLE TWO ML100K\n")
    (tmp_path / "fig4_convergence_ml20m.txt").write_text("FIG FOUR\n")
    (tmp_path / "mystery_output.txt").write_text("UNKNOWN SECTION\n")
    return tmp_path


class TestCollect:
    def test_reads_all_txt_files(self, results_dir):
        collected = collect_results(results_dir)
        assert set(collected) == {
            "table1_datasets", "table2_ml100k", "fig4_convergence_ml20m", "mystery_output",
        }

    def test_missing_directory(self, tmp_path):
        with pytest.raises(DataError):
            collect_results(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(DataError, match="no result files"):
            collect_results(tmp_path)


class TestBuild:
    def test_sections_in_order(self, results_dir):
        report = build_report(results_dir)
        table1 = report.index("Table 1 — dataset statistics")
        table2 = report.index("Table 2 — main comparison")
        fig4 = report.index("Figure 4 — sampler convergence")
        assert table1 < table2 < fig4

    def test_contents_embedded(self, results_dir):
        report = build_report(results_dir)
        assert "TABLE TWO ML100K" in report
        assert "FIG FOUR" in report

    def test_unmatched_files_in_other_section(self, results_dir):
        report = build_report(results_dir)
        assert "## Other results" in report
        assert "UNKNOWN SECTION" in report

    def test_custom_title(self, results_dir):
        assert build_report(results_dir, title="My run").startswith("# My run")


class TestWrite:
    def test_writes_file(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "report.md")
        assert out.read_text().startswith("# CLAPF reproduction report")
