"""Tests of the dataset transforms (k-core, compaction, subsampling)."""

import numpy as np
import pytest

from repro.data.dataset import ImplicitDataset
from repro.data.interactions import InteractionMatrix
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.data.transforms import (
    apply_k_core_dataset,
    compact_ids,
    k_core,
    subsample_users,
)
from repro.utils.exceptions import ConfigError


@pytest.fixture
def matrix():
    config = SyntheticConfig(n_users=60, n_items=80, density=0.05, latent_dim=3)
    return generate_synthetic(config, seed=9).interactions


class TestKCore:
    def test_result_satisfies_cores(self, matrix):
        filtered = k_core(matrix, user_core=3, item_core=2)
        user_counts = filtered.user_counts()
        item_counts = filtered.item_counts()
        assert np.all(user_counts[user_counts > 0] >= 3)
        assert np.all(item_counts[item_counts > 0] >= 2)

    def test_subset_of_original(self, matrix):
        filtered = k_core(matrix, user_core=3, item_core=2)
        assert filtered.difference(matrix).n_interactions == 0

    def test_already_satisfying_is_identity(self):
        dense = InteractionMatrix.from_dense(np.ones((4, 4), dtype=int))
        assert k_core(dense, user_core=2, item_core=2) == dense

    def test_cascading_removal(self):
        """Removing a user can push an item below its core."""
        # item 1 is held only by user 0; user 0 has a single interaction.
        pairs = [(0, 1)] + [(1, 0), (1, 2), (2, 0), (2, 2)]
        matrix = InteractionMatrix.from_pairs(pairs, 3, 3)
        filtered = k_core(matrix, user_core=2, item_core=2)
        assert not filtered.contains(0, 1)
        assert filtered.item_counts()[1] == 0

    def test_everything_can_vanish(self):
        matrix = InteractionMatrix.from_pairs([(0, 0), (1, 1)], 2, 2)
        filtered = k_core(matrix, user_core=5, item_core=5)
        assert filtered.n_interactions == 0

    def test_invalid_core(self, matrix):
        with pytest.raises(ConfigError):
            k_core(matrix, user_core=0)


class TestCompactIds:
    def test_drops_empty_rows_and_columns(self):
        pairs = [(0, 0), (5, 7)]
        matrix = InteractionMatrix.from_pairs(pairs, 6, 8)
        compacted, user_map, item_map = compact_ids(matrix)
        assert compacted.n_users == 2
        assert compacted.n_items == 2
        assert user_map.tolist() == [0, 5]
        assert item_map.tolist() == [0, 7]

    def test_preserves_structure(self, matrix):
        compacted, user_map, item_map = compact_ids(matrix)
        assert compacted.n_interactions == matrix.n_interactions
        # Spot-check: every compacted pair maps back to an original pair.
        for user, item in compacted.pairs()[:50]:
            assert matrix.contains(int(user_map[user]), int(item_map[item]))

    def test_empty_matrix(self):
        compacted, user_map, item_map = compact_ids(InteractionMatrix.empty(3, 4))
        assert compacted.n_users == 0 and compacted.n_items == 0


class TestSubsampleUsers:
    def test_subsamples_to_target(self, matrix):
        smaller = subsample_users(matrix, 20, seed=0)
        assert int((smaller.user_counts() > 0).sum()) == 20

    def test_noop_when_target_exceeds_population(self, matrix):
        assert subsample_users(matrix, 10_000, seed=0) == matrix

    def test_invalid_target(self, matrix):
        with pytest.raises(ConfigError):
            subsample_users(matrix, 0)


class TestDatasetWrapper:
    def test_apply_k_core_dataset(self, matrix):
        dataset = ImplicitDataset(name="demo", interactions=matrix)
        filtered = apply_k_core_dataset(dataset, user_core=3, item_core=2)
        assert filtered.name == "demo-3core"
        assert np.all(filtered.interactions.user_counts() >= 3)
