"""Tests of the ItemKNN baseline."""

import numpy as np
import pytest

from repro.data.interactions import InteractionMatrix
from repro.metrics.evaluator import evaluate_model
from repro.models.itemknn import ItemKNN
from repro.models.poprank import PopRank
from repro.utils.exceptions import ConfigError


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            ItemKNN(n_neighbors=0)
        with pytest.raises(ConfigError):
            ItemKNN(shrinkage=-1)

    def test_name(self):
        assert ItemKNN().name == "ItemKNN"


class TestSimilarity:
    def test_cooccurring_items_similar(self):
        """Items consumed together by the same users end up similar."""
        pairs = [(u, 0) for u in range(5)] + [(u, 1) for u in range(5)] + [(9, 2)]
        train = InteractionMatrix.from_pairs(pairs, 10, 3)
        model = ItemKNN(n_neighbors=3, shrinkage=0.0).fit(train)
        assert model.similarity_[0, 1] > 0.9
        assert model.similarity_[0, 2] == 0.0

    def test_diagonal_zeroed(self, learnable_split):
        model = ItemKNN(n_neighbors=10).fit(learnable_split.train)
        assert np.all(np.diag(model.similarity_) == 0.0)

    def test_neighbor_truncation(self, learnable_split):
        full = ItemKNN(n_neighbors=1_000_000).fit(learnable_split.train)
        sparse = ItemKNN(n_neighbors=5).fit(learnable_split.train)
        assert (sparse.similarity_ > 0).sum() <= (full.similarity_ > 0).sum()
        per_row = (sparse.similarity_ > 0).sum(axis=1)
        assert per_row.max() <= 5

    def test_shrinkage_damps_rare_pairs(self):
        pairs = [(0, 0), (0, 1), (1, 2), (1, 3)] + [(u + 2, 2) for u in range(8)] + [
            (u + 2, 3) for u in range(8)
        ]
        train = InteractionMatrix.from_pairs(pairs, 10, 4)
        raw = ItemKNN(n_neighbors=4, shrinkage=0.0).fit(train)
        shrunk = ItemKNN(n_neighbors=4, shrinkage=5.0).fit(train)
        # The single-co-occurrence pair (0,1) is damped more than the
        # well-supported pair (2,3).
        raw_ratio = raw.similarity_[0, 1] / raw.similarity_[2, 3]
        shrunk_ratio = shrunk.similarity_[0, 1] / shrunk.similarity_[2, 3]
        assert shrunk_ratio < raw_ratio


class TestRecommendation:
    def test_beats_popularity(self, learnable_split):
        knn = ItemKNN(n_neighbors=30, shrinkage=5.0).fit(learnable_split.train)
        pop = PopRank().fit(learnable_split.train)
        assert (
            evaluate_model(knn, learnable_split)["ndcg@5"]
            > evaluate_model(pop, learnable_split)["ndcg@5"]
        )

    def test_empty_history_user_gets_zeros(self, tiny_matrix):
        model = ItemKNN(n_neighbors=3).fit(tiny_matrix)
        assert np.all(model.predict_user(3) == 0.0)

    def test_recommend_batch_matches_single(self, learnable_split):
        model = ItemKNN(n_neighbors=20).fit(learnable_split.train)
        users = np.array([0, 3, 7])
        batch = model.recommend_batch(users, k=5)
        assert batch.shape == (3, 5)
        for row, user in zip(batch, users):
            assert row.tolist() == model.recommend(int(user), k=5).tolist()
