"""Tests of the rank-biased list metrics (AP, RR, AUC) vs brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ranking import (
    area_under_curve,
    average_precision,
    mean_metric,
    rank_of_items,
    reciprocal_rank,
)
from repro.utils.exceptions import DataError


def brute_force_ap(scores, relevant, mask):
    """AP by literal definition over the candidate ranking."""
    candidates = np.flatnonzero(mask)
    order = candidates[np.argsort(-scores[candidates], kind="stable")]
    relevant = set(relevant)
    hits, total = 0, 0.0
    for position, item in enumerate(order, start=1):
        if item in relevant:
            hits += 1
            total += hits / position
    return total / len(relevant) if relevant else float("nan")


def brute_force_auc(scores, relevant, mask):
    """Midrank AUC by literal pair enumeration: ties count 0.5."""
    candidates = np.flatnonzero(mask)
    relevant = set(int(r) for r in relevant)
    negatives = [int(c) for c in candidates if int(c) not in relevant]
    if not relevant:
        return float("nan")
    if not negatives:
        return 0.0
    correct = 0.0
    for r in relevant:
        for n in negatives:
            if scores[r] > scores[n]:
                correct += 1.0
            elif scores[r] == scores[n]:
                correct += 0.5
    return correct / (len(relevant) * len(negatives))


class TestRankOfItems:
    def test_simple_ranks(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert rank_of_items(scores, np.array([1, 2, 0])).tolist() == [1, 2, 3]

    def test_candidate_mask_restricts_ranking(self):
        scores = np.array([0.1, 0.9, 0.5])
        mask = np.array([True, False, True])
        assert rank_of_items(scores, np.array([2, 0]), candidate_mask=mask).tolist() == [1, 2]

    def test_item_outside_candidates_raises(self):
        scores = np.array([0.1, 0.9])
        mask = np.array([True, False])
        with pytest.raises(DataError):
            rank_of_items(scores, np.array([1]), candidate_mask=mask)


class TestKnownValues:
    def test_average_precision_hand_computed(self):
        # ranking by score: [3, 1, 0, 2]; relevant {3, 0}: hits at ranks 1, 3.
        scores = np.array([0.5, 0.7, 0.1, 0.9])
        ap = average_precision(scores, np.array([3, 0]))
        assert ap == pytest.approx((1 / 1 + 2 / 3) / 2)

    def test_reciprocal_rank_best_hit(self):
        scores = np.array([0.5, 0.7, 0.1, 0.9])
        assert reciprocal_rank(scores, np.array([0, 2])) == pytest.approx(1 / 3)

    def test_auc_hand_computed(self):
        # ranking: [3, 1, 0, 2]; relevant {1}: beats items 0 and 2, loses to 3.
        scores = np.array([0.5, 0.7, 0.1, 0.9])
        assert area_under_curve(scores, np.array([1])) == pytest.approx(2 / 3)

    def test_empty_relevant_is_undefined(self):
        # NaN (excluded from means), NOT 0.0 — a user with no test
        # positives must not deflate the aggregate metrics.
        scores = np.array([0.5, 0.7])
        assert np.isnan(average_precision(scores, np.array([], dtype=int)))
        assert np.isnan(reciprocal_rank(scores, np.array([], dtype=int)))
        assert np.isnan(area_under_curve(scores, np.array([], dtype=int)))

    def test_all_relevant_auc_zero(self):
        scores = np.array([0.5, 0.7])
        assert area_under_curve(scores, np.array([0, 1])) == 0.0

    def test_constant_scores_auc_exactly_half(self):
        # Regression: the stable-tie-break formulation credited tied
        # (pos, neg) pairs by item order and scored this case 0.625;
        # Eq. 1's expectation semantics demand exactly 0.5.
        scores = np.zeros(8)
        for relevant in ([0], [3, 5], [0, 1, 6, 7]):
            auc = area_under_curve(scores, np.array(relevant, dtype=int))
            assert auc == 0.5

    def test_tied_pair_gets_half_credit(self):
        # relevant item 0 ties one negative and beats the other:
        # (1 + 0.5) / 2 pairs.
        scores = np.array([0.5, 0.5, 0.1])
        assert area_under_curve(scores, np.array([0])) == pytest.approx(0.75)

    def test_mean_metric(self):
        assert mean_metric([0.2, 0.4]) == pytest.approx(0.3)
        assert mean_metric([]) == 0.0

    def test_mean_metric_excludes_nan(self):
        assert mean_metric([0.2, float("nan"), 0.4]) == pytest.approx(0.3)
        assert mean_metric([float("nan")]) == 0.0


@st.composite
def scored_case(draw):
    n_items = draw(st.integers(min_value=3, max_value=25))
    scores = np.array(
        draw(
            st.lists(
                st.floats(min_value=-3, max_value=3, allow_nan=False),
                min_size=n_items, max_size=n_items,
            )
        )
    )
    mask = np.array(draw(st.lists(st.booleans(), min_size=n_items, max_size=n_items)))
    if not mask.any():
        mask[0] = True
    candidates = np.flatnonzero(mask)
    relevant = draw(st.sets(st.sampled_from(list(candidates)), max_size=len(candidates)))
    return scores, np.array(sorted(relevant), dtype=int), mask


class TestAgainstBruteForce:
    @given(case=scored_case())
    @settings(max_examples=100, deadline=None)
    def test_ap_matches_brute_force(self, case):
        scores, relevant, mask = case
        ap = average_precision(scores, relevant, candidate_mask=mask)
        assert ap == pytest.approx(brute_force_ap(scores, relevant, mask), nan_ok=True)

    @given(case=scored_case())
    @settings(max_examples=100, deadline=None)
    def test_auc_matches_brute_force(self, case):
        scores, relevant, mask = case
        auc = area_under_curve(scores, relevant, candidate_mask=mask)
        assert auc == pytest.approx(brute_force_auc(scores, relevant, mask), nan_ok=True)

    @given(case=scored_case())
    @settings(max_examples=60, deadline=None)
    def test_rr_is_inverse_best_rank(self, case):
        scores, relevant, mask = case
        if len(relevant) == 0:
            return
        rr = reciprocal_rank(scores, relevant, candidate_mask=mask)
        ranks = rank_of_items(scores, relevant, candidate_mask=mask)
        assert rr == pytest.approx(1.0 / ranks.min())

    @given(case=scored_case())
    @settings(max_examples=60, deadline=None)
    def test_ap_at_least_rr_over_hits(self, case):
        """AP's first summand is RR, so AP >= RR / n_relevant."""
        scores, relevant, mask = case
        if len(relevant) == 0:
            return
        ap = average_precision(scores, relevant, candidate_mask=mask)
        rr = reciprocal_rank(scores, relevant, candidate_mask=mask)
        assert ap >= rr / len(relevant) - 1e-12
        assert 0.0 <= ap <= 1.0
