"""Hot model reload: validation, canary gating, atomic swap, rollback.

Acceptance criteria covered here: a corrupt candidate artifact is
rejected at the checksum/finiteness gate, an NDCG-regressing candidate
is rejected at the canary gate, and a valid candidate swaps atomically
while concurrent requests keep being served (no dropped requests).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.mf.params import FactorParams
from repro.mf.sgd import SGDConfig
from repro.models import BPR
from repro.persistence import file_fingerprint, load_factors, save_factors
from repro.serving import (
    CanaryConfig,
    FakeClock,
    InlineExecutor,
    LoadedFactorModel,
    ModelReloader,
    ModelSlot,
    RecommendationRequest,
    RecommendationService,
    ServiceConfig,
)
from repro.resilience.chaos import ServiceFaultInjector
from repro.utils.exceptions import DataError, ServingError


@pytest.fixture(scope="module")
def trained(learnable_split):
    model = BPR(n_factors=8, sgd=SGDConfig(n_epochs=5), seed=0).fit(
        learnable_split.train, learnable_split.validation
    )
    return learnable_split, model


def random_params(train, seed=99, scale=1.0):
    rng = np.random.default_rng(seed)
    return FactorParams(
        user_factors=scale * rng.standard_normal((train.n_users, 8)),
        item_factors=scale * rng.standard_normal((train.n_items, 8)),
        item_bias=np.zeros(train.n_items),
    )


class TestFileFingerprint:
    def test_missing_file_is_none(self, tmp_path):
        assert file_fingerprint(tmp_path / "nope.npz") is None

    def test_changes_on_rewrite(self, tmp_path, trained):
        split, model = trained
        path = tmp_path / "factors.npz"
        save_factors(path, model.params_)
        first = file_fingerprint(path)
        assert first is not None
        save_factors(path, random_params(split.train))
        assert file_fingerprint(path) != first


class TestLoadedFactorModel:
    def test_serves_like_the_source_model(self, trained):
        split, model = trained
        loaded = LoadedFactorModel(model.params_, split.train, version="v2")
        np.testing.assert_array_equal(
            loaded.recommend(0, k=5), model.recommend(0, k=5)
        )
        assert "v2" in loaded.name

    def test_shape_mismatch_rejected(self, trained, tiny_matrix):
        _, model = trained
        with pytest.raises(DataError, match="does not match"):
            LoadedFactorModel(model.params_, tiny_matrix)

    def test_refuses_to_fit(self, trained):
        split, model = trained
        loaded = LoadedFactorModel(model.params_, split.train)
        with pytest.raises(ServingError):
            loaded.fit(split.train)


class TestModelSlot:
    def test_swap_and_rollback(self, trained):
        split, model = trained
        slot = ModelSlot(model, version="v1")
        other = LoadedFactorModel(random_params(split.train), split.train, version="v2")
        slot.swap(other, version="v2")
        assert slot.get() is other
        assert slot.version == "v2"
        assert slot.swap_count_ == 1
        assert slot.rollback()
        assert slot.get() is model
        assert slot.version == "v1"

    def test_rollback_without_history_is_noop(self, trained):
        _, model = trained
        slot = ModelSlot(model)
        assert not slot.rollback()
        assert slot.get() is model

    def test_stale_model_chaos_serves_previous(self, trained):
        split, model = trained
        chaos = ServiceFaultInjector(FakeClock())
        slot = ModelSlot(model, version="v1", chaos=chaos)
        other = LoadedFactorModel(random_params(split.train), split.train, version="v2")
        slot.swap(other, version="v2")
        chaos.stale_model = True
        assert slot.get() is model  # the pre-swap model
        chaos.clear()
        assert slot.get() is other


class TestModelReloader:
    def make_reloader(self, trained, tmp_path, **canary):
        split, model = trained
        slot = ModelSlot(model, version="live")
        reloader = ModelReloader(
            slot,
            tmp_path / "factors.npz",
            split.train,
            split.validation,
            canary=CanaryConfig(max_users=None, **canary),
        )
        return split, model, slot, reloader

    def test_no_file_is_unchanged(self, trained, tmp_path):
        *_, reloader = self.make_reloader(trained, tmp_path)
        result = reloader.poll()
        assert result.status == "unchanged"
        assert reloader.history_ == []

    def test_valid_candidate_accepted(self, trained, tmp_path):
        split, model, slot, reloader = self.make_reloader(trained, tmp_path)
        save_factors(
            tmp_path / "factors.npz", model.params_, metadata={"version_tag": "v2"}
        )
        result = reloader.poll()
        assert result.accepted
        assert slot.version == "v2"
        assert isinstance(slot.get(), LoadedFactorModel)
        # Same fingerprint: the next poll is a no-op, not a re-validation.
        assert reloader.poll().status == "unchanged"

    def test_nan_poisoned_candidate_rejected(self, trained, tmp_path):
        split, model, slot, reloader = self.make_reloader(trained, tmp_path)
        poisoned = random_params(split.train)
        poisoned.user_factors[0, 0] = np.nan
        save_factors(tmp_path / "factors.npz", poisoned)
        result = reloader.poll()
        assert result.status == "rejected"
        assert "validation failed" in result.reason
        assert slot.get() is model  # live model untouched
        assert slot.version == "live"

    def test_checksum_tampered_candidate_rejected(self, trained, tmp_path):
        split, model, slot, reloader = self.make_reloader(trained, tmp_path)
        path = tmp_path / "factors.npz"
        save_factors(path, model.params_)
        # Flip the arrays after the checksum was recorded (a torn or
        # bit-rotted write that still parses as a valid npz).
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name].copy() for name in archive.files}
        arrays["item_bias"] = arrays["item_bias"] + 1.0
        np.savez(path, **arrays)  # repro: allow(REP003) — bit-rot fixture
        with pytest.raises(DataError, match="checksum mismatch"):
            load_factors(path)
        result = reloader.poll()
        assert result.status == "rejected"
        assert "checksum" in result.reason
        assert slot.get() is model

    def test_regressed_candidate_rejected_by_canary(self, trained, tmp_path):
        split, model, slot, reloader = self.make_reloader(
            trained, tmp_path, max_ndcg_drop=0.02
        )
        save_factors(
            tmp_path / "factors.npz",
            random_params(split.train),
            metadata={"version_tag": "untrained"},
        )
        result = reloader.poll()
        assert result.status == "rejected"
        assert "regressed" in result.reason
        assert result.candidate_ndcg < result.live_ndcg - 0.02
        assert slot.version == "live"

    def test_canary_skipped_without_validation_split(self, trained, tmp_path):
        split, model = trained
        slot = ModelSlot(model, version="live")
        reloader = ModelReloader(slot, tmp_path / "factors.npz", split.train)
        save_factors(
            tmp_path / "factors.npz",
            random_params(split.train),
            metadata={"version_tag": "v2"},
        )
        result = reloader.poll()
        assert result.accepted  # no canary gate without a validation split
        assert result.candidate_ndcg is None


class TestReloadUnderTraffic:
    def test_no_dropped_requests_during_swaps(self, trained):
        """Acceptance: a valid swap drops zero in-flight requests."""
        split, model = trained
        service = RecommendationService.build(
            model,
            split.train,
            config=ServiceConfig(default_deadline_ms=2000.0),
            executor=InlineExecutor(),
            fit_knn=False,
        )
        users = np.flatnonzero(split.train.user_counts() > 0)[:8]
        stop = threading.Event()
        failures: list = []
        served = [0]

        def hammer():
            while not stop.is_set():
                for user in users:
                    response = service.recommend(
                        RecommendationRequest(user=int(user), k=5)
                    )
                    if len(response.items) == 0:
                        failures.append("empty response")
                    served[0] += 1

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            candidate = LoadedFactorModel(
                random_params(split.train, scale=0.1), split.train, version="v2"
            )
            for swap in range(50):
                service.slot.swap(candidate, version=f"v{swap + 2}")
                service.slot.rollback()
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not failures
        assert served[0] > 0
        assert service.slot.swap_count_ == 50
