"""Properties of the batched scoring engine and the redesigned API.

Two contracts anchor the whole engine:

1. ``predict_batch(users)`` equals stacked ``predict_user(u)`` calls
   *bit-for-bit* for every model in the library, for any batch
   composition (chunk invariance);
2. the chunked / threaded evaluator reproduces the sequential per-user
   protocol's metrics exactly (``==``, not ``approx``).

Plus coverage for the satellite API changes: ``recommend_batch``,
batched ``validation_ndcg``, the ``make_sampler`` registry,
``run_method`` with a fitted recommender, the fold-in batch path, and
the deprecation of bare score callables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_profile_dataset, train_test_split
from repro.core.clapf import CLAPF
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import make_model
from repro.experiments.runner import run_method
from repro.metrics import scoring
from repro.metrics.evaluator import Evaluator
from repro.mf.fold_in import fold_in_user_ridge, fold_in_users_ridge
from repro.mf.params import FactorParams
from repro.mf.sgd import SGDConfig
from repro.models import BPR, GBPR, MPR, WMF, CLiMF, ItemKNN, PopRank, RandomWalk
from repro.models.base import validation_ndcg
from repro.neural import GMF, NeuPR
from repro.sampling import (
    AdaptiveOversampler,
    DoubleSampler,
    DynamicNegativeSampler,
    UniformSampler,
    make_sampler,
    sampler_names,
)
from repro.utils.exceptions import ConfigError


@pytest.fixture(scope="module")
def split():
    dataset = make_profile_dataset("ML100K", scale=0.4, seed=11)
    return train_test_split(dataset, seed=11)


def _sgd(n_epochs=2):
    return SGDConfig(n_epochs=n_epochs)


@pytest.fixture(scope="module")
def fitted_models(split):
    """One fitted instance of every model family (tiny training budgets)."""
    return {
        "PopRank": PopRank().fit(split.train),
        "ItemKNN": ItemKNN(n_neighbors=10).fit(split.train),
        "RandomWalk": RandomWalk(walk_length=5).fit(split.train),
        "WMF": WMF(n_factors=8, n_iterations=2, seed=1).fit(split.train),
        "BPR": BPR(n_factors=8, sgd=_sgd(), seed=1).fit(split.train, split.validation),
        "MPR": MPR(n_factors=8, sgd=_sgd(), seed=1).fit(split.train, split.validation),
        "GBPR": GBPR(n_factors=8, sgd=_sgd(), seed=1).fit(split.train, split.validation),
        "CLiMF": CLiMF(n_factors=8, sgd=_sgd(), seed=1).fit(split.train, split.validation),
        "CLAPF-MAP": CLAPF("map", n_factors=8, sgd=_sgd(), seed=1).fit(
            split.train, split.validation
        ),
        "GMF": GMF(embedding_dim=4, n_epochs=1, seed=1).fit(split.train),
        "NeuPR": NeuPR(embedding_dim=4, n_epochs=1, seed=1).fit(split.train),
    }


class TestPredictBatchBitwise:
    """predict_batch == stacked predict_user, bit for bit, for every model."""

    def test_every_model_matches_stacked_predict_user(self, split, fitted_models):
        users = np.arange(split.train.n_users)
        for name, model in fitted_models.items():
            batch = model.predict_batch(users)
            stacked = np.stack([model.predict_user(int(user)) for user in users])
            assert batch.shape == (split.train.n_users, split.train.n_items), name
            assert np.array_equal(batch, stacked), f"{name}: batch != stacked predict_user"

    def test_chunk_invariance(self, split, fitted_models):
        """Rows are identical no matter how the batch is chunked."""
        users = np.arange(split.train.n_users)
        for name, model in fitted_models.items():
            full = model.predict_batch(users)
            pieces = [model.predict_batch(chunk) for chunk in np.array_split(users, 7)]
            assert np.array_equal(np.concatenate(pieces), full), name
            shuffled = users[::-1].copy()
            assert np.array_equal(model.predict_batch(shuffled), full[::-1]), name

    def test_factor_params_batch_kernel(self):
        params = FactorParams.init(50, 80, 12, seed=3)
        users = np.arange(50)
        batch = params.predict_batch(users)
        stacked = np.stack([params.predict_user(int(user)) for user in users])
        assert np.array_equal(batch, stacked)

    def test_default_stacking_path(self, split):
        """Recommender subclasses without an override still get predict_batch."""

        class Constant(PopRank):
            def predict_batch(self, users):  # force the ABC default
                from repro.models.base import Recommender

                return Recommender.predict_batch(self, users)

        model = Constant().fit(split.train)
        users = np.arange(5)
        assert np.array_equal(
            model.predict_batch(users),
            np.stack([model.predict_user(int(user)) for user in users]),
        )


class TestEvaluatorEquivalence:
    """Chunked / threaded evaluation == the sequential reference, exactly."""

    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_chunked_matches_sequential(self, split, fitted_models, chunk_size):
        model = fitted_models["BPR"]
        sequential = Evaluator(split, ks=(1, 5), seed=0).evaluate_sequential(model)
        batched = Evaluator(split, ks=(1, 5), seed=0, chunk_size=chunk_size).evaluate(model)
        assert batched.n_users == sequential.n_users
        assert batched.metrics == sequential.metrics  # bitwise, not approx

    def test_all_models_match_sequential(self, split, fitted_models):
        for name, model in fitted_models.items():
            sequential = Evaluator(split, ks=(5,), seed=2).evaluate_sequential(model)
            batched = Evaluator(split, ks=(5,), seed=2, chunk_size=33).evaluate(model)
            assert batched.metrics == sequential.metrics, name

    def test_threaded_matches_sequential(self, split, fitted_models):
        model = fitted_models["CLAPF-MAP"]
        sequential = Evaluator(split, ks=(5,), seed=0).evaluate_sequential(model)
        threaded = Evaluator(split, ks=(5,), seed=0, chunk_size=16, n_jobs=2).evaluate(model)
        assert threaded.metrics == sequential.metrics

    def test_per_user_arrays_match(self, split, fitted_models):
        model = fitted_models["ItemKNN"]
        sequential = Evaluator(split, ks=(5,), keep_per_user=True).evaluate_sequential(model)
        batched = Evaluator(split, ks=(5,), keep_per_user=True, chunk_size=10).evaluate(model)
        for key, values in sequential.per_user.items():
            assert np.array_equal(batched.per_user[key], values), key

    def test_validation_mode_matches(self, split, fitted_models):
        model = fitted_models["WMF"]
        kwargs = dict(ks=(5,), use_validation_as_relevant=True)
        sequential = Evaluator(split, **kwargs).evaluate_sequential(model)
        batched = Evaluator(split, chunk_size=13, **kwargs).evaluate(model)
        assert batched.metrics == sequential.metrics

    def test_max_users_matches(self, split, fitted_models):
        model = fitted_models["BPR"]
        sequential = Evaluator(split, ks=(5,), max_users=31, seed=7).evaluate_sequential(model)
        batched = Evaluator(split, ks=(5,), max_users=31, seed=7, chunk_size=8).evaluate(model)
        assert batched.n_users == sequential.n_users
        assert batched.metrics == sequential.metrics

    def test_sampled_candidates_matches(self, split, fitted_models):
        """The NCF-protocol subsample draws the same RNG stream either way."""
        model = fitted_models["BPR"]
        sequential = Evaluator(
            split, ks=(5,), seed=5, sampled_candidates=20
        ).evaluate_sequential(model)
        batched = Evaluator(
            split, ks=(5,), seed=5, sampled_candidates=20, chunk_size=9
        ).evaluate(model)
        assert batched.metrics == sequential.metrics

    def test_tied_scores_match(self, split):
        """All-constant scores exercise the tie fix-up path end to end."""

        class AllTied(PopRank):
            def fit(self, train, validation=None):
                super().fit(train, validation)
                self.scores_ = np.zeros(train.n_items)
                return self

        model = AllTied().fit(split.train)
        sequential = Evaluator(split, ks=(3,)).evaluate_sequential(model)
        batched = Evaluator(split, ks=(3,), chunk_size=17).evaluate(model)
        assert batched.metrics == sequential.metrics

    def test_bare_callable_raises_with_migration_hint(self, split):
        scores = np.linspace(1.0, 0.0, split.n_items)
        with pytest.raises(TypeError, match="predict_user"):
            Evaluator(split, ks=(1,)).evaluate(lambda user: scores)
        with pytest.raises(TypeError, match="no longer accepted"):
            scoring.as_batch_scorer(lambda user: scores)


class TestRecommendBatch:
    def test_matches_per_user_recommend(self, split, fitted_models):
        users = np.arange(0, split.train.n_users, 3)
        for name, model in fitted_models.items():
            batch = model.recommend_batch(users, k=4, chunk_size=11)
            stacked = np.stack([model.recommend(int(user), k=4) for user in users])
            assert np.array_equal(batch, stacked), name

    def test_without_exclusion(self, split, fitted_models):
        model = fitted_models["BPR"]
        users = np.arange(10)
        batch = model.recommend_batch(users, k=3, exclude_observed=False)
        stacked = np.stack(
            [model.recommend(int(user), k=3, exclude_observed=False) for user in users]
        )
        assert np.array_equal(batch, stacked)


class TestValidationNdcg:
    def test_accepts_params_and_model_identically(self, split, fitted_models):
        model = fitted_models["BPR"]
        via_params = validation_ndcg(model.params_, split.train, split.validation, k=5)
        via_model = validation_ndcg(model, split.train, split.validation, k=5)
        assert via_params == via_model
        assert 0.0 <= via_params <= 1.0
        with pytest.raises(TypeError, match="no longer accepted"):
            validation_ndcg(
                model.params_.predict_user, split.train, split.validation, k=5
            )

    def test_chunking_does_not_change_result(self, split, fitted_models):
        model = fitted_models["BPR"]
        small = validation_ndcg(model.params_, split.train, split.validation, k=5, chunk_size=3)
        big = validation_ndcg(model.params_, split.train, split.validation, k=5, chunk_size=4096)
        assert small == big


class TestMakeSampler:
    def test_registry_specs(self):
        expected = {
            "uniform": UniformSampler,
            "dns": DynamicNegativeSampler,
            "aobpr": AdaptiveOversampler,
            "geometric": AdaptiveOversampler,
            "dss": DoubleSampler,
        }
        for spec, cls in expected.items():
            assert spec in sampler_names()
            assert isinstance(make_sampler(spec), cls)

    def test_kwargs_pass_through(self):
        sampler = make_sampler("dss", mode="mrr", tail=0.1)
        assert sampler.mode == "mrr"

    def test_spec_is_case_insensitive(self):
        assert isinstance(make_sampler("  DSS "), DoubleSampler)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigError, match="unknown sampler"):
            make_sampler("nope")

    def test_instance_passes_through(self):
        sampler = UniformSampler()
        assert make_sampler(sampler) is sampler
        with pytest.raises(ConfigError, match="already-constructed"):
            make_sampler(sampler, tail=0.5)

    def test_make_model_accepts_spec(self, split):
        model = make_model("BPR", scale=ExperimentScale.quick(), sampler="dns")
        assert isinstance(model.sampler, DynamicNegativeSampler)

    def test_scale_sampler_spec_flows_through(self):
        scale = ExperimentScale(sampler_spec="aobpr")
        model = make_model("BPR", scale=scale)
        assert isinstance(model.sampler, AdaptiveOversampler)
        with pytest.raises(ConfigError, match="unknown sampler_spec"):
            ExperimentScale(sampler_spec="bogus")

    def test_clapf_plus_default_is_dss(self):
        model = make_model("CLAPF+-MRR", scale=ExperimentScale.quick())
        assert isinstance(model.sampler, DoubleSampler)
        assert model.sampler.mode == "mrr"


class TestRunMethodWithFittedModel:
    def test_fitted_recommender_is_evaluated_directly(self, split, fitted_models):
        model = fitted_models["PopRank"]
        result = run_method(model, [split], ks=(5,), chunk_size=32)
        assert result.name == "PopRank"
        assert result.train_seconds == 0.0
        expected = Evaluator(split, ks=(5,), seed=0).evaluate(model)
        assert result.means["ndcg@5"] == expected["ndcg@5"]

    def test_unfitted_recommender_rejected(self, split):
        with pytest.raises(ConfigError, match="not fitted"):
            run_method(PopRank(), [split])


class TestFoldInBatch:
    def test_batched_ridge_matches_per_user(self):
        params = FactorParams.init(30, 60, 8, seed=5)
        rng = np.random.default_rng(5)
        cohort = [np.sort(rng.choice(60, size=size, replace=False)) for size in (3, 7, 1, 12)]
        batched = fold_in_users_ridge(params, cohort)
        assert len(batched) == len(cohort)
        for result, positives in zip(batched, cohort):
            single = fold_in_user_ridge(params, positives)
            np.testing.assert_allclose(result.user_vector, single.user_vector, rtol=1e-10)
            np.testing.assert_allclose(result.predict(), single.predict(), rtol=1e-10)

    def test_empty_cohort(self):
        params = FactorParams.init(5, 9, 4, seed=0)
        assert fold_in_users_ridge(params, []) == []


class TestEngineKernels:
    def test_positives_mask_matches_positives(self, split):
        users = np.arange(split.train.n_users)
        mask = scoring.positives_mask(split.train, users)
        for user in users[::13]:
            row = np.zeros(split.train.n_items, dtype=bool)
            row[split.train.positives(int(user))] = True
            assert np.array_equal(mask[user], row)

    def test_ranking_orders_matches_argsort(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 4, size=(6, 40)).astype(float)  # heavy ties
        orders = scoring.ranking_orders(keys)
        for row in range(len(keys)):
            assert np.array_equal(orders[row], np.argsort(-keys[row], kind="stable"))

    def test_as_batch_scorer_rejects_non_models(self):
        with pytest.raises(ConfigError, match="not evaluable"):
            scoring.as_batch_scorer(object())


class TestPopularityHoist:
    """The cold-user popularity ordering is computed once per call.

    Every cold user in a ``recommend_batch`` call gets the *same*
    popularity row, so recomputing it per chunk (or per user) is pure
    waste.  The counting test pins the hoist; the equality test pins
    that hoisting changed nothing about the output.
    """

    def test_popularity_computed_at_most_once_per_call(self, split, fitted_models, monkeypatch):
        model = fitted_models["BPR"]
        calls = {"n": 0}
        original = type(model)._popularity_topk

        def counting(self, train, k):
            calls["n"] += 1
            return original(self, train, k)

        monkeypatch.setattr(type(model), "_popularity_topk", counting)
        cold = np.flatnonzero(split.train.user_counts() == 0)
        warm = np.flatnonzero(split.train.user_counts() > 0)
        assert len(cold) >= 2, "split fixture should contain cold users"
        users = np.concatenate([cold, warm[: 3 * len(cold)]])
        model.recommend_batch(users, k=4, chunk_size=2)  # many tiny chunks
        assert calls["n"] == 1
        calls["n"] = 0
        model.recommend_batch(warm[:8], k=4, chunk_size=2)  # no cold users
        assert calls["n"] == 0

    def test_hoisted_output_identical_to_per_user_path(self, split, fitted_models):
        model = fitted_models["BPR"]
        cold = np.flatnonzero(split.train.user_counts() == 0)[:4]
        warm = np.flatnonzero(split.train.user_counts() > 0)[:8]
        users = np.concatenate([cold, warm, cold])
        batch = model.recommend_batch(users, k=5, chunk_size=3)
        stacked = np.stack([model.recommend(int(user), k=5) for user in users])
        assert np.array_equal(batch, stacked)
