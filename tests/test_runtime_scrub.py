"""Scrubber disciplines: WAL prefix splicing and immutable-blob repair.

Everything here drives :class:`Scrubber` offline against hand-built
primary/mirror directories — no supervisor, no threads.  WAL segments
are assembled from real frames (``encode_frame``) so CRC validation is
exercised end to end.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import MetricsRegistry
from repro.runtime import ReplicaPair, Scrubber
from repro.streaming.wal import encode_frame
from repro.utils.atomicio import write_bytes_atomic


def frames(*payloads: bytes) -> bytes:
    return b"".join(encode_frame(payload) for payload in payloads)


@pytest.fixture
def pair(tmp_path):
    primary = tmp_path / "primary"
    primary.mkdir()
    return ReplicaPair.of("state", primary, tmp_path / "mirror")


def make_scrubber(pair, *, active=None, obs=None):
    active_paths = (lambda: set(active)) if active is not None else None
    return Scrubber([pair], obs=obs, active_paths=active_paths)


class TestWalDiscipline:
    def test_first_pass_mirrors_the_valid_prefix(self, pair):
        data = frames(b"a", b"bb", b"ccc")
        (pair.primary / "segment_0.wal").write_bytes(data)
        report = make_scrubber(pair).scrub_once()
        assert report.mirrored == 1
        assert report.clean
        assert (pair.mirror / "segment_0.wal").read_bytes() == data

    def test_rotted_primary_is_spliced_from_the_mirror(self, pair):
        data = frames(b"a", b"bb", b"ccc")
        wal = pair.primary / "segment_0.wal"
        wal.write_bytes(data)
        scrubber = make_scrubber(pair)
        scrubber.scrub_once()

        with open(wal, "r+b") as handle:  # bit rot inside the first frame
            handle.seek(len(data) // 4)
            handle.write(b"\xff")
        report = scrubber.scrub_once()
        assert report.repaired_primary == 1
        assert wal.read_bytes() == data
        assert report.findings[0].problem == "primary frame corruption"

    def test_active_segment_corruption_is_deferred(self, pair):
        data = frames(b"a", b"bb")
        wal = pair.primary / "segment_0.wal"
        wal.write_bytes(data)
        scrubber = make_scrubber(pair, active={wal})
        scrubber.scrub_once()

        with open(wal, "r+b") as handle:
            handle.seek(2)
            handle.write(b"\xff")
        report = scrubber.scrub_once()
        assert report.deferred_active == 1
        assert report.repaired_primary == 0
        assert not report.clean
        # An offline pass (segment no longer active) repairs it.
        offline = make_scrubber(pair).scrub_once()
        assert offline.repaired_primary == 1
        assert wal.read_bytes() == data

    def test_rotted_mirror_is_truncated_then_rebuilt(self, pair):
        data = frames(b"a", b"bb", b"ccc")
        (pair.primary / "segment_0.wal").write_bytes(data)
        scrubber = make_scrubber(pair)
        scrubber.scrub_once()

        mirror = pair.mirror / "segment_0.wal"
        with open(mirror, "r+b") as handle:
            handle.seek(len(data) - 1)
            handle.write(b"\xff")
        report = scrubber.scrub_once()
        assert report.repaired_mirror == 1
        assert mirror.read_bytes() == data

    def test_torn_tail_is_counted_but_never_mirrored(self, pair):
        data = frames(b"a", b"bb")
        wal = pair.primary / "segment_0.wal"
        wal.write_bytes(data + b"\x01\x02\x03")  # torn half-frame
        report = make_scrubber(pair).scrub_once()
        assert report.torn_tails == 1
        assert (pair.mirror / "segment_0.wal").read_bytes() == data

    def test_appended_records_extend_the_mirror(self, pair):
        wal = pair.primary / "segment_0.wal"
        wal.write_bytes(frames(b"a"))
        scrubber = make_scrubber(pair)
        scrubber.scrub_once()
        grown = frames(b"a", b"bb", b"ccc")
        wal.write_bytes(grown)
        report = scrubber.scrub_once()
        assert report.mirrored == 1
        assert (pair.mirror / "segment_0.wal").read_bytes() == grown


class TestBlobDiscipline:
    def test_in_place_mutation_is_repaired_from_the_mirror(self, pair):
        blob = pair.primary / "offset.json"
        blob.write_text(json.dumps({"segment": 0, "offset": 64}))
        original = blob.read_bytes()
        scrubber = make_scrubber(pair)
        scrubber.scrub_once()

        with open(blob, "r+b") as handle:  # same inode, hash changes
            handle.seek(0)
            handle.write(b'{"segment": 9')
        report = scrubber.scrub_once()
        assert report.repaired_primary == 1
        assert blob.read_bytes() == original
        finding = report.findings[0]
        assert finding.problem == "in-place mutation (same inode, hash changed)"

    def test_atomic_replacement_is_adopted_as_a_new_version(self, pair):
        blob = pair.primary / "offset.json"
        blob.write_text(json.dumps({"offset": 1}))
        scrubber = make_scrubber(pair)
        scrubber.scrub_once()

        new_content = json.dumps({"offset": 2}).encode()
        write_bytes_atomic(blob, new_content)  # rename => new inode
        report = scrubber.scrub_once()
        assert report.updated == 1
        assert report.repaired_primary == 0
        assert (pair.mirror / "offset.json").read_bytes() == new_content

    def test_structurally_invalid_replacement_is_corruption(self, pair):
        blob = pair.primary / "ckpt.npz"
        blob.write_bytes(b"PK\x03\x04 not actually a zip")
        # Invalid on first sight: nothing to repair from yet.
        first = make_scrubber(pair).scrub_once()
        assert first.unrepaired == ["state/ckpt.npz"]

        # Valid baseline, then a new-inode replacement that fails
        # structural validation: repaired back from the mirror.
        import numpy as np

        np.savez(blob, factors=np.arange(6, dtype=np.float64))  # repro: allow(REP003) — corruption fixture
        good = blob.read_bytes()
        scrubber = make_scrubber(pair)
        scrubber.scrub_once()
        write_bytes_atomic(blob, b"garbage replacing the checkpoint")
        report = scrubber.scrub_once()
        assert report.repaired_primary == 1
        assert blob.read_bytes() == good
        assert report.findings[0].problem == "replacement fails structural validation"

    def test_rotted_mirror_is_rewritten_from_healthy_primary(self, pair):
        blob = pair.primary / "offset.json"
        blob.write_text(json.dumps({"offset": 3}))
        scrubber = make_scrubber(pair)
        scrubber.scrub_once()
        (pair.mirror / "offset.json").write_bytes(b"rot")
        report = scrubber.scrub_once()
        assert report.repaired_mirror == 1
        assert (pair.mirror / "offset.json").read_bytes() == blob.read_bytes()

    def test_double_fault_is_reported_unrepaired(self, pair):
        blob = pair.primary / "offset.json"
        blob.write_text(json.dumps({"offset": 4}))
        scrubber = make_scrubber(pair)
        scrubber.scrub_once()
        # Both replicas rot before the next pass: honesty over heroics.
        with open(blob, "r+b") as handle:
            handle.write(b"x")
        (pair.mirror / "offset.json").write_bytes(b"also rotted")
        report = scrubber.scrub_once()
        assert report.unrepaired == ["state/offset.json"]
        assert not report.clean

    def test_deletions_propagate_instead_of_resurrecting(self, pair):
        blob = pair.primary / "old_ckpt.json"
        blob.write_text("{}")
        scrubber = make_scrubber(pair)
        scrubber.scrub_once()
        os.unlink(blob)
        report = scrubber.scrub_once()
        assert report.deleted == 1
        assert not (pair.mirror / "old_ckpt.json").exists()
        # And it stays deleted on subsequent passes (manifest forgot it).
        assert scrubber.scrub_once().deleted == 0


class TestReporting:
    def test_counters_reach_the_registry(self, pair):
        obs = MetricsRegistry()
        blob = pair.primary / "offset.json"
        blob.write_text("{}")
        scrubber = make_scrubber(pair, obs=obs)
        scrubber.scrub_once()
        with open(blob, "r+b") as handle:
            handle.write(b"x")
        scrubber.scrub_once()
        assert obs.counter("scrub_runs_total").value == 2
        assert obs.counter("scrub_repaired_primary_total").value == 1

    def test_merge_and_json_round_trip(self, pair):
        (pair.primary / "a.json").write_text("{}")
        (pair.primary / "seg.wal").write_bytes(frames(b"x"))
        report = make_scrubber(pair).scrub_once()
        payload = report.to_json_dict()
        assert payload["files_checked"] == 2
        assert payload["mirrored"] == 2
        assert payload["unrepaired"] == []
        assert report.repairs == 0 and report.clean

        merged = make_scrubber(pair).scrub_once()
        merged.merge(report)
        assert merged.files_checked == 4
