"""Closed-loop simulation: which recommender earns the most feedback?

The paper's implicit-feedback setting is inherently interactive — watch
records and thumb-ups arrive *because* something was recommended.  This
example closes the loop offline: the synthetic generator's latent
ground truth plays the users, and three policies (PopRank, BPR,
CLAPF+-MAP) compete over ten recommend→feedback→retrain rounds.

Run with::

    python examples/online_simulation.py
"""

from repro import BPR, PopRank, clapf_plus_map
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.mf.sgd import SGDConfig
from repro.simulation import FeedbackSimulator, OnlineLoop
from repro.utils.plotting import line_chart


def main() -> None:
    config = SyntheticConfig(
        n_users=150, n_items=300, density=0.03, latent_dim=4,
        signal=10.0, popularity_weight=0.5,
    )
    dataset, truth = generate_synthetic(config, seed=13, return_ground_truth=True)
    print(f"world: {dataset}\n")

    sgd = SGDConfig(n_epochs=40, learning_rate=0.08)
    policies = {
        "PopRank": lambda: PopRank(),
        "BPR": lambda: BPR(sgd=sgd, seed=13),
        "CLAPF+-MAP": lambda: clapf_plus_map(0.3, sgd=sgd, seed=13),
    }

    curves = {}
    for name, factory in policies.items():
        loop = OnlineLoop(
            factory,
            FeedbackSimulator(truth, seed=13),
            slate_size=5,
            retrain_every=2,
            seed=13,
        )
        result = loop.run(dataset.interactions, n_rounds=10, measure_oracle=(name == "PopRank"))
        curves[name] = result.acceptance_curve()
        oracle = f"  (oracle skyline ≈ {result.oracle_acceptance_rate:.3f})" if name == "PopRank" else ""
        print(
            f"{name:11s} accepted {result.total_accepted():4d} items, "
            f"final acceptance rate {curves[name][-1]:.3f}{oracle}"
        )

    print("\nacceptance rate per round:")
    print(line_chart(curves, width=50, height=10, x_labels=["round 1", "round 10"]))


if __name__ == "__main__":
    main()
