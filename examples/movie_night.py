"""Scenario: a movie-streaming service picking tonight's shelf.

The paper's motivating setting is top-k recommendation from implicit
watch records (Section 1).  This example simulates a small streaming
service, trains the full CLAPF line-up, and shows how the *order* of
one user's shelf differs between a pairwise model (BPR, AUC-oriented)
and the list-and-pairwise CLAPF (rank-biased), including how many of
the user's actually-watched held-out movies land in the top 10.

Run with::

    python examples/movie_night.py
"""

import numpy as np

from repro import BPR, clapf_map, clapf_plus_map, evaluate_model, train_test_split
from repro.data.synthetic import SyntheticConfig, generate_synthetic


def shelf(model, user: int, k: int = 10) -> list[int]:
    return model.recommend(user, k=k).tolist()


def hits(shelf_items, held_out) -> int:
    held = set(int(i) for i in held_out)
    return sum(1 for item in shelf_items if item in held)


def main() -> None:
    # A 500-viewer, 800-title catalog with strong taste clusters and a
    # blockbuster-heavy long tail (Zipf 0.9).
    config = SyntheticConfig(
        n_users=500, n_items=800, density=0.02, latent_dim=6,
        signal=9.0, popularity_weight=0.8, popularity_exponent=0.9,
    )
    catalog = generate_synthetic(config, seed=7, name="streaming")
    split = train_test_split(catalog, seed=7)

    models = {
        "BPR": BPR(seed=7),
        "CLAPF-MAP": clapf_map(tradeoff=0.4, seed=7),
        "CLAPF+-MAP": clapf_plus_map(tradeoff=0.4, seed=7),
    }
    for model in models.values():
        model.fit(split.train)

    # Pick an active viewer with plenty of held-out watches to check.
    test_counts = split.test.user_counts()
    viewer = int(np.argmax(test_counts))
    watched = split.train.positives(viewer)
    held_out = split.test.positives(viewer)
    print(f"viewer {viewer}: {len(watched)} watches in history, {len(held_out)} held out\n")

    for name, model in models.items():
        top10 = shelf(model, viewer, k=10)
        print(f"{name:11s} shelf: {top10}  (hits in top-10: {hits(top10, held_out)})")

    print("\nfull-catalog evaluation (all viewers):")
    print(f"{'model':11s}  {'NDCG@5':>7s}  {'MAP':>7s}  {'MRR':>7s}  {'1-call@5':>8s}")
    for name, model in models.items():
        result = evaluate_model(model, split, ks=(5,))
        print(
            f"{name:11s}  {result['ndcg@5']:7.4f}  {result['map']:7.4f}"
            f"  {result['mrr']:7.4f}  {result['1-call@5']:8.4f}"
        )


if __name__ == "__main__":
    main()
