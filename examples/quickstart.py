"""Quickstart: train CLAPF on a synthetic MovieLens-style dataset.

Runs in a few seconds::

    python examples/quickstart.py

Steps: generate data -> split per the paper's protocol -> train
CLAPF-MAP -> print top-5 recommendations and evaluation metrics.
"""

from repro import (
    PopRank,
    clapf_map,
    evaluate_model,
    make_profile_dataset,
    train_test_split,
)


def main() -> None:
    # 1. A synthetic stand-in for MovieLens-100K (see DESIGN.md §4).
    dataset = make_profile_dataset("ML100K", seed=42)
    print(f"dataset: {dataset}")

    # 2. The paper's split: half the pairs train, half test, one
    #    validation pair per user (Section 6.1).
    split = train_test_split(dataset, seed=42)
    print(f"train pairs: {split.train.n_interactions}, test pairs: {split.test.n_interactions}")

    # 3. Train CLAPF-MAP (lambda = 0.4, the paper's ML100K value).
    model = clapf_map(tradeoff=0.4, seed=42).fit(split.train)

    # 4. Recommend for one user.
    user = 0
    print(f"\ntop-5 items for user {user}: {model.recommend(user, k=5).tolist()}")

    # 5. Evaluate with the paper's metrics and compare to popularity.
    result = evaluate_model(model, split, ks=(5,))
    baseline = evaluate_model(PopRank().fit(split.train), split, ks=(5,))
    print("\nmetric        CLAPF-MAP   PopRank")
    for key in ("precision@5", "recall@5", "ndcg@5", "map", "mrr", "auc"):
        print(f"{key:12s}  {result[key]:9.4f}  {baseline[key]:8.4f}")


if __name__ == "__main__":
    main()
