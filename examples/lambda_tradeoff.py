"""Explore the list-vs-pairwise tradeoff lambda (the paper's Fig. 3).

Sweeps lambda from 0 (pure pairwise — exactly BPR) to 1 (pure listwise)
for both CLAPF instantiations and prints the metric curves, verifying
the lambda = 0 endpoint against a real BPR run.

Run with::

    python examples/lambda_tradeoff.py
"""

import numpy as np

from repro import BPR, train_test_split
from repro.core.clapf import CLAPF
from repro.data.profiles import make_profile_dataset
from repro.experiments.config import ExperimentScale
from repro.experiments.figures import figure3_tradeoff_sweep
from repro.mf.sgd import RegularizationConfig


def main() -> None:
    scale = ExperimentScale(dataset_scale=0.6, n_epochs=60, repeats=2)
    result = figure3_tradeoff_sweep(
        "ML100K", lambdas=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0), scale=scale, max_users=300
    )
    print(result.render())

    for variant, curves in result.curves.items():
        best = int(np.argmax(curves["ndcg@5"]))
        print(f"\n{variant}: best lambda by NDCG@5 = {result.lambdas[best]:g} "
              f"(NDCG@5 = {curves['ndcg@5'][best]:.4f})")

    # Endpoint check: lambda = 0 is *exactly* BPR (same seeds, no reg).
    dataset = make_profile_dataset("ML100K", scale=0.4, seed=1)
    split = train_test_split(dataset, seed=1)
    no_reg = RegularizationConfig.uniform(0.0)
    clapf0 = CLAPF("map", tradeoff=0.0, reg=no_reg, seed=9).fit(split.train)
    bpr = BPR(reg=no_reg, seed=9).fit(split.train)
    identical = np.allclose(clapf0.params_.user_factors, bpr.params_.user_factors)
    print(f"\nCLAPF(lambda=0) parameters identical to BPR: {identical}")


if __name__ == "__main__":
    main()
