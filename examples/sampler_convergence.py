"""Reproduce Fig. 4's sampler comparison as an ASCII convergence plot.

Trains CLAPF-MAP four times — with Uniform, Positive-only,
Negative-only, and the paper's DSS sampler — tracing test MAP per epoch,
then prints the traces and a simple terminal chart.

Run with::

    python examples/sampler_convergence.py
"""

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import figure4_convergence

BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, low, high) -> str:
    span = max(high - low, 1e-9)
    return "".join(BARS[int((v - low) / span * (len(BARS) - 1))] for v in values)


def main() -> None:
    scale = ExperimentScale(dataset_scale=0.6, n_epochs=80, repeats=1)
    result = figure4_convergence("ML20M", scale=scale, max_users=200, eval_every=4)

    print(result.render())
    print("\nconvergence sparklines (test MAP per epoch):")
    low = min(min(t) for t in result.traces.values())
    high = max(max(t) for t in result.traces.values())
    for sampler, trace in result.traces.items():
        print(f"  {sampler:9s} {sparkline(trace, low, high)}  final={trace[-1]:.4f}")

    target = 0.9 * max(trace[-1] for trace in result.traces.values())
    print(f"\nepochs to reach 90% of the best final MAP ({target:.4f}):")
    for sampler in result.traces:
        epoch = result.epochs_to_reach(sampler, target)
        print(f"  {sampler:9s} {'-' if epoch is None else epoch}")


if __name__ == "__main__":
    main()
