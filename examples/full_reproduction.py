"""Regenerate every table and figure of the paper in one run.

This is the EXPERIMENTS.md driver: it renders Table 1, all six Table-2
blocks, the Fig. 2 top-k curves, the Fig. 3 lambda sweep, and the
Fig. 4 sampler-convergence traces, writing everything to stdout and to
``examples/output/`` text files.

Usage::

    python examples/full_reproduction.py            # quick (~2 min)
    python examples/full_reproduction.py --paper    # full scale (~1-2 h)
    python examples/full_reproduction.py --datasets ML100K ML1M
"""

import argparse
import sys
from pathlib import Path

from repro.data.profiles import DATASET_PROFILES
from repro.experiments.config import ExperimentScale
from repro.experiments.figures import (
    figure2_topk_curves,
    figure3_tradeoff_sweep,
    figure4_convergence,
)
from repro.experiments.tables import (
    render_table1,
    table1_dataset_statistics,
    table2_main_comparison,
)

OUTPUT_DIR = Path(__file__).parent / "output"


def emit(name: str, text: str) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{'=' * 78}\n{text}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true", help="full laptop-scale run")
    parser.add_argument(
        "--datasets", nargs="+", default=list(DATASET_PROFILES), choices=list(DATASET_PROFILES)
    )
    from repro.utils.clock import Timer

    args = parser.parse_args(argv)
    scale = ExperimentScale.paper() if args.paper else ExperimentScale.quick()
    timer = Timer().start()

    emit("table1", render_table1(table1_dataset_statistics(scale=scale, datasets=args.datasets)))

    blocks = {}
    for dataset in args.datasets:
        block = table2_main_comparison(dataset, scale=scale, max_users=400, tune_tradeoffs=True)
        blocks[dataset] = block.results
        emit(f"table2_{dataset.lower()}", block.render())

    from repro.experiments.leaderboard import build_leaderboard, render_leaderboard

    emit(
        "leaderboard",
        render_leaderboard(
            build_leaderboard(blocks),
            title="Cross-dataset leaderboard (mean rank over NDCG@5/MAP/MRR)",
        ),
    )

    fig2 = figure2_topk_curves(
        args.datasets[0],
        methods=("PopRank", "WMF", "BPR", "MPR", "CLiMF", "CLAPF-MAP", "CLAPF+-MAP"),
        scale=scale,
        max_users=400,
    )
    emit(f"fig2_{args.datasets[0].lower()}", fig2.render())

    fig3 = figure3_tradeoff_sweep(args.datasets[0], scale=scale, max_users=400)
    emit(f"fig3_{args.datasets[0].lower()}", fig3.render())

    fig4_dataset = "ML20M" if "ML20M" in args.datasets else args.datasets[0]
    fig4 = figure4_convergence(
        fig4_dataset, scale=scale, max_users=200, eval_every=max(scale.n_epochs // 10, 1)
    )
    emit(f"fig4_{fig4_dataset.lower()}", fig4.render())

    print(f"\nall outputs written to {OUTPUT_DIR}/ in {timer.elapsed:.0f}s")


if __name__ == "__main__":
    main(sys.argv[1:])
