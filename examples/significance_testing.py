"""Is CLAPF's win over BPR statistically significant?

The paper states CLAPF "significantly outperforms" the baselines; this
example makes that claim testable on a concrete run: both models are
evaluated on the same users and the per-user metric differences go
through a paired t-test and a Wilcoxon signed-rank test.

Run with::

    python examples/significance_testing.py
"""

from repro import BPR, PopRank, clapf_plus_map, train_test_split
from repro.analysis import compare_models, dataset_report
from repro.data.synthetic import SyntheticConfig, generate_synthetic


def main() -> None:
    config = SyntheticConfig(
        n_users=400, n_items=500, density=0.04, latent_dim=5,
        signal=9.0, popularity_weight=0.7,
    )
    dataset = generate_synthetic(config, seed=3, name="significance-demo")
    split = train_test_split(dataset, seed=3)

    report = dataset_report(split.train)
    print(f"dataset: {dataset.name}  (item Gini = {report['item_gini']:.2f}, "
          f"top-10% item share = {report['top10pct_item_share']:.0%})\n")

    clapf = clapf_plus_map(tradeoff=0.4, seed=3).fit(split.train)
    bpr = BPR(seed=3).fit(split.train)
    pop = PopRank().fit(split.train)

    print("CLAPF+-MAP (A) vs BPR (B):")
    for comparison in compare_models(clapf, bpr, split).values():
        print("  " + comparison.summary())

    print("\nCLAPF+-MAP (A) vs PopRank (B):")
    for comparison in compare_models(clapf, pop, split).values():
        marker = "***" if comparison.significant(0.001) else (
            "*" if comparison.significant(0.05) else "n.s.")
        print(f"  {comparison.summary()}  [{marker}]")


if __name__ == "__main__":
    main()
