"""Bring your own data: run CLAPF on a ratings file or pair file.

Demonstrates the loaders for the formats the paper's datasets ship in.
Given a path it auto-detects the format; with no argument it writes a
small demo file and round-trips it, so the example always runs offline.

Usage::

    python examples/custom_dataset.py [path/to/u.data | ratings.dat | ratings.csv | pairs.tsv]
"""

import sys
import tempfile
from pathlib import Path

from repro import clapf_plus_map, evaluate_model, train_test_split
from repro.data.loaders import (
    load_csv_triplets,
    load_movielens_100k,
    load_movielens_1m,
    load_pairs,
)


def load_any(path: Path):
    """Pick a loader from the file name, as the real datasets are named."""
    name = path.name.lower()
    if name == "u.data":
        return load_movielens_100k(path)
    if name.endswith(".dat"):
        return load_movielens_1m(path)
    if name.endswith(".csv"):
        return load_csv_triplets(path)
    return load_pairs(path)


def demo_file(directory: Path) -> Path:
    """A tiny MovieLens-100K-format file so the example runs offline."""
    import numpy as np

    from repro.utils.atomicio import atomic_write

    rng = np.random.default_rng(0)
    path = directory / "u.data"

    def writer(tmp_path: Path) -> None:
        with tmp_path.open("w") as handle:  # repro: allow(REP003)
            for user in range(60):
                for item in rng.choice(120, size=12, replace=False):
                    rating = rng.integers(1, 6)
                    handle.write(f"{user}\t{item}\t{rating}\t0\n")

    return atomic_write(path, writer)


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        print("no path given — generating a demo u.data file")
        path = demo_file(Path(tempfile.mkdtemp()))

    dataset = load_any(path)
    print(f"loaded {dataset}  (ratings > 3 kept as implicit positives)")

    split = train_test_split(dataset, seed=0)
    model = clapf_plus_map(tradeoff=0.4, seed=0).fit(split.train)
    result = evaluate_model(model, split, ks=(5, 10))
    print("\nCLAPF+-MAP on your data:")
    for key in ("precision@5", "recall@10", "ndcg@5", "map", "mrr"):
        print(f"  {key:12s} {result[key]:.4f}")
    print(f"\ntop-10 for user 0: {model.recommend(0, k=10).tolist()}")


if __name__ == "__main__":
    main()
